//! The persistent on-disk check cache.
//!
//! [`CheckCache`] serializes per-method check verdicts — errors, cast
//! counts and the inserted dynamic checks — to a compact, versioned binary
//! file, keyed by each method's **Merkle hash** (see [`crate::semdep`]).  A
//! later process loads the file and *replays* every method whose Merkle
//! hash is unchanged instead of re-checking it, so editing one method of an
//! eight-app corpus re-checks one method (plus its transitive dependents).
//!
//! ## Staleness model: die silently
//!
//! Nothing in the file is trusted.  Every condition that could make a
//! stored verdict wrong simply makes [`CheckCache::replay`] return `None`,
//! and the caller re-checks the method from scratch:
//!
//! * unreadable / truncated / wrong-magic / wrong-version /
//!   checksum-mismatched file → the whole cache loads as empty,
//! * the app's environment digest ([`crate::semdep::env_hash`]) moved →
//!   every entry for that app misses,
//! * the method's Merkle hash moved (its body, a callee, a signature or a
//!   comp-type helper changed) → that entry misses,
//! * a span, type or consistency check cannot be faithfully reconstructed
//!   against the *current* parse and environment → that entry misses.
//!
//! ## Span re-anchoring
//!
//! Verdicts must replay **byte-identical** to a from-scratch check even
//! when an edit elsewhere in the file shifted this method's byte offsets.
//! Raw offsets are therefore never the primary encoding: each span is
//! stored as a [`SpanRef`] against the method's canonical node table
//! ([`ruby_syntax::method_span_nodes`]) — "node 7" or "node 7, +3 bytes"
//! — and resolved against the *new* parse at replay time.  Since a replay
//! requires an unchanged semantic hash, the two parses walk isomorphic
//! trees and the node indices line up exactly.
//!
//! ## File identity
//!
//! `Span.file` ids are process-local (allocation order in a `SourceSet`).
//! The file stores a per-app table of source **content hashes** in id
//! order; replay maps saved ids to current ids by content, so reordering
//! the file list never invalidates anything, while editing a file simply
//! changes its hash (and, through the semantic hashes, the Merkle keys of
//! the methods inside it).

use crate::checker::{ErrorCategory, MethodCheckResult, TypeErrorInfo};
use crate::env::CompRdl;
use crate::runtime::{ConsistencyCheck, InsertedCheck};
use rdl_types::{HashKey, MethodKind, SingVal, Type, TypeExpr, TypeStore};
use ruby_syntax::{method_span_nodes, Expr, MethodDef, SemHasher, Span};
use std::collections::BTreeMap;
use std::path::Path;

/// Bump on any change to the binary layout; older files load as empty.
///
/// History: v1 stored only type-check verdicts; v2 added the per-app lint
/// section (`LINT01xx` findings keyed by plain semantic hash, replayed by
/// [`CheckCache::replay_lints`]); v3 added the per-app effect-summary
/// section (interprocedural termination/purity/taint summaries keyed by
/// Merkle hash, replayed by [`CheckCache::replay_effects`]) and re-keyed
/// lints from plain semantic hash to Merkle hash (lints became
/// interprocedural through taint summaries); v4 added the whole-file
/// FNV-1a checksum trailer, so random byte corruption anywhere in the file
/// (not just in the header) degrades to an empty load — a silent cold
/// re-check — instead of risking a structurally-parseable-but-wrong replay.
pub const FORMAT_VERSION: u32 = 4;

const MAGIC: &[u8; 8] = b"CRDLCHK\x01";

/// Size of the checksum trailer appended after the body.
const CHECKSUM_LEN: usize = 8;

/// FNV-1a over raw bytes (the whole-file checksum of the trailer).
fn bytes_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Maximum freeze/thaw recursion depth; deeper (or cyclic) store-backed
/// types refuse to serialize and fall back to re-checking.
const MAX_TYPE_DEPTH: u32 = 64;

/// FNV-1a content hash used to identify source files across processes.
pub fn content_hash(src: &str) -> u64 {
    let mut h = SemHasher::new();
    h.write_str(src);
    h.finish()
}

// ---------------------------------------------------------------------------
// In-memory model
// ---------------------------------------------------------------------------

/// A span re-anchorable against a method's canonical node table; see the
/// module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SpanRef {
    /// `Span::dummy()`.
    Dummy,
    /// Exactly the span of node `i` of the method's node table.
    Node(u32),
    /// A sub-span of node `i`: byte offsets relative to the node's start,
    /// line relative to the node's line (SQL fragments inside string
    /// literals).
    Derived { node: u32, dstart: u64, dend: u64, dline: u32 },
    /// Raw coordinates (file is an index into the app's content-hash
    /// table).  Fallback only; a span outside the checked method.
    Absolute { file: u32, start: u64, end: u64, line: u32 },
}

/// A self-contained (store-free) rendering of a [`Type`], reconstructible
/// in any later store via fresh allocations.
#[derive(Debug, Clone, PartialEq)]
enum TypeTree {
    Top,
    Bot,
    Bool,
    Dynamic,
    Nominal(String),
    Singleton(SingVal),
    Generic(String, Vec<TypeTree>),
    Union(Vec<TypeTree>),
    Optional(Box<TypeTree>),
    Vararg(Box<TypeTree>),
    Var(String),
    Tuple(Vec<TypeTree>),
    FiniteHash(Vec<(HashKey, TypeTree)>),
    ConstString(String),
}

#[derive(Debug, Clone, PartialEq)]
struct ErrorEntry {
    category: ErrorCategory,
    message: String,
    span: SpanRef,
}

#[derive(Debug, Clone, PartialEq)]
struct CheckEntry {
    site: SpanRef,
    description: String,
    expected_return: TypeTree,
    /// `Some(expected)` when the original check carried a consistency
    /// check; its `ret_expr` and `binders` are rebuilt from the current
    /// environment at replay time.
    consistency_expected: Option<TypeTree>,
}

#[derive(Debug, Clone, PartialEq)]
struct MethodEntry {
    owner: String,
    name: String,
    singleton: bool,
    merkle: u64,
    errors: Vec<ErrorEntry>,
    explicit_casts: u64,
    implicit_casts: u64,
    checks: Vec<CheckEntry>,
}

/// One lint finding as frozen / replayed by the cache: plain data, so the
/// lint layer (`crates/analysis`) and this crate need no dependency on one
/// another — the corpus harness converts at the boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintRecord {
    /// Stable `LINT01xx` code.
    pub code: String,
    /// Headline message.
    pub message: String,
    /// Primary label text.
    pub label: String,
    /// Primary label span (resolved against the current parse on replay).
    pub span: Span,
}

#[derive(Debug, Clone, PartialEq)]
struct LintFindingEntry {
    code: String,
    message: String,
    label: String,
    span: SpanRef,
}

#[derive(Debug, Clone, PartialEq)]
struct LintMethodEntry {
    owner: String,
    name: String,
    singleton: bool,
    /// The caller's semantic key for the verdict.  Since the SQL-taint lint
    /// became interprocedural (it consults effect summaries of callees),
    /// the corpus harness keys lints on the method's **Merkle** hash —
    /// unchanged key ⇔ unchanged transitive call closure; purely
    /// intraprocedural callers may still key on plain
    /// [`ruby_syntax::method_hash`].
    semhash: u64,
    findings: Vec<LintFindingEntry>,
}

/// One interprocedural effect summary as frozen / replayed by the cache —
/// plain data (like [`LintRecord`]) so the inference layer
/// (`crates/analysis`) and this crate stay mutually independent; the corpus
/// harness converts at the boundary.  Effects carry no spans, so unlike
/// check and lint verdicts they need no re-anchoring: the blame chains are
/// stable strings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EffectRecord {
    /// Owner class of the summarized method.
    pub owner: String,
    /// Method name.
    pub name: String,
    /// Class-level (`def self.`) method?
    pub singleton: bool,
    /// The method's Merkle hash at summary time; unchanged hash ⇔ unchanged
    /// transitive dependency closure ⇔ the summary is replayable.
    pub merkle: u64,
    /// Termination verdict: 0 = terminates, 1 = block-dependent,
    /// 2 = may diverge.
    pub term: u8,
    /// Purity verdict: 0 = pure, 1 = impure.
    pub purity: u8,
    /// Call chain to the divergence root cause (empty when `term != 2`).
    pub term_blame: Vec<String>,
    /// Call chain to the impurity root cause (empty when `purity == 0`).
    pub purity_blame: Vec<String>,
    /// Parameter indices that flow into the return value.
    pub taint_return: Vec<u32>,
    /// Parameter indices that flow into a SQL sink inside the method.
    pub taint_sink: Vec<u32>,
    /// Receiver state flows into the return value.
    pub self_to_return: bool,
    /// Receiver state flows into a SQL sink.
    pub self_to_sink: bool,
}

#[derive(Debug, Clone, Default, PartialEq)]
struct AppEntry {
    env_hash: u64,
    /// Source content hashes in `Span.file` id order at save time.
    files: Vec<u64>,
    methods: Vec<MethodEntry>,
    /// Lint verdicts, including methods with zero findings (so a warm run
    /// can replay "nothing to report" without re-linting).
    lints: Vec<LintMethodEntry>,
    /// Effect summaries, keyed per record by Merkle hash (span-free, so
    /// they survive any layout edit unchanged).
    effects: Vec<EffectRecord>,
}

/// The persistent check cache: per-app method verdicts keyed by Merkle
/// hash.  See the module docs for the staleness model.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckCache {
    apps: BTreeMap<String, AppEntry>,
}

impl CheckCache {
    /// An empty cache.
    pub fn new() -> Self {
        CheckCache::default()
    }

    /// Loads a cache file; any unreadable, truncated, wrong-magic,
    /// wrong-version or checksum-mismatched file silently loads as empty.
    pub fn load(path: &Path) -> CheckCache {
        std::fs::read(path).ok().and_then(|bytes| Self::from_bytes(&bytes)).unwrap_or_default()
    }

    /// Serializes and atomically writes the cache: the bytes go to a
    /// temporary file in the same directory, which is then renamed over
    /// `path`, so an interrupted run can never leave a truncated file.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        atomic_write(path, &self.to_bytes())
    }

    /// True when the cache holds no app entries.
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    /// The number of stored method verdicts for `app`.
    pub fn method_count(&self, app: &str) -> usize {
        self.apps.get(app).map(|a| a.methods.len()).unwrap_or(0)
    }

    /// Records (replacing any previous entry) the verdicts of one app's
    /// checking run.
    ///
    /// * `env_hash` — [`crate::semdep::env_hash`] of the environment the
    ///   run used.
    /// * `file_hashes` — [`content_hash`] of each source file, indexed by
    ///   its `Span.file` id.
    /// * `methods` — `(owner, definition, merkle, verdict)` per checked
    ///   method; the definition supplies the node table spans are encoded
    ///   against, `store` resolves the verdict's store-backed types.
    ///
    /// Methods whose verdict cannot be faithfully serialized (exotic
    /// store-backed types, spans outside the known files) are skipped: they
    /// will simply be re-checked next run.
    pub fn record_app(
        &mut self,
        app: &str,
        env_hash: u64,
        file_hashes: Vec<u64>,
        methods: &[(String, &MethodDef, u64, &MethodCheckResult)],
        store: &TypeStore,
    ) {
        // Lint verdicts recorded earlier in the run (or a previous run over
        // identical sources) survive; a different file table means the lint
        // spans were encoded against other content, so they are dropped.
        let lints = match self.apps.get(app) {
            Some(prev) if prev.files == file_hashes => prev.lints.clone(),
            _ => Vec::new(),
        };
        // Effect summaries are span-free and guarded per record by their
        // Merkle hash, so they survive regardless of the file table.
        let effects = self.apps.get(app).map(|p| p.effects.clone()).unwrap_or_default();
        let mut entry =
            AppEntry { env_hash, files: file_hashes, methods: Vec::new(), lints, effects };
        for (owner, def, merkle, result) in methods {
            if let Some(m) = freeze_method(owner, def, *merkle, result, store, &entry.files) {
                entry.methods.push(m);
            }
        }
        self.apps.insert(app.to_string(), entry);
    }

    /// Records (replacing any previous lint section) one app's lint
    /// verdicts, keyed by each method's plain semantic hash.
    ///
    /// Every method is recorded — including those with zero findings — so
    /// that a warm run replays the empty verdict instead of re-linting.
    /// A method whose finding spans cannot be encoded against its node
    /// table is skipped (it will simply be re-linted next run).  If
    /// `file_hashes` differs from the table the app's check verdicts were
    /// recorded against, those verdicts are dropped: both sections must
    /// describe the same sources.
    pub fn record_lints(
        &mut self,
        app: &str,
        file_hashes: Vec<u64>,
        methods: &[(String, &MethodDef, u64, Vec<LintRecord>)],
    ) {
        let entry = self.apps.entry(app.to_string()).or_default();
        if entry.files != file_hashes {
            entry.methods.clear();
            entry.files = file_hashes;
        }
        entry.lints.clear();
        for (owner, def, semhash, records) in methods {
            let nodes = method_span_nodes(def);
            let findings: Option<Vec<LintFindingEntry>> = records
                .iter()
                .map(|f| {
                    Some(LintFindingEntry {
                        code: f.code.clone(),
                        message: f.message.clone(),
                        label: f.label.clone(),
                        span: span_ref(f.span, &nodes, &entry.files)?,
                    })
                })
                .collect();
            if let Some(findings) = findings {
                entry.lints.push(LintMethodEntry {
                    owner: owner.clone(),
                    name: def.name.clone(),
                    singleton: def.singleton,
                    semhash: *semhash,
                    findings,
                });
            }
        }
    }

    /// Replays the stored lint verdict for one method, with every finding
    /// span re-anchored against the current parse, or `None` when the
    /// method is unknown or its semantic hash moved.
    pub fn replay_lints(
        &self,
        app: &str,
        current_files: &[u64],
        owner: &str,
        def: &MethodDef,
        semhash: u64,
    ) -> Option<Vec<LintRecord>> {
        let entry = self.apps.get(app)?;
        let m = entry
            .lints
            .iter()
            .find(|m| m.owner == owner && m.name == def.name && m.singleton == def.singleton)?;
        if m.semhash != semhash {
            return None;
        }
        let remap: Vec<Option<u32>> = entry
            .files
            .iter()
            .map(|h| current_files.iter().position(|c| c == h).map(|i| i as u32))
            .collect();
        let nodes = method_span_nodes(def);
        m.findings
            .iter()
            .map(|f| {
                Some(LintRecord {
                    code: f.code.clone(),
                    message: f.message.clone(),
                    label: f.label.clone(),
                    span: resolve_span(&f.span, &nodes, &remap)?,
                })
            })
            .collect()
    }

    /// The number of stored lint verdicts (methods, not findings) for `app`.
    pub fn lint_method_count(&self, app: &str) -> usize {
        self.apps.get(app).map(|a| a.lints.len()).unwrap_or(0)
    }

    /// Records (replacing any previous effect section) one app's inferred
    /// effect summaries.  Every summarized method is recorded — including
    /// the all-clear ones — so a warm run replays "terminates, pure, no
    /// taint" without re-summarizing.
    pub fn record_effects(&mut self, app: &str, records: Vec<EffectRecord>) {
        self.apps.entry(app.to_string()).or_default().effects = records;
    }

    /// Replays the stored effect summary for one method, or `None` when the
    /// method is unknown or its Merkle hash moved (its body, a transitive
    /// callee, a signature or a comp-type helper changed — exactly the
    /// conditions under which the interprocedural summary could differ).
    pub fn replay_effects(
        &self,
        app: &str,
        owner: &str,
        name: &str,
        singleton: bool,
        merkle: u64,
    ) -> Option<EffectRecord> {
        let entry = self.apps.get(app)?;
        entry
            .effects
            .iter()
            .find(|e| {
                e.owner == owner && e.name == name && e.singleton == singleton && e.merkle == merkle
            })
            .cloned()
    }

    /// The number of stored effect summaries for `app`.
    pub fn effect_method_count(&self, app: &str) -> usize {
        self.apps.get(app).map(|a| a.effects.len()).unwrap_or(0)
    }

    /// Replays the stored verdict for one method, or `None` when anything
    /// is stale (see the module docs for the full list of conditions).
    ///
    /// * `current_files` — [`content_hash`] of each *current* source file
    ///   in `Span.file` id order; saved file ids are remapped by content.
    /// * `def` — the method's definition in the **current** parse; spans
    ///   re-anchor against its node table, and `loc` is recomputed from it.
    /// * thawed store-backed types are freshly allocated in `store`.
    #[allow(clippy::too_many_arguments)]
    pub fn replay(
        &self,
        app: &str,
        env: &CompRdl,
        env_hash: u64,
        current_files: &[u64],
        owner: &str,
        def: &MethodDef,
        merkle: u64,
        store: &mut TypeStore,
    ) -> Option<MethodCheckResult> {
        let entry = self.apps.get(app)?;
        if entry.env_hash != env_hash {
            return None;
        }
        let m = entry
            .methods
            .iter()
            .find(|m| m.owner == owner && m.name == def.name && m.singleton == def.singleton)?;
        if m.merkle != merkle {
            return None;
        }
        // Saved file id → current file id, matched by content hash.
        let remap: Vec<Option<u32>> = entry
            .files
            .iter()
            .map(|h| current_files.iter().position(|c| c == h).map(|i| i as u32))
            .collect();
        let nodes = method_span_nodes(def);

        let mut errors = Vec::with_capacity(m.errors.len());
        for e in &m.errors {
            errors.push(TypeErrorInfo {
                category: e.category,
                class: owner.to_string(),
                method: def.name.clone(),
                message: e.message.clone(),
                span: resolve_span(&e.span, &nodes, &remap)?,
            });
        }
        let mut checks = Vec::with_capacity(m.checks.len());
        for c in &m.checks {
            let consistency = match &c.consistency_expected {
                Some(expected) => {
                    let (ret_expr, binders) = rebuild_consistency_shape(env, &c.description)?;
                    Some(ConsistencyCheck { ret_expr, binders, expected: thaw(expected, store) })
                }
                None => None,
            };
            checks.push(InsertedCheck {
                site: resolve_span(&c.site, &nodes, &remap)?,
                description: c.description.clone(),
                expected_return: thaw(&c.expected_return, store),
                consistency,
            });
        }
        Some(MethodCheckResult {
            class: owner.to_string(),
            method: def.name.clone(),
            singleton: def.singleton,
            errors,
            explicit_casts: m.explicit_casts as usize,
            implicit_casts: m.implicit_casts as usize,
            checks,
            loc: def
                .body
                .iter()
                .map(|e| e.span.line)
                .collect::<std::collections::BTreeSet<_>>()
                .len()
                + 2,
        })
    }

    // -- binary format ------------------------------------------------------

    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::default();
        w.bytes.extend_from_slice(MAGIC);
        w.put_u32(FORMAT_VERSION);
        w.put_u32(self.apps.len() as u32);
        for (name, app) in &self.apps {
            w.put_str(name);
            w.put_u64(app.env_hash);
            w.put_u32(app.files.len() as u32);
            for f in &app.files {
                w.put_u64(*f);
            }
            w.put_u32(app.methods.len() as u32);
            for m in &app.methods {
                w.put_str(&m.owner);
                w.put_str(&m.name);
                w.put_u8(u8::from(m.singleton));
                w.put_u64(m.merkle);
                w.put_u32(m.errors.len() as u32);
                for e in &m.errors {
                    w.put_u8(cat_tag(e.category));
                    w.put_str(&e.message);
                    put_span(&mut w, &e.span);
                }
                w.put_u64(m.explicit_casts);
                w.put_u64(m.implicit_casts);
                w.put_u32(m.checks.len() as u32);
                for c in &m.checks {
                    put_span(&mut w, &c.site);
                    w.put_str(&c.description);
                    put_type(&mut w, &c.expected_return);
                    match &c.consistency_expected {
                        Some(t) => {
                            w.put_u8(1);
                            put_type(&mut w, t);
                        }
                        None => w.put_u8(0),
                    }
                }
            }
            w.put_u32(app.lints.len() as u32);
            for l in &app.lints {
                w.put_str(&l.owner);
                w.put_str(&l.name);
                w.put_u8(u8::from(l.singleton));
                w.put_u64(l.semhash);
                w.put_u32(l.findings.len() as u32);
                for f in &l.findings {
                    w.put_str(&f.code);
                    w.put_str(&f.message);
                    w.put_str(&f.label);
                    put_span(&mut w, &f.span);
                }
            }
            w.put_u32(app.effects.len() as u32);
            for e in &app.effects {
                w.put_str(&e.owner);
                w.put_str(&e.name);
                w.put_u8(u8::from(e.singleton));
                w.put_u64(e.merkle);
                w.put_u8(e.term);
                w.put_u8(e.purity);
                put_str_list(&mut w, &e.term_blame);
                put_str_list(&mut w, &e.purity_blame);
                put_u32_list(&mut w, &e.taint_return);
                put_u32_list(&mut w, &e.taint_sink);
                w.put_u8(u8::from(e.self_to_return));
                w.put_u8(u8::from(e.self_to_sink));
            }
        }
        // v4 trailer: FNV-1a checksum of every byte before it.
        let checksum = bytes_hash(&w.bytes);
        w.put_u64(checksum);
        w.bytes
    }

    fn from_bytes(bytes: &[u8]) -> Option<CheckCache> {
        // The last 8 bytes are a checksum of everything before them; verify
        // it before parsing so an interior bit flip can never yield a
        // structurally valid but wrong cache (it degrades to a cold
        // re-check instead).
        if bytes.len() < CHECKSUM_LEN {
            return None;
        }
        let (body, trailer) = bytes.split_at(bytes.len() - CHECKSUM_LEN);
        if bytes_hash(body) != u64::from_le_bytes(trailer.try_into().ok()?) {
            return None;
        }
        let bytes = body;
        let mut r = Reader { bytes, pos: 0 };
        if r.take(MAGIC.len())? != MAGIC.as_slice() {
            return None;
        }
        if r.get_u32()? != FORMAT_VERSION {
            return None;
        }
        let app_count = r.get_u32()?;
        let mut apps = BTreeMap::new();
        for _ in 0..app_count {
            let name = r.get_str()?;
            let env_hash = r.get_u64()?;
            let file_count = r.get_u32()?;
            let mut files = Vec::with_capacity(file_count.min(1024) as usize);
            for _ in 0..file_count {
                files.push(r.get_u64()?);
            }
            let method_count = r.get_u32()?;
            let mut methods = Vec::with_capacity(method_count.min(1024) as usize);
            for _ in 0..method_count {
                let owner = r.get_str()?;
                let mname = r.get_str()?;
                let singleton = r.get_u8()? != 0;
                let merkle = r.get_u64()?;
                let error_count = r.get_u32()?;
                let mut errors = Vec::with_capacity(error_count.min(1024) as usize);
                for _ in 0..error_count {
                    errors.push(ErrorEntry {
                        category: cat_from_tag(r.get_u8()?)?,
                        message: r.get_str()?,
                        span: get_span(&mut r)?,
                    });
                }
                let explicit_casts = r.get_u64()?;
                let implicit_casts = r.get_u64()?;
                let check_count = r.get_u32()?;
                let mut checks = Vec::with_capacity(check_count.min(1024) as usize);
                for _ in 0..check_count {
                    let site = get_span(&mut r)?;
                    let description = r.get_str()?;
                    let expected_return = get_type(&mut r, 0)?;
                    let consistency_expected = match r.get_u8()? {
                        0 => None,
                        1 => Some(get_type(&mut r, 0)?),
                        _ => return None,
                    };
                    checks.push(CheckEntry {
                        site,
                        description,
                        expected_return,
                        consistency_expected,
                    });
                }
                methods.push(MethodEntry {
                    owner,
                    name: mname,
                    singleton,
                    merkle,
                    errors,
                    explicit_casts,
                    implicit_casts,
                    checks,
                });
            }
            let lint_count = r.get_u32()?;
            let mut lints = Vec::with_capacity(lint_count.min(1024) as usize);
            for _ in 0..lint_count {
                let owner = r.get_str()?;
                let lname = r.get_str()?;
                let singleton = r.get_u8()? != 0;
                let semhash = r.get_u64()?;
                let finding_count = r.get_u32()?;
                let mut findings = Vec::with_capacity(finding_count.min(1024) as usize);
                for _ in 0..finding_count {
                    findings.push(LintFindingEntry {
                        code: r.get_str()?,
                        message: r.get_str()?,
                        label: r.get_str()?,
                        span: get_span(&mut r)?,
                    });
                }
                lints.push(LintMethodEntry { owner, name: lname, singleton, semhash, findings });
            }
            let effect_count = r.get_u32()?;
            let mut effects = Vec::with_capacity(effect_count.min(1024) as usize);
            for _ in 0..effect_count {
                let owner = r.get_str()?;
                let ename = r.get_str()?;
                let singleton = r.get_u8()? != 0;
                let merkle = r.get_u64()?;
                let term = r.get_u8()?;
                let purity = r.get_u8()?;
                if term > 2 || purity > 1 {
                    return None;
                }
                effects.push(EffectRecord {
                    owner,
                    name: ename,
                    singleton,
                    merkle,
                    term,
                    purity,
                    term_blame: get_str_list(&mut r)?,
                    purity_blame: get_str_list(&mut r)?,
                    taint_return: get_u32_list(&mut r)?,
                    taint_sink: get_u32_list(&mut r)?,
                    self_to_return: r.get_u8()? != 0,
                    self_to_sink: r.get_u8()? != 0,
                });
            }
            apps.insert(name, AppEntry { env_hash, files, methods, lints, effects });
        }
        // Trailing garbage means the file is not ours.
        if r.pos != bytes.len() {
            return None;
        }
        Some(CheckCache { apps })
    }
}

/// Writes `bytes` to a temporary sibling of `path` and renames it into
/// place, so readers never observe a partially written file.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let file_name = path.file_name().and_then(|n| n.to_str()).unwrap_or("out");
    let tmp = path.with_file_name(format!(".{file_name}.tmp{}", std::process::id()));
    std::fs::write(&tmp, bytes)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Deterministically corrupts a serialized cache file for durability tests.
///
/// The seed selects one of five corruption modes — truncation, random bit
/// flips, garbage magic bytes, garbage version bytes, or garbage interior
/// (Merkle/verdict) bytes — and every mode's damage sites are drawn from the
/// same seeded generator, so a failing seed reproduces exactly.  The
/// contract under test: for *every* seed, [`CheckCache::load`] of the
/// corrupted bytes is a silent cold re-check (an empty or checksum-valid
/// cache), never a panic and never a wrong replay.
pub fn corrupt(bytes: &[u8], seed: u64) -> Vec<u8> {
    let mut rng = test_rng::Rng::new(seed | 1);
    let mut out = bytes.to_vec();
    if out.is_empty() {
        return out;
    }
    match rng.below(5) {
        // Truncate to a strict prefix (possibly empty).
        0 => {
            let keep = rng.below(out.len() as u64) as usize;
            out.truncate(keep);
        }
        // Flip 1..=8 random bits anywhere in the file.
        1 => {
            let flips = 1 + rng.below(8) as usize;
            for _ in 0..flips {
                let i = rng.below(out.len() as u64) as usize;
                out[i] ^= 1 << rng.below(8);
            }
        }
        // Garbage over the magic.
        2 => {
            for b in out.iter_mut().take(MAGIC.len()) {
                *b = rng.next_u64() as u8;
            }
        }
        // Garbage over the version word.
        3 => {
            for b in out.iter_mut().skip(MAGIC.len()).take(4) {
                *b = rng.next_u64() as u8;
            }
        }
        // Garbage over a random interior run (hits Merkle keys, counts,
        // strings — whatever lives there).
        _ => {
            let start = rng.below(out.len() as u64) as usize;
            let len = (1 + rng.below(16) as usize).min(out.len() - start);
            for b in out.iter_mut().skip(start).take(len) {
                *b = rng.next_u64() as u8;
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Freezing (save side)
// ---------------------------------------------------------------------------

fn freeze_method(
    owner: &str,
    def: &MethodDef,
    merkle: u64,
    result: &MethodCheckResult,
    store: &TypeStore,
    files: &[u64],
) -> Option<MethodEntry> {
    let nodes = method_span_nodes(def);
    let mut errors = Vec::with_capacity(result.errors.len());
    for e in &result.errors {
        errors.push(ErrorEntry {
            category: e.category,
            message: e.message.clone(),
            span: span_ref(e.span, &nodes, files)?,
        });
    }
    let mut checks = Vec::with_capacity(result.checks.len());
    for c in &result.checks {
        checks.push(CheckEntry {
            site: span_ref(c.site, &nodes, files)?,
            description: c.description.clone(),
            expected_return: freeze(&c.expected_return, store, 0)?,
            consistency_expected: match &c.consistency {
                Some(cc) => Some(freeze(&cc.expected, store, 0)?),
                None => None,
            },
        });
    }
    Some(MethodEntry {
        owner: owner.to_string(),
        name: def.name.clone(),
        singleton: def.singleton,
        merkle,
        errors,
        explicit_casts: result.explicit_casts as u64,
        implicit_casts: result.implicit_casts as u64,
        checks,
    })
}

fn span_ref(span: Span, nodes: &[Span], files: &[u64]) -> Option<SpanRef> {
    if span.is_dummy() {
        return Some(SpanRef::Dummy);
    }
    if let Some(i) = nodes.iter().position(|n| *n == span) {
        return Some(SpanRef::Node(i as u32));
    }
    // Tightest enclosing node, first index on ties — deterministic, and the
    // same choice is available to any save of an isomorphic parse.
    let mut best: Option<(usize, usize)> = None; // (width, index)
    for (i, n) in nodes.iter().enumerate() {
        if n.file == span.file && n.start <= span.start && span.end <= n.end && n.line <= span.line
        {
            let width = n.end - n.start;
            if best.map(|(w, _)| width < w).unwrap_or(true) {
                best = Some((width, i));
            }
        }
    }
    if let Some((_, i)) = best {
        let n = nodes[i];
        return Some(SpanRef::Derived {
            node: i as u32,
            dstart: (span.start - n.start) as u64,
            dend: (span.end - n.start) as u64,
            dline: span.line - n.line,
        });
    }
    // Outside the method entirely: raw coordinates, valid only while the
    // file's content hash is unchanged.
    if (span.file as usize) >= files.len() {
        return None;
    }
    Some(SpanRef::Absolute {
        file: span.file,
        start: span.start as u64,
        end: span.end as u64,
        line: span.line,
    })
}

fn freeze(ty: &Type, store: &TypeStore, depth: u32) -> Option<TypeTree> {
    if depth > MAX_TYPE_DEPTH {
        return None;
    }
    // Resolve promotions first: a promoted tuple/hash/string *is* its
    // promoted type, and serializing the promotion result is both simpler
    // and exactly what a fresh evaluation would have produced.
    match store.resolve(ty) {
        Type::Top => Some(TypeTree::Top),
        Type::Bot => Some(TypeTree::Bot),
        Type::Bool => Some(TypeTree::Bool),
        Type::Dynamic => Some(TypeTree::Dynamic),
        Type::Nominal(n) => Some(TypeTree::Nominal(n)),
        Type::Singleton(v) => Some(TypeTree::Singleton(v)),
        Type::Generic { base, args } => Some(TypeTree::Generic(
            base,
            args.iter().map(|a| freeze(a, store, depth + 1)).collect::<Option<Vec<_>>>()?,
        )),
        Type::Union(parts) => Some(TypeTree::Union(
            parts.iter().map(|p| freeze(p, store, depth + 1)).collect::<Option<Vec<_>>>()?,
        )),
        Type::Optional(t) => Some(TypeTree::Optional(Box::new(freeze(&t, store, depth + 1)?))),
        Type::Vararg(t) => Some(TypeTree::Vararg(Box::new(freeze(&t, store, depth + 1)?))),
        Type::Var(v) => Some(TypeTree::Var(v)),
        Type::Tuple(id) => {
            let data = store.tuple(id);
            Some(TypeTree::Tuple(
                data.elems
                    .iter()
                    .map(|e| freeze(e, store, depth + 1))
                    .collect::<Option<Vec<_>>>()?,
            ))
        }
        Type::FiniteHash(id) => {
            let data = store.finite_hash(id);
            if data.rest.is_some() {
                // `new_finite_hash` cannot reproduce a rest type; refuse
                // rather than approximate.
                return None;
            }
            Some(TypeTree::FiniteHash(
                data.entries
                    .iter()
                    .map(|(k, v)| Some((k.clone(), freeze(v, store, depth + 1)?)))
                    .collect::<Option<Vec<_>>>()?,
            ))
        }
        Type::ConstString(id) => store.const_string(id).value.clone().map(TypeTree::ConstString),
    }
}

// ---------------------------------------------------------------------------
// Thawing (load side)
// ---------------------------------------------------------------------------

fn resolve_span(r: &SpanRef, nodes: &[Span], remap: &[Option<u32>]) -> Option<Span> {
    match r {
        SpanRef::Dummy => Some(Span::dummy()),
        SpanRef::Node(i) => nodes.get(*i as usize).copied(),
        SpanRef::Derived { node, dstart, dend, dline } => {
            let n = nodes.get(*node as usize)?;
            Some(Span::in_file(
                n.file,
                n.start + *dstart as usize,
                n.start + *dend as usize,
                n.line + dline,
            ))
        }
        SpanRef::Absolute { file, start, end, line } => {
            let current = (*remap.get(*file as usize)?)?;
            Some(Span::in_file(current, *start as usize, *end as usize, *line))
        }
    }
}

fn thaw(tree: &TypeTree, store: &mut TypeStore) -> Type {
    match tree {
        TypeTree::Top => Type::Top,
        TypeTree::Bot => Type::Bot,
        TypeTree::Bool => Type::Bool,
        TypeTree::Dynamic => Type::Dynamic,
        TypeTree::Nominal(n) => Type::Nominal(n.clone()),
        TypeTree::Singleton(v) => Type::Singleton(v.clone()),
        TypeTree::Generic(base, args) => Type::Generic {
            base: base.clone(),
            args: args.iter().map(|a| thaw(a, store)).collect(),
        },
        TypeTree::Union(parts) => Type::Union(parts.iter().map(|p| thaw(p, store)).collect()),
        TypeTree::Optional(t) => Type::Optional(Box::new(thaw(t, store))),
        TypeTree::Vararg(t) => Type::Vararg(Box::new(thaw(t, store))),
        TypeTree::Var(v) => Type::Var(v.clone()),
        TypeTree::Tuple(elems) => {
            let elems = elems.iter().map(|e| thaw(e, store)).collect();
            store.new_tuple(elems)
        }
        TypeTree::FiniteHash(entries) => {
            let entries = entries.iter().map(|(k, v)| (k.clone(), thaw(v, store))).collect();
            store.new_finite_hash(entries)
        }
        TypeTree::ConstString(v) => store.new_const_string(v.clone()),
    }
}

/// Rebuilds a consistency check's `ret_expr` and `binders` from the current
/// environment: the persisted `description` is `"Owner#method"`, whose
/// annotation's comp return expression is exactly what the checker cloned
/// when it built the original check.  `None` when the annotation is gone,
/// no longer a direct comp return, or ambiguous between method kinds.
fn rebuild_consistency_shape(
    env: &CompRdl,
    description: &str,
) -> Option<(Expr, Vec<Option<String>>)> {
    let (owner, method) = description.split_once('#')?;
    let mut found: Option<(Expr, Vec<Option<String>>)> = None;
    for kind in [MethodKind::Instance, MethodKind::Singleton] {
        let Some(sig) = env.annotations.get_exact(owner, kind, method) else { continue };
        let TypeExpr::Comp(spec) = &sig.ret else { continue };
        let shape =
            (spec.expr.clone(), sig.params.iter().map(|p| p.binder.clone()).collect::<Vec<_>>());
        match &found {
            None => found = Some(shape),
            Some(prev) => {
                // Both kinds annotated with comp returns: only usable when
                // they agree on the shape the runtime hook needs.
                if ruby_syntax::expr_hash(&prev.0) != ruby_syntax::expr_hash(&shape.0)
                    || prev.1 != shape.1
                {
                    return None;
                }
            }
        }
    }
    found
}

fn cat_tag(c: ErrorCategory) -> u8 {
    match c {
        ErrorCategory::UndefinedConstant => 0,
        ErrorCategory::NoMethod => 1,
        ErrorCategory::ArgumentType => 2,
        ErrorCategory::ReturnType => 3,
        ErrorCategory::CompType => 4,
        ErrorCategory::WeakUpdate => 5,
        ErrorCategory::Termination => 6,
        ErrorCategory::Arity => 7,
        ErrorCategory::Sql => 8,
    }
}

fn cat_from_tag(t: u8) -> Option<ErrorCategory> {
    Some(match t {
        0 => ErrorCategory::UndefinedConstant,
        1 => ErrorCategory::NoMethod,
        2 => ErrorCategory::ArgumentType,
        3 => ErrorCategory::ReturnType,
        4 => ErrorCategory::CompType,
        5 => ErrorCategory::WeakUpdate,
        6 => ErrorCategory::Termination,
        7 => ErrorCategory::Arity,
        8 => ErrorCategory::Sql,
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// Little-endian wire primitives
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Writer {
    bytes: Vec<u8>,
}

impl Writer {
    fn put_u8(&mut self, v: u8) {
        self.bytes.push(v);
    }
    fn put_u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }
    fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.bytes.extend_from_slice(s.as_bytes());
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Some(out)
    }
    fn get_u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    fn get_u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }
    fn get_u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
    fn get_str(&mut self) -> Option<String> {
        let len = self.get_u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).ok()
    }
}

fn put_str_list(w: &mut Writer, list: &[String]) {
    w.put_u32(list.len() as u32);
    for s in list {
        w.put_str(s);
    }
}

fn get_str_list(r: &mut Reader<'_>) -> Option<Vec<String>> {
    let n = r.get_u32()?;
    let mut out = Vec::with_capacity(n.min(1024) as usize);
    for _ in 0..n {
        out.push(r.get_str()?);
    }
    Some(out)
}

fn put_u32_list(w: &mut Writer, list: &[u32]) {
    w.put_u32(list.len() as u32);
    for v in list {
        w.put_u32(*v);
    }
}

fn get_u32_list(r: &mut Reader<'_>) -> Option<Vec<u32>> {
    let n = r.get_u32()?;
    let mut out = Vec::with_capacity(n.min(1024) as usize);
    for _ in 0..n {
        out.push(r.get_u32()?);
    }
    Some(out)
}

fn put_span(w: &mut Writer, s: &SpanRef) {
    match s {
        SpanRef::Dummy => w.put_u8(0),
        SpanRef::Node(i) => {
            w.put_u8(1);
            w.put_u32(*i);
        }
        SpanRef::Derived { node, dstart, dend, dline } => {
            w.put_u8(2);
            w.put_u32(*node);
            w.put_u64(*dstart);
            w.put_u64(*dend);
            w.put_u32(*dline);
        }
        SpanRef::Absolute { file, start, end, line } => {
            w.put_u8(3);
            w.put_u32(*file);
            w.put_u64(*start);
            w.put_u64(*end);
            w.put_u32(*line);
        }
    }
}

fn get_span(r: &mut Reader<'_>) -> Option<SpanRef> {
    Some(match r.get_u8()? {
        0 => SpanRef::Dummy,
        1 => SpanRef::Node(r.get_u32()?),
        2 => SpanRef::Derived {
            node: r.get_u32()?,
            dstart: r.get_u64()?,
            dend: r.get_u64()?,
            dline: r.get_u32()?,
        },
        3 => SpanRef::Absolute {
            file: r.get_u32()?,
            start: r.get_u64()?,
            end: r.get_u64()?,
            line: r.get_u32()?,
        },
        _ => return None,
    })
}

fn put_type(w: &mut Writer, t: &TypeTree) {
    match t {
        TypeTree::Top => w.put_u8(0),
        TypeTree::Bot => w.put_u8(1),
        TypeTree::Bool => w.put_u8(2),
        TypeTree::Dynamic => w.put_u8(3),
        TypeTree::Nominal(n) => {
            w.put_u8(4);
            w.put_str(n);
        }
        TypeTree::Singleton(v) => {
            w.put_u8(5);
            put_singval(w, v);
        }
        TypeTree::Generic(base, args) => {
            w.put_u8(6);
            w.put_str(base);
            w.put_u32(args.len() as u32);
            for a in args {
                put_type(w, a);
            }
        }
        TypeTree::Union(parts) => {
            w.put_u8(7);
            w.put_u32(parts.len() as u32);
            for p in parts {
                put_type(w, p);
            }
        }
        TypeTree::Optional(inner) => {
            w.put_u8(8);
            put_type(w, inner);
        }
        TypeTree::Vararg(inner) => {
            w.put_u8(9);
            put_type(w, inner);
        }
        TypeTree::Var(v) => {
            w.put_u8(10);
            w.put_str(v);
        }
        TypeTree::Tuple(elems) => {
            w.put_u8(11);
            w.put_u32(elems.len() as u32);
            for e in elems {
                put_type(w, e);
            }
        }
        TypeTree::FiniteHash(entries) => {
            w.put_u8(12);
            w.put_u32(entries.len() as u32);
            for (k, v) in entries {
                put_hashkey(w, k);
                put_type(w, v);
            }
        }
        TypeTree::ConstString(v) => {
            w.put_u8(13);
            w.put_str(v);
        }
    }
}

fn get_type(r: &mut Reader<'_>, depth: u32) -> Option<TypeTree> {
    if depth > MAX_TYPE_DEPTH {
        return None;
    }
    Some(match r.get_u8()? {
        0 => TypeTree::Top,
        1 => TypeTree::Bot,
        2 => TypeTree::Bool,
        3 => TypeTree::Dynamic,
        4 => TypeTree::Nominal(r.get_str()?),
        5 => TypeTree::Singleton(get_singval(r)?),
        6 => {
            let base = r.get_str()?;
            let n = r.get_u32()?;
            let mut args = Vec::with_capacity(n.min(1024) as usize);
            for _ in 0..n {
                args.push(get_type(r, depth + 1)?);
            }
            TypeTree::Generic(base, args)
        }
        7 => {
            let n = r.get_u32()?;
            let mut parts = Vec::with_capacity(n.min(1024) as usize);
            for _ in 0..n {
                parts.push(get_type(r, depth + 1)?);
            }
            TypeTree::Union(parts)
        }
        8 => TypeTree::Optional(Box::new(get_type(r, depth + 1)?)),
        9 => TypeTree::Vararg(Box::new(get_type(r, depth + 1)?)),
        10 => TypeTree::Var(r.get_str()?),
        11 => {
            let n = r.get_u32()?;
            let mut elems = Vec::with_capacity(n.min(1024) as usize);
            for _ in 0..n {
                elems.push(get_type(r, depth + 1)?);
            }
            TypeTree::Tuple(elems)
        }
        12 => {
            let n = r.get_u32()?;
            let mut entries = Vec::with_capacity(n.min(1024) as usize);
            for _ in 0..n {
                let k = get_hashkey(r)?;
                let v = get_type(r, depth + 1)?;
                entries.push((k, v));
            }
            TypeTree::FiniteHash(entries)
        }
        13 => TypeTree::ConstString(r.get_str()?),
        _ => return None,
    })
}

fn put_singval(w: &mut Writer, v: &SingVal) {
    match v {
        SingVal::Nil => w.put_u8(0),
        SingVal::True => w.put_u8(1),
        SingVal::False => w.put_u8(2),
        SingVal::Int(i) => {
            w.put_u8(3);
            w.put_u64(*i as u64);
        }
        SingVal::FloatBits(b) => {
            w.put_u8(4);
            w.put_u64(*b);
        }
        SingVal::Sym(s) => {
            w.put_u8(5);
            w.put_str(s);
        }
        SingVal::Class(c) => {
            w.put_u8(6);
            w.put_str(c);
        }
    }
}

fn get_singval(r: &mut Reader<'_>) -> Option<SingVal> {
    Some(match r.get_u8()? {
        0 => SingVal::Nil,
        1 => SingVal::True,
        2 => SingVal::False,
        3 => SingVal::Int(r.get_u64()? as i64),
        4 => SingVal::FloatBits(r.get_u64()?),
        5 => SingVal::Sym(r.get_str()?),
        6 => SingVal::Class(r.get_str()?),
        _ => return None,
    })
}

fn put_hashkey(w: &mut Writer, k: &HashKey) {
    match k {
        HashKey::Sym(s) => {
            w.put_u8(0);
            w.put_str(s);
        }
        HashKey::Str(s) => {
            w.put_u8(1);
            w.put_str(s);
        }
        HashKey::Int(i) => {
            w.put_u8(2);
            w.put_u64(*i as u64);
        }
    }
}

fn get_hashkey(r: &mut Reader<'_>) -> Option<HashKey> {
    Some(match r.get_u8()? {
        0 => HashKey::Sym(r.get_str()?),
        1 => HashKey::Str(r.get_str()?),
        2 => HashKey::Int(r.get_u64()? as i64),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{CheckOptions, TypeChecker};

    fn env() -> CompRdl {
        let mut env = CompRdl::new();
        crate::stdlib::register_all(&mut env);
        env.type_sig("Object", "page", "() -> { info: Array<String>, title: String }", None);
        env.type_sig("Object", "image_url", "() -> String", Some("app"));
        env
    }

    const SRC: &str = "def image_url()\n  page()[:info].first\nend\n";

    fn check(
        env: &CompRdl,
        src: &str,
    ) -> (crate::checker::ProgramCheckResult, ruby_syntax::Program) {
        let program = ruby_syntax::parse_program_strict(src).unwrap();
        let result = TypeChecker::new(env, &program, CheckOptions::default()).check_labeled("app");
        (result, program)
    }

    fn record(cache: &mut CheckCache, env: &CompRdl, src: &str) -> u64 {
        let (result, program) = check(env, src);
        let g = crate::semdep::DepGraph::build(env, &program);
        let files = vec![content_hash(src)];
        let methods: Vec<(String, &MethodDef, u64, &MethodCheckResult)> = program
            .methods()
            .iter()
            .filter_map(|(owner, def)| {
                let r = result.methods.iter().find(|m| m.method == def.name)?;
                let merkle = g.merkle(owner, &def.name, def.singleton)?;
                Some((owner.clone(), *def, merkle, r))
            })
            .collect();
        let env_h = crate::semdep::env_hash(env);
        cache.record_app("unit", env_h, files, &methods, &result.store);
        env_h
    }

    fn replay_all(
        cache: &CheckCache,
        env: &CompRdl,
        env_h: u64,
        src: &str,
    ) -> Vec<Option<MethodCheckResult>> {
        let program = ruby_syntax::parse_program_strict(src).unwrap();
        let g = crate::semdep::DepGraph::build(env, &program);
        let files = vec![content_hash(src)];
        let mut store = TypeStore::new();
        program
            .methods()
            .iter()
            .map(|(owner, def)| {
                let merkle = g.merkle(owner, &def.name, def.singleton)?;
                cache.replay("unit", env, env_h, &files, owner, def, merkle, &mut store)
            })
            .collect()
    }

    #[test]
    fn round_trip_is_byte_identical_through_disk() {
        let env = env();
        let mut cache = CheckCache::new();
        let env_h = record(&mut cache, &env, SRC);

        let dir = std::env::temp_dir().join(format!("comprdl-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.bin");
        cache.save(&path).unwrap();
        let loaded = CheckCache::load(&path);
        assert_eq!(loaded, cache, "binary round trip must be lossless");
        std::fs::remove_dir_all(&dir).ok();

        let (fresh, _) = check(&env, SRC);
        let replayed = replay_all(&loaded, &env, env_h, SRC);
        assert_eq!(replayed.len(), 1);
        let replayed = replayed[0].clone().expect("unchanged method must replay");
        let orig = &fresh.methods[0];
        assert_eq!(replayed.errors, orig.errors);
        assert_eq!(replayed.explicit_casts, orig.explicit_casts);
        assert_eq!(replayed.implicit_casts, orig.implicit_casts);
        assert_eq!(replayed.loc, orig.loc);
        assert_eq!(replayed.checks.len(), orig.checks.len());
        for (r, o) in replayed.checks.iter().zip(&orig.checks) {
            assert_eq!(r.site, o.site);
            assert_eq!(r.description, o.description);
        }
    }

    #[test]
    fn layout_edit_still_replays_with_reanchored_spans() {
        let env = env();
        let mut cache = CheckCache::new();
        let env_h = record(&mut cache, &env, SRC);

        // Same method, pushed down by comments: spans shift, semantics
        // don't.  The replayed spans must match a from-scratch check of the
        // *edited* source, not the original one.
        let shifted = format!("# header\n# more\n\n{SRC}");
        let (fresh, _) = check(&env, &shifted);
        let replayed = replay_all(&cache, &env, env_h, &shifted)[0]
            .clone()
            .expect("layout edit must not invalidate");
        let orig = &fresh.methods[0];
        assert_eq!(replayed.checks.len(), orig.checks.len());
        for (r, o) in replayed.checks.iter().zip(&orig.checks) {
            assert_eq!(r.site, o.site, "span must re-anchor to the new parse");
            assert_eq!(r.expected_return, o.expected_return);
        }
        assert_eq!(replayed.errors, orig.errors);
        assert_eq!(replayed.loc, orig.loc);
    }

    #[test]
    fn semantic_edit_refuses_to_replay() {
        let env = env();
        let mut cache = CheckCache::new();
        let env_h = record(&mut cache, &env, SRC);
        let edited = "def image_url()\n  page()[:title]\nend\n";
        assert!(replay_all(&cache, &env, env_h, edited)[0].is_none());
    }

    #[test]
    fn env_change_refuses_to_replay() {
        let env = env();
        let mut cache = CheckCache::new();
        let _ = record(&mut cache, &env, SRC);
        let mut env2 = env;
        env2.type_sig("Object", "extra", "() -> Integer", None);
        let env_h2 = crate::semdep::env_hash(&env2);
        assert!(replay_all(&cache, &env2, env_h2, SRC)[0].is_none());
    }

    #[test]
    fn garbage_and_truncation_load_as_empty() {
        let dir = std::env::temp_dir().join(format!("comprdl-persist-g-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.bin");

        assert!(CheckCache::load(&path).is_empty(), "missing file");
        std::fs::write(&path, b"not a cache file").unwrap();
        assert!(CheckCache::load(&path).is_empty(), "bad magic");

        let env = env();
        let mut cache = CheckCache::new();
        let _ = record(&mut cache, &env, SRC);
        let bytes = cache.to_bytes();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(CheckCache::load(&path).is_empty(), "truncated");

        let mut versioned = bytes.clone();
        versioned[8] ^= 0xff; // corrupt FORMAT_VERSION
        std::fs::write(&path, &versioned).unwrap();
        assert!(CheckCache::load(&path).is_empty(), "wrong version");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interior_corruption_is_caught_by_the_checksum_trailer() {
        // The v4 property: a bit flip *inside* the body — e.g. in a stored
        // Merkle key or cast counter, where the structure still parses —
        // must be rejected, not replayed wrong.
        let env = env();
        let mut cache = CheckCache::new();
        let _ = record(&mut cache, &env, SRC);
        let bytes = cache.to_bytes();
        assert!(CheckCache::from_bytes(&bytes).is_some(), "pristine bytes parse");

        for pos in [bytes.len() / 3, bytes.len() / 2, bytes.len() - 1] {
            let mut hit = bytes.clone();
            hit[pos] ^= 0x01;
            assert!(
                CheckCache::from_bytes(&hit).is_none(),
                "single bit flip at byte {pos} must invalidate the whole file"
            );
        }
    }

    #[test]
    fn seeded_corruption_always_degrades_to_a_cold_recheck() {
        let env = env();
        let mut cache = CheckCache::new();
        let _ = record(&mut cache, &env, SRC);
        let bytes = cache.to_bytes();

        let mut rejected = 0usize;
        for seed in 0..500u64 {
            let mutant = corrupt(&bytes, seed);
            // The load contract under every corruption mode: either the
            // corruption is detected (None → empty cache → cold re-check)
            // or the bytes survived untouched and the cache is exactly the
            // original — never a panic, never a different cache.
            match CheckCache::from_bytes(&mutant) {
                None => rejected += 1,
                Some(loaded) => {
                    assert_eq!(mutant, bytes, "seed {seed}: altered bytes parsed");
                    assert_eq!(loaded, cache, "seed {seed}: wrong replay");
                }
            }
        }
        assert!(rejected > 400, "corruption should almost always be detected: {rejected}/500");
    }

    #[test]
    fn corruption_is_deterministic_in_its_seed() {
        let env = env();
        let mut cache = CheckCache::new();
        let _ = record(&mut cache, &env, SRC);
        let bytes = cache.to_bytes();
        for seed in [0u64, 1, 17, 0xdead_beef] {
            assert_eq!(corrupt(&bytes, seed), corrupt(&bytes, seed), "seed {seed}");
        }
    }

    fn lint_records_for(src: &str) -> Vec<(String, ruby_syntax::Program, u64, Vec<LintRecord>)> {
        // A hand-rolled "lint" result: one finding anchored at the span of
        // the method's first body statement (a node-table span) and one at a
        // sub-span inside it (derived).
        let program = ruby_syntax::parse_program_strict(src).unwrap();
        let (owner, def) = &program.methods()[0];
        let first = def.body.first().expect("body");
        let sub =
            Span::in_file(first.span.file, first.span.start, first.span.start + 2, first.span.line);
        let records = vec![
            LintRecord {
                code: "LINT0102".into(),
                message: "local variable `x` is never used".into(),
                label: "assigned here but never read".into(),
                span: first.span,
            },
            LintRecord {
                code: "LINT0101".into(),
                message: "`x` may be used before it is assigned".into(),
                label: "used here".into(),
                span: sub,
            },
        ];
        vec![(owner.clone(), program.clone(), ruby_syntax::method_hash(def), records)]
    }

    #[test]
    fn lint_round_trip_replays_byte_identically_through_disk() {
        let src = "def m()\n  x = 1\n  2\nend\n";
        let mut cache = CheckCache::new();
        let recs = lint_records_for(src);
        let (owner, program, semhash, records) = &recs[0];
        let def = program.methods()[0].1;
        let files = vec![content_hash(src)];
        cache.record_lints(
            "unit",
            files.clone(),
            &[(owner.clone(), def, *semhash, records.clone())],
        );
        assert_eq!(cache.lint_method_count("unit"), 1);

        let dir = std::env::temp_dir().join(format!("comprdl-persist-l-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.bin");
        cache.save(&path).unwrap();
        let loaded = CheckCache::load(&path);
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(loaded, cache, "binary round trip must be lossless");

        let replayed = loaded.replay_lints("unit", &files, owner, def, *semhash).expect("replays");
        assert_eq!(&replayed, records, "same parse: spans replay verbatim");
    }

    #[test]
    fn lint_replay_reanchors_spans_after_layout_edit() {
        let src = "def m()\n  x = 1\n  2\nend\n";
        let mut cache = CheckCache::new();
        let recs = lint_records_for(src);
        let (owner, program, semhash, records) = &recs[0];
        let def = program.methods()[0].1;
        cache.record_lints(
            "unit",
            vec![content_hash(src)],
            &[(owner.clone(), def, *semhash, records.clone())],
        );

        let shifted_src = format!("# header comment\n\n{src}");
        let shifted = ruby_syntax::parse_program_strict(&shifted_src).unwrap();
        let sdef = shifted.methods()[0].1;
        assert_eq!(ruby_syntax::method_hash(sdef), *semhash, "layout edit keeps the hash");
        let replayed = cache
            .replay_lints("unit", &[content_hash(&shifted_src)], owner, sdef, *semhash)
            .expect("layout edit must not invalidate lints");
        let new_first = sdef.body.first().unwrap().span;
        assert_eq!(replayed[0].span, new_first, "node span re-anchors to the new parse");
        assert_eq!(replayed[1].span.start, new_first.start, "derived span follows its node");
        assert_eq!(replayed[1].span.end, new_first.start + 2);
        assert_eq!(replayed[0].code, records[0].code);
        assert_eq!(replayed[0].message, records[0].message);
    }

    #[test]
    fn lint_replay_refuses_on_semantic_edit() {
        let src = "def m()\n  x = 1\n  2\nend\n";
        let mut cache = CheckCache::new();
        let recs = lint_records_for(src);
        let (owner, program, semhash, records) = &recs[0];
        let def = program.methods()[0].1;
        cache.record_lints(
            "unit",
            vec![content_hash(src)],
            &[(owner.clone(), def, *semhash, records.clone())],
        );
        let edited_src = "def m()\n  x = 9\n  2\nend\n";
        let edited = ruby_syntax::parse_program_strict(edited_src).unwrap();
        let edef = edited.methods()[0].1;
        let new_hash = ruby_syntax::method_hash(edef);
        assert_ne!(new_hash, *semhash);
        assert!(cache
            .replay_lints("unit", &[content_hash(edited_src)], owner, edef, new_hash)
            .is_none());
    }

    #[test]
    fn record_app_preserves_lints_recorded_against_the_same_sources() {
        let env = env();
        let mut cache = CheckCache::new();
        // Lints first (the parallel harness can finish either pass first)...
        let recs = lint_records_for(SRC);
        let (owner, program, semhash, records) = &recs[0];
        let def = program.methods()[0].1;
        cache.record_lints(
            "unit",
            vec![content_hash(SRC)],
            &[(owner.clone(), def, *semhash, records.clone())],
        );
        // ...then the check verdicts for the same sources.
        let env_h = record(&mut cache, &env, SRC);
        assert_eq!(cache.lint_method_count("unit"), 1, "record_app must keep the lint section");
        assert!(cache.replay_lints("unit", &[content_hash(SRC)], owner, def, *semhash).is_some());
        // Check replay still works too.
        assert!(replay_all(&cache, &env, env_h, SRC)[0].is_some());
    }

    #[test]
    fn empty_lint_verdicts_replay_as_empty_not_none() {
        let src = "def m()\n  1\nend\n";
        let program = ruby_syntax::parse_program_strict(src).unwrap();
        let (owner, def) = &program.methods()[0];
        let semhash = ruby_syntax::method_hash(def);
        let mut cache = CheckCache::new();
        cache.record_lints(
            "unit",
            vec![content_hash(src)],
            &[(owner.clone(), *def, semhash, Vec::new())],
        );
        let replayed = cache.replay_lints("unit", &[content_hash(src)], owner, def, semhash);
        assert_eq!(replayed, Some(Vec::new()), "clean methods replay without re-linting");
    }

    fn sample_effects() -> Vec<EffectRecord> {
        vec![
            EffectRecord {
                owner: "Object".into(),
                name: "helper".into(),
                singleton: false,
                merkle: 0xdead_beef,
                term: 0,
                purity: 0,
                ..EffectRecord::default()
            },
            EffectRecord {
                owner: "Talk".into(),
                name: "spin".into(),
                singleton: true,
                merkle: 42,
                term: 2,
                purity: 1,
                term_blame: vec!["spin".into(), "while loop".into()],
                purity_blame: vec!["spin".into(), "inner".into(), "@x=".into()],
                taint_return: vec![0, 2],
                taint_sink: vec![1],
                self_to_return: true,
                self_to_sink: false,
            },
        ]
    }

    #[test]
    fn effect_summaries_round_trip_and_replay_by_merkle() {
        let mut cache = CheckCache::new();
        cache.record_effects("unit", sample_effects());
        assert_eq!(cache.effect_method_count("unit"), 2);

        let dir = std::env::temp_dir().join(format!("comprdl-persist-e-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.bin");
        cache.save(&path).unwrap();
        let loaded = CheckCache::load(&path);
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(loaded, cache, "binary round trip must be lossless");

        let r = loaded.replay_effects("unit", "Talk", "spin", true, 42).expect("replays");
        assert_eq!(r, sample_effects()[1]);
        // A moved Merkle hash (any transitive dependency change) misses.
        assert!(loaded.replay_effects("unit", "Talk", "spin", true, 43).is_none());
        // Wrong kind misses.
        assert!(loaded.replay_effects("unit", "Talk", "spin", false, 42).is_none());
    }

    #[test]
    fn record_app_preserves_the_effect_section() {
        let env = env();
        let mut cache = CheckCache::new();
        cache.record_effects("unit", sample_effects());
        let _ = record(&mut cache, &env, SRC);
        assert_eq!(cache.effect_method_count("unit"), 2, "record_app must keep the effect section");
        assert!(cache.replay_effects("unit", "Object", "helper", false, 0xdead_beef).is_some());
    }

    #[test]
    fn file_reordering_does_not_invalidate() {
        // Replay keyed by content hash: the same source at a different
        // Span.file id / file-table position still replays.
        let env = env();
        let mut cache = CheckCache::new();
        let env_h = record(&mut cache, &env, SRC);
        let program = ruby_syntax::parse_program_strict(SRC).unwrap();
        let g = crate::semdep::DepGraph::build(&env, &program);
        // Current process: some other file occupies id 0.
        let files = vec![content_hash("something else"), content_hash(SRC)];
        let mut store = TypeStore::new();
        let (owner, def) = &program.methods()[0];
        let merkle = g.merkle(owner, &def.name, def.singleton).unwrap();
        assert!(cache
            .replay("unit", &env, env_h, &files, owner, def, merkle, &mut store)
            .is_some());
    }
}
