//! The concurrent run-time check memo shared by every [`CompRdlHook`]
//! constructed over it: a sharded, bounded, `Send + Sync` table of check
//! verdicts keyed on `(namespace, call site, value fingerprint)`.
//!
//! [`CompRdlHook`]: crate::runtime::CompRdlHook
//!
//! ## Lock-free reads (seqlock shards)
//!
//! The PR 4 memo guarded each shard's `HashMap` with a `Mutex`, so every
//! warm *read* — the overwhelmingly common operation on a long-lived server
//! — serialized on a lock and paid SipHash over the whole key.  Each shard
//! is now an **open-addressed slot array** read without any lock: every
//! slot carries an odd/even **sequence word** (`seq`), and its key, stamp
//! and flag fields are plain atomics.
//!
//! * **Readers** load `seq` (odd means a writer is mid-update: spin
//!   briefly, then treat the slot as unusable — a miss is always sound),
//!   load the fields, and re-check `seq`; a changed word means the read
//!   was torn and the reader retries.  A consistent, key-matching,
//!   fresh-stamped snapshot is a hit with no lock acquired.
//! * **Writers** (miss/insert, stale-entry removal, eviction) take the
//!   shard's write `Mutex`, bump `seq` to odd, update the fields, and bump
//!   it back to even.  Writes only happen on misses and invalidations, so
//!   the lock is off the warm path entirely.
//!
//! Blame payloads (`Err` verdicts carry an owned [`BlameDiagnostic`])
//! cannot be read as a torn-tolerant word, so each slot keeps its blame in
//! a tiny per-slot `Mutex<Option<Arc<..>>>` touched **only** when the
//! verdict is a blame — the `Ok` fast path never locks anything, and a
//! blame replay contends on one slot, never on a shard.
//!
//! ## Per-namespace epochs
//!
//! PR 4's epoch was a single global counter: any hook's store mutation
//! lazily flushed *every* namespace's warm entries, so one app's mid-suite
//! migration cost the other seven apps their hit rate.  The epoch is now
//! **per namespace** — a hook's [`mutate_store`] (or a comp-type
//! evaluation that mutates type-level state mid-flight) bumps only its own
//! namespace's counter, and a lookup re-reads that namespace's epoch (not
//! a global one) when judging freshness.  This is sound because namespaces
//! never share keys: an entry is only ever replayed by hooks of the
//! namespace that recorded it, and those hooks are deterministic replays
//! of one program whose mutations all bump the same counter.  A migration
//! in app A literally cannot invalidate — and no longer flushes — app B's
//! entries.
//!
//! [`mutate_store`]: crate::runtime::CompRdlHook::mutate_store
//!
//! ## Bounded shards (CLOCK eviction)
//!
//! PR 4's `HashMap` shards grew without bound.  Slot arrays are now
//! **fixed-capacity** ([`SharedMemo::with_capacity`]); a key probes a
//! short window of slots, and an insert that finds its window full evicts
//! by **second-chance (CLOCK)**: every hit sets the slot's referenced
//! flag, the victim scan clears flags until it finds an unreferenced slot,
//! and the evicted entry simply costs its next reader a re-evaluation —
//! eviction can never change a verdict, only the hit rate.  Long-lived
//! runs therefore hold memo memory constant.
//!
//! The baseline mutex path is still available behind
//! [`SharedMemo::with_settings`]'s `locked_reads` flag so the `memo_churn`
//! bench can measure the seqlock win against the exact same table.

use crate::runtime::BlameDiagnostic;
use rdl_types::Fingerprint;
use ruby_syntax::Span;
use std::collections::HashMap;
use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Derives a stable memo namespace from a program / app name, so replays of
/// the same program share entries while unrelated programs never do.
pub fn memo_namespace(name: &str) -> u64 {
    let mut fp = Fingerprint::new();
    fp.write_str(name);
    fp.finish()
}

/// Memo keys: `(namespace, call site, value fingerprint)`.  The namespace
/// keeps programs whose spans collide (every corpus app starts at file 0,
/// offset 0) from ever exchanging verdicts.
pub type MemoKey = (u64, Span, u64);

/// Which callback's verdicts a memo operation addresses (`before_call`
/// consistency checks vs `after_call` return checks); part of the key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoTable {
    /// `before_call` outcomes, keyed on the receiver+argument fingerprint.
    Before,
    /// `after_call` outcomes, keyed on the return-value fingerprint.
    After,
}

/// Aggregate counters of one [`SharedMemo`] (or one namespace within it):
/// hits, misses, stamp invalidations, and capacity evictions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups answered from the table.
    pub hits: u64,
    /// Lookups that fell through to evaluation.
    pub misses: u64,
    /// Entries removed because a stamp (store generation or namespace
    /// epoch) moved past them; every invalidation is also counted as a
    /// miss.
    pub invalidations: u64,
    /// Entries displaced by capacity pressure (the CLOCK second-chance
    /// victim scan), attributed to the namespace that *owned* the evicted
    /// entry.
    pub evictions: u64,
}

impl MemoStats {
    /// Total lookups (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate as a fraction in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// A point-in-time snapshot of one namespace's counters and epoch, labeled
/// with the app name it was registered under (see
/// [`SharedMemo::register_namespace`]).
#[derive(Debug, Clone, PartialEq)]
pub struct NamespaceStats {
    /// The label the namespace was registered with (empty for namespaces
    /// that were only ever derived from a raw id).
    pub label: String,
    /// The namespace id ([`memo_namespace`] of the label, for registered
    /// namespaces).
    pub namespace: u64,
    /// The namespace's current epoch: how many store mutations its hooks
    /// have observed.
    pub epoch: u64,
    /// The namespace's counters.
    pub stats: MemoStats,
}

/// Per-namespace shared state: the epoch its entries are stamped with and
/// the counters its lookups update.  Hooks (and direct [`SharedMemo::lookup`]
/// callers) resolve their namespace's state once via
/// [`SharedMemo::namespace_state`] and then never touch the registry map
/// again.
#[derive(Debug, Default)]
pub struct NamespaceState {
    label: Mutex<String>,
    epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    evictions: AtomicU64,
}

impl NamespaceState {
    /// The namespace's current epoch.  Entries recorded at an older epoch
    /// are stale: some hook of this namespace's store has mutated since.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Advances the namespace's epoch, invalidating (lazily, on next
    /// lookup) every entry recorded under it.  Other namespaces' entries
    /// are untouched — they never share keys with this one.
    pub fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    fn snapshot(&self, namespace: u64) -> NamespaceStats {
        NamespaceStats {
            label: self.label.lock().unwrap_or_else(|e| e.into_inner()).clone(),
            namespace,
            epoch: self.epoch(),
            stats: MemoStats {
                hits: self.hits.load(Ordering::Relaxed),
                misses: self.misses.load(Ordering::Relaxed),
                invalidations: self.invalidations.load(Ordering::Relaxed),
                evictions: self.evictions.load(Ordering::Relaxed),
            },
        }
    }
}

/// Slot flag bits (stored in [`Slot::flags`], seqlock-guarded except for
/// the referenced bit, which readers set with a lock-free RMW on hit).
const FLAG_OCCUPIED: u64 = 1;
/// Set when the slot belongs to the `after_call` table (part of the key).
const FLAG_AFTER: u64 = 2;
/// Set when the verdict is a blame (the payload lives in [`Slot::blame`]).
const FLAG_BLAME: u64 = 4;
/// CLOCK second-chance bit: set on every hit, cleared by the victim scan.
const FLAG_REFERENCED: u64 = 8;

/// How many consecutive slots a key may occupy (its probe window), and
/// therefore how many slots a lookup scans.  Bounded probing is what makes
/// eviction safe: a key is only ever found inside its own window, so
/// displacing any slot can only turn someone's hit into a miss.
const PROBE_WINDOW: usize = 8;

/// How many times a reader retries a torn or mid-write slot before giving
/// up and treating it as a miss (sound: a miss just re-evaluates).
const SPIN_LIMIT: usize = 64;

/// One seqlock-guarded slot of a shard's open-addressed entry table.
///
/// All fields except `blame` are atomics written only by the shard's
/// (mutex-serialized) writers inside an odd `seq` window and read by
/// anyone; `blame` is the out-of-line payload for `Err` verdicts, guarded
/// by its own per-slot mutex so the `Ok` fast path never locks.
#[derive(Debug, Default)]
struct Slot {
    /// Sequence word: `0` = never written, odd = writer mid-update, other
    /// even = stable.  Monotonically increasing.
    seq: AtomicU64,
    flags: AtomicU64,
    ns: AtomicU64,
    fp: AtomicU64,
    start: AtomicU64,
    end: AtomicU64,
    line_file: AtomicU64,
    generation: AtomicU64,
    epoch: AtomicU64,
    blame: Mutex<Option<Arc<BlameDiagnostic>>>,
}

/// A validated (untorn) copy of one slot's seqlock-guarded fields.
struct SlotSnapshot {
    flags: u64,
    ns: u64,
    fp: u64,
    start: u64,
    end: u64,
    line_file: u64,
    generation: u64,
    epoch: u64,
    blame: Option<Arc<BlameDiagnostic>>,
}

impl Slot {
    /// Seqlock read: returns a consistent snapshot, or `None` if the slot
    /// stayed torn / mid-write for [`SPIN_LIMIT`] attempts (callers treat
    /// that as a miss).
    fn read(&self) -> Option<SlotSnapshot> {
        for _ in 0..SPIN_LIMIT {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let flags = self.flags.load(Ordering::Relaxed);
            let snap = SlotSnapshot {
                flags,
                ns: self.ns.load(Ordering::Relaxed),
                fp: self.fp.load(Ordering::Relaxed),
                start: self.start.load(Ordering::Relaxed),
                end: self.end.load(Ordering::Relaxed),
                line_file: self.line_file.load(Ordering::Relaxed),
                generation: self.generation.load(Ordering::Relaxed),
                epoch: self.epoch.load(Ordering::Relaxed),
                // Only blame-carrying verdicts pay for the per-slot lock;
                // the clone is an `Arc` bump, and the seq re-check below
                // rejects the snapshot if a writer replaced the payload
                // while we held it.
                blame: if flags & FLAG_BLAME != 0 {
                    self.blame.lock().unwrap_or_else(|e| e.into_inner()).clone()
                } else {
                    None
                },
            };
            fence(Ordering::Acquire);
            if self.seq.load(Ordering::Relaxed) == s1 {
                return Some(snap);
            }
            std::hint::spin_loop();
        }
        None
    }

    /// Whether this (consistent) snapshot holds exactly `key` in `table`.
    fn snapshot_matches(snap: &SlotSnapshot, table: MemoTable, key: &MemoKey) -> bool {
        let (namespace, site, fp) = key;
        snap.flags & FLAG_OCCUPIED != 0
            && ((snap.flags & FLAG_AFTER != 0) == matches!(table, MemoTable::After))
            && snap.ns == *namespace
            && snap.fp == *fp
            && snap.start == site.start as u64
            && snap.end == site.end as u64
            && snap.line_file == pack_line_file(site)
    }

    /// Writes `key` + verdict into the slot under the seqlock write
    /// protocol.  Caller must hold the shard's write mutex.
    fn write(
        &self,
        table: MemoTable,
        key: &MemoKey,
        generation: u64,
        epoch: u64,
        outcome: &Result<(), BlameDiagnostic>,
    ) {
        let (namespace, site, fp) = key;
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        self.ns.store(*namespace, Ordering::Relaxed);
        self.fp.store(*fp, Ordering::Relaxed);
        self.start.store(site.start as u64, Ordering::Relaxed);
        self.end.store(site.end as u64, Ordering::Relaxed);
        self.line_file.store(pack_line_file(site), Ordering::Relaxed);
        self.generation.store(generation, Ordering::Relaxed);
        self.epoch.store(epoch, Ordering::Relaxed);
        let mut flags = FLAG_OCCUPIED | FLAG_REFERENCED;
        if matches!(table, MemoTable::After) {
            flags |= FLAG_AFTER;
        }
        let blame = match outcome {
            Ok(()) => None,
            Err(b) => {
                flags |= FLAG_BLAME;
                Some(Arc::new(b.clone()))
            }
        };
        *self.blame.lock().unwrap_or_else(|e| e.into_inner()) = blame;
        self.flags.store(flags, Ordering::Relaxed);
        self.seq.store(s + 2, Ordering::Release);
    }

    /// Marks the slot empty under the seqlock write protocol.  Caller must
    /// hold the shard's write mutex.
    fn clear(&self) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        self.flags.store(0, Ordering::Relaxed);
        *self.blame.lock().unwrap_or_else(|e| e.into_inner()) = None;
        self.seq.store(s + 2, Ordering::Release);
    }
}

/// Packs a span's line and file id into one slot word.
fn pack_line_file(site: &Span) -> u64 {
    (u64::from(site.line) << 32) | u64::from(site.file)
}

/// Writer-side shard state, serialized by the shard mutex.
#[derive(Debug, Default)]
struct WriterState {
    /// CLOCK hand: rotates the victim-scan start within the probe window
    /// so eviction pressure does not always land on the window's first
    /// slot.
    clock: usize,
    /// Evictions not yet attributed to their namespace's counters, keyed
    /// by the displaced entry's namespace.  Tallied here — under the shard
    /// lock the evicting insert already holds — and drained to the
    /// namespace registry lazily by the stats readers, so the write path
    /// never touches the global registry mutex (under sustained capacity
    /// pressure that lock would otherwise serialize every shard's
    /// evicting inserts).
    pending_evictions: HashMap<u64, u64>,
}

/// One shard: a fixed-size open-addressed slot array (power-of-two length)
/// read lock-free, plus the write mutex that serializes inserts, stale
/// removals and evictions.
#[derive(Debug)]
struct Shard {
    slots: Box<[Slot]>,
    mask: usize,
    len: AtomicUsize,
    writer: Mutex<WriterState>,
}

impl Shard {
    fn new(slots: usize) -> Self {
        Shard {
            slots: (0..slots).map(|_| Slot::default()).collect(),
            mask: slots - 1,
            len: AtomicUsize::new(0),
            writer: Mutex::new(WriterState::default()),
        }
    }
}

/// The concurrent run-time check memo shared by every
/// [`CompRdlHook`](crate::runtime::CompRdlHook) constructed over it (see
/// the module docs for the read path, epoch and eviction design).
pub struct SharedMemo {
    shards: Box<[Shard]>,
    namespaces: Mutex<HashMap<u64, Arc<NamespaceState>>>,
    /// Bench-only baseline: when set, lookups take the shard write mutex
    /// (the PR 4 behaviour) instead of the seqlock read path, so
    /// `memo_churn` can measure the lock's cost against the same table.
    locked_reads: bool,
}

impl SharedMemo {
    /// Default shard count: enough that one thread per corpus app rarely
    /// contends on the write path, small enough that shard occupancy stats
    /// stay readable.
    pub const DEFAULT_SHARDS: usize = 16;

    /// Default total capacity (entries across all shards): comfortably
    /// above the live-entry count of the whole corpus harness, while
    /// bounding a long-lived server run to a few megabytes of memo.
    pub const DEFAULT_CAPACITY: usize = 16 * 1024;

    /// A memo with [`SharedMemo::DEFAULT_SHARDS`] shards and
    /// [`SharedMemo::DEFAULT_CAPACITY`] capacity.
    pub fn new() -> Self {
        SharedMemo::with_settings(Self::DEFAULT_SHARDS, Self::DEFAULT_CAPACITY, false)
    }

    /// A memo with `shards` shards (clamped to at least 1) at the default
    /// capacity.
    pub fn with_shards(shards: usize) -> Self {
        SharedMemo::with_settings(shards, Self::DEFAULT_CAPACITY, false)
    }

    /// A memo bounded to roughly `entries` recorded verdicts across the
    /// default shard count.  Capacity is a hard bound enforced by CLOCK
    /// second-chance eviction, never by refusing inserts: overflow costs
    /// hit rate, not correctness.
    pub fn with_capacity(entries: usize) -> Self {
        SharedMemo::with_settings(Self::DEFAULT_SHARDS, entries, false)
    }

    /// Full-control constructor: `shards` shards (≥ 1), a total capacity
    /// of roughly `entries` slots (rounded up to a power of two per shard,
    /// at least the probe window), and — for the bench baseline only —
    /// `locked_reads`, which routes every lookup through the shard write
    /// mutex the way the pre-seqlock memo did.
    pub fn with_settings(shards: usize, entries: usize, locked_reads: bool) -> Self {
        let shards = shards.max(1);
        let per_shard = entries.div_ceil(shards).next_power_of_two().max(PROBE_WINDOW);
        SharedMemo {
            shards: (0..shards).map(|_| Shard::new(per_shard)).collect(),
            namespaces: Mutex::new(HashMap::new()),
            locked_reads,
        }
    }

    /// Total slot capacity (the hard bound on recorded entries).
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.slots.len()).sum()
    }

    /// True when lookups take the shard mutex (the bench baseline path)
    /// instead of the lock-free read path.
    pub fn locked_reads(&self) -> bool {
        self.locked_reads
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Entries currently recorded per shard, in shard order.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.len.load(Ordering::Relaxed)).collect()
    }

    /// Total number of recorded entries across all shards.
    pub fn len(&self) -> usize {
        self.shard_sizes().iter().sum()
    }

    /// True when no entries are recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Registers (or re-labels) the namespace for `name` and returns its
    /// id — [`memo_namespace`]`(name)`.  Harnesses register each app's
    /// name so [`SharedMemo::namespace_stats`] can report per-app rows.
    pub fn register_namespace(&self, name: &str) -> u64 {
        let id = memo_namespace(name);
        let state = self.namespace_state(id);
        let mut label = state.label.lock().unwrap_or_else(|e| e.into_inner());
        if label.is_empty() {
            *label = name.to_string();
        }
        id
    }

    /// The current epoch of `namespace` (0 if it has never been touched).
    pub fn namespace_epoch(&self, namespace: u64) -> u64 {
        self.namespace_state(namespace).epoch()
    }

    /// Advances `namespace`'s epoch, lazily invalidating every entry
    /// recorded under it — and only under it.  Hooks call this through
    /// [`mutate_store`](crate::runtime::CompRdlHook::mutate_store)
    /// whenever a store mutation is observed; harnesses can call it
    /// directly to model an out-of-band type-level change to one program.
    pub fn bump_namespace_epoch(&self, namespace: u64) {
        self.namespace_state(namespace).bump_epoch();
    }

    /// Aggregate hit / miss / invalidation / eviction counters across
    /// every namespace (and therefore every hook) sharing this memo.
    pub fn stats(&self) -> MemoStats {
        self.flush_evictions();
        let map = self.namespaces.lock().unwrap_or_else(|e| e.into_inner());
        let mut total = MemoStats::default();
        for state in map.values() {
            let s = state.snapshot(0).stats;
            total.hits += s.hits;
            total.misses += s.misses;
            total.invalidations += s.invalidations;
            total.evictions += s.evictions;
        }
        total
    }

    /// Per-namespace counter snapshots, sorted by label then namespace id
    /// so the rendering is deterministic.
    pub fn namespace_stats(&self) -> Vec<NamespaceStats> {
        self.flush_evictions();
        let map = self.namespaces.lock().unwrap_or_else(|e| e.into_inner());
        let mut rows: Vec<NamespaceStats> =
            map.iter().map(|(id, state)| state.snapshot(*id)).collect();
        drop(map);
        rows.sort_by(|a, b| a.label.cmp(&b.label).then(a.namespace.cmp(&b.namespace)));
        rows
    }

    /// The shared state of `namespace`, created on first use.  Hooks
    /// resolve this once at construction; per-lookup paths never touch
    /// the registry lock.
    pub fn namespace_state(&self, namespace: u64) -> Arc<NamespaceState> {
        let mut map = self.namespaces.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(namespace).or_default().clone()
    }

    /// Hashes the full key — including the value fingerprint and the
    /// before/after table tag — so a hot call site's entries spread across
    /// shards instead of serializing on one.
    fn key_hash(table: MemoTable, key: &MemoKey) -> u64 {
        let (namespace, site, value_fp) = key;
        let mut fp = Fingerprint::new();
        fp.write_u64(*namespace);
        fp.write_usize(site.start);
        fp.write_usize(site.end);
        fp.write_u64(u64::from(site.file));
        fp.write_u64(*value_fp);
        fp.write_u8(match table {
            MemoTable::Before => 0,
            MemoTable::After => 1,
        });
        fp.finish()
    }

    fn shard_for(&self, hash: u64) -> &Shard {
        &self.shards[(hash % self.shards.len() as u64) as usize]
    }

    /// The base slot index of `hash`'s probe window within its shard.
    fn slot_index(shard: &Shard, hash: u64) -> usize {
        // Remix: the low bits already picked the shard, so fold the high
        // half in before masking down to a slot.
        (hash.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & shard.mask
    }

    /// Looks up a verdict, evicting stamp-stale entries (a store mutation
    /// between calls must force re-evaluation, §4).  Returns the recorded
    /// outcome (if fresh) and whether a stale entry was evicted.
    ///
    /// Freshness compares the entry's stamps against the caller's store
    /// `generation` and the **namespace's current epoch**, re-read here
    /// (from `ns`, the caller's namespace state) rather than taken from
    /// any earlier sample: an entry recorded just before a concurrent bump
    /// must be rejected, and a caller holding a stale epoch sample must
    /// not evict an entry a sibling hook just recorded at the newest epoch
    /// (the removal path re-reads the epoch once more under the shard
    /// lock before touching the slot).
    ///
    /// Public so the `memo_churn` bench can drive the read path directly;
    /// `ns` must be [`SharedMemo::namespace_state`] of the key's namespace.
    pub fn lookup(
        &self,
        table: MemoTable,
        key: &MemoKey,
        generation: u64,
        ns: &NamespaceState,
    ) -> (Option<Result<(), BlameDiagnostic>>, bool) {
        let hash = Self::key_hash(table, key);
        let shard = self.shard_for(hash);
        let base = Self::slot_index(shard, hash);
        let epoch = ns.epoch();
        // The bench baseline: hold the shard write mutex across the whole
        // probe, exactly like the pre-seqlock memo did.
        let guard = if self.locked_reads {
            Some(shard.writer.lock().unwrap_or_else(|e| e.into_inner()))
        } else {
            None
        };
        for i in 0..PROBE_WINDOW {
            let slot = &shard.slots[(base + i) & shard.mask];
            let snap = match slot.read() {
                Some(snap) => snap,
                // Persistently torn: a writer held the slot mid-update for
                // the whole spin budget (e.g. it was preempted).  Wait it
                // out behind the shard write mutex — once acquired no
                // writer is active, so the re-read is consistent — keeping
                // hit/miss counts deterministic under contention.  (In
                // locked mode the guard is already held and a slot can
                // never read torn, so this arm is unreachable there.)
                None if guard.is_none() => {
                    let held = shard.writer.lock().unwrap_or_else(|e| e.into_inner());
                    let reread = slot.read();
                    drop(held);
                    match reread {
                        Some(snap) => snap,
                        None => continue,
                    }
                }
                None => continue,
            };
            if !Slot::snapshot_matches(&snap, table, key) {
                continue;
            }
            if snap.generation == generation && snap.epoch == epoch {
                slot.flags.fetch_or(FLAG_REFERENCED, Ordering::Relaxed);
                ns.hits.fetch_add(1, Ordering::Relaxed);
                let outcome = match snap.blame {
                    Some(blame) => Err((*blame).clone()),
                    None => Ok(()),
                };
                return (Some(outcome), false);
            }
            // Stale stamps: remove the entry under the shard lock (unless
            // a sibling refreshed it in the meantime).
            let removed = if guard.is_some() {
                Self::remove_if_stale(shard, base, table, key, generation, ns)
            } else {
                let held = shard.writer.lock().unwrap_or_else(|e| e.into_inner());
                let removed = Self::remove_if_stale(shard, base, table, key, generation, ns);
                drop(held);
                removed
            };
            ns.misses.fetch_add(1, Ordering::Relaxed);
            if removed {
                ns.invalidations.fetch_add(1, Ordering::Relaxed);
            }
            return (None, removed);
        }
        ns.misses.fetch_add(1, Ordering::Relaxed);
        (None, false)
    }

    /// Re-probes `key`'s window (from `base`, the slot index the caller
    /// already derived from the key hash) and clears its slot if —
    /// re-checked under the shard write mutex, with the namespace epoch
    /// re-read — its stamps are still stale.  Returns whether an entry was
    /// removed.
    ///
    /// Caller must hold the shard's write mutex.
    fn remove_if_stale(
        shard: &Shard,
        base: usize,
        table: MemoTable,
        key: &MemoKey,
        generation: u64,
        ns: &NamespaceState,
    ) -> bool {
        let epoch = ns.epoch();
        for i in 0..PROBE_WINDOW {
            let slot = &shard.slots[(base + i) & shard.mask];
            // Holding the write mutex means no writer is active; the read
            // cannot stay torn.
            let Some(snap) = slot.read() else { continue };
            if !Slot::snapshot_matches(&snap, table, key) {
                continue;
            }
            if snap.generation == generation && snap.epoch == epoch {
                return false; // a sibling refreshed it; keep it
            }
            slot.clear();
            shard.len.fetch_sub(1, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Records a verdict for `key`, stamped with the caller's store
    /// `generation` and the namespace `epoch` the caller sampled before
    /// evaluating.  Takes the shard write mutex; if the probe window is
    /// full, evicts by second-chance and attributes the eviction to the
    /// displaced entry's namespace.
    pub fn insert(
        &self,
        table: MemoTable,
        key: &MemoKey,
        generation: u64,
        epoch: u64,
        outcome: &Result<(), BlameDiagnostic>,
    ) {
        let hash = Self::key_hash(table, key);
        let shard = self.shard_for(hash);
        let base = Self::slot_index(shard, hash);
        let mut writer = shard.writer.lock().unwrap_or_else(|e| e.into_inner());
        // First pass: overwrite the key in place if present (a sibling may
        // have inserted while we evaluated), else remember the first empty
        // slot.  The whole window is scanned before an empty slot is used,
        // so a key can never occupy two slots.
        let mut empty = None;
        for i in 0..PROBE_WINDOW {
            let idx = (base + i) & shard.mask;
            let slot = &shard.slots[idx];
            let Some(snap) = slot.read() else { continue };
            if snap.flags & FLAG_OCCUPIED == 0 {
                empty.get_or_insert(idx);
                continue;
            }
            if Slot::snapshot_matches(&snap, table, key) {
                slot.write(table, key, generation, epoch, outcome);
                return;
            }
        }
        if let Some(idx) = empty {
            shard.slots[idx].write(table, key, generation, epoch, outcome);
            shard.len.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Window full: CLOCK second-chance.  Clear referenced bits until
        // an unreferenced slot turns up; two passes guarantee a victim
        // (after the first pass every bit is clear).
        let start = writer.clock % PROBE_WINDOW;
        writer.clock = (writer.clock + 1) % PROBE_WINDOW;
        let mut victim = (base + start) & shard.mask;
        'scan: for _pass in 0..2 {
            for i in 0..PROBE_WINDOW {
                let idx = (base + (start + i) % PROBE_WINDOW) & shard.mask;
                let slot = &shard.slots[idx];
                let flags = slot.flags.load(Ordering::Relaxed);
                if flags & FLAG_REFERENCED != 0 {
                    slot.flags.store(flags & !FLAG_REFERENCED, Ordering::Relaxed);
                } else {
                    victim = idx;
                    break 'scan;
                }
            }
        }
        let displaced = shard.slots[victim].ns.load(Ordering::Relaxed);
        *writer.pending_evictions.entry(displaced).or_insert(0) += 1;
        shard.slots[victim].write(table, key, generation, epoch, outcome);
    }

    /// Drains every shard's pending eviction tally into the namespace
    /// counters.  Called by the stats readers; each shard lock is held
    /// only long enough to take the tally, and the registry lock is never
    /// nested inside it.
    fn flush_evictions(&self) {
        for shard in self.shards.iter() {
            let pending = {
                let mut writer = shard.writer.lock().unwrap_or_else(|e| e.into_inner());
                std::mem::take(&mut writer.pending_evictions)
            };
            for (namespace, count) in pending {
                self.namespace_state(namespace).evictions.fetch_add(count, Ordering::Relaxed);
            }
        }
    }
}

impl Default for SharedMemo {
    fn default() -> Self {
        SharedMemo::new()
    }
}

impl std::fmt::Debug for SharedMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedMemo")
            .field("shards", &self.shards.len())
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .field("locked_reads", &self.locked_reads)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::BLAME_RETURN;

    fn key(ns: u64, n: usize, fp: u64) -> MemoKey {
        (ns, Span::new(n * 10, n * 10 + 5, n as u32 + 1), fp)
    }

    fn blame(msg: &str) -> BlameDiagnostic {
        BlameDiagnostic { site: Span::new(1, 2, 1), code: BLAME_RETURN, message: msg.to_string() }
    }

    #[test]
    fn insert_then_lookup_roundtrips_ok_and_blame() {
        let memo = SharedMemo::new();
        let ns = memo.namespace_state(7);
        let k_ok = key(7, 1, 11);
        let k_bad = key(7, 2, 22);
        memo.insert(MemoTable::After, &k_ok, 0, 0, &Ok(()));
        memo.insert(MemoTable::After, &k_bad, 0, 0, &Err(blame("nope")));
        assert_eq!(memo.lookup(MemoTable::After, &k_ok, 0, &ns), (Some(Ok(())), false));
        let (got, _) = memo.lookup(MemoTable::After, &k_bad, 0, &ns);
        assert_eq!(got, Some(Err(blame("nope"))));
        // The before/after tables are distinct key spaces.
        let (got, evicted) = memo.lookup(MemoTable::Before, &k_ok, 0, &ns);
        assert_eq!((got, evicted), (None, false));
        assert_eq!(memo.len(), 2);
        let stats = memo.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
    }

    #[test]
    fn stale_generation_and_stale_epoch_both_invalidate() {
        let memo = SharedMemo::new();
        let ns = memo.namespace_state(7);
        let k = key(7, 1, 11);
        memo.insert(MemoTable::After, &k, 0, 0, &Ok(()));
        // Newer generation: stale.
        assert_eq!(memo.lookup(MemoTable::After, &k, 1, &ns), (None, true));
        memo.insert(MemoTable::After, &k, 1, 0, &Ok(()));
        // Namespace epoch bump: stale.
        ns.bump_epoch();
        assert_eq!(memo.lookup(MemoTable::After, &k, 1, &ns), (None, true));
        assert_eq!(memo.len(), 0);
        assert_eq!(memo.stats().invalidations, 2);
    }

    #[test]
    fn epoch_bumps_do_not_cross_namespaces() {
        let memo = SharedMemo::new();
        let ns_a = memo.namespace_state(1);
        let ns_b = memo.namespace_state(2);
        let ka = key(1, 1, 11);
        let kb = key(2, 1, 11);
        memo.insert(MemoTable::After, &ka, 0, ns_a.epoch(), &Ok(()));
        memo.insert(MemoTable::After, &kb, 0, ns_b.epoch(), &Ok(()));
        memo.bump_namespace_epoch(1);
        assert_eq!(
            memo.lookup(MemoTable::After, &ka, 0, &ns_a),
            (None, true),
            "a's entry is stale after a's bump"
        );
        assert_eq!(
            memo.lookup(MemoTable::After, &kb, 0, &ns_b),
            (Some(Ok(())), false),
            "b's entry must survive a's bump"
        );
        assert_eq!(memo.namespace_epoch(1), 1);
        assert_eq!(memo.namespace_epoch(2), 0);
    }

    #[test]
    fn capacity_overflow_evicts_instead_of_growing() {
        // One shard, minimal capacity: the probe window *is* the shard.
        let memo = SharedMemo::with_settings(1, PROBE_WINDOW, false);
        assert_eq!(memo.capacity(), PROBE_WINDOW);
        let ns = memo.namespace_state(7);
        // All keys share one site so fingerprints alone vary: they still
        // spread over the whole window via the slot hash, and overflow
        // must displace rather than grow.
        for fp in 0..(PROBE_WINDOW as u64 * 4) {
            memo.insert(MemoTable::After, &key(7, 1, fp), 0, 0, &Ok(()));
        }
        assert!(memo.len() <= PROBE_WINDOW, "capacity is a hard bound");
        let stats = memo.stats();
        assert!(stats.evictions > 0, "overflow must evict: {stats:?}");
        // Evicted keys miss (and re-insert) rather than erroring.
        let mut hits = 0;
        for fp in 0..(PROBE_WINDOW as u64 * 4) {
            if let (Some(Ok(())), _) = memo.lookup(MemoTable::After, &key(7, 1, fp), 0, &ns) {
                hits += 1;
            }
        }
        assert!(hits > 0 && hits <= PROBE_WINDOW);
    }

    #[test]
    fn second_chance_prefers_unreferenced_victims() {
        let memo = SharedMemo::with_settings(1, PROBE_WINDOW, false);
        let ns = memo.namespace_state(7);
        for fp in 0..PROBE_WINDOW as u64 {
            memo.insert(MemoTable::After, &key(7, 1, fp), 0, 0, &Ok(()));
        }
        // Clear every referenced bit (one full victim scan's worth of
        // pressure), then touch fp=3 so it is the one entry with its bit
        // set again.
        memo.insert(MemoTable::After, &key(7, 2, 100), 0, 0, &Ok(()));
        let (got, _) = memo.lookup(MemoTable::After, &key(7, 1, 3), 0, &ns);
        let touched_survived = got.is_some();
        // More pressure: the next eviction must spare the just-touched
        // entry (if it survived the first round).
        memo.insert(MemoTable::After, &key(7, 2, 101), 0, 0, &Ok(()));
        if touched_survived {
            let (got, _) = memo.lookup(MemoTable::After, &key(7, 1, 3), 0, &ns);
            assert!(got.is_some(), "a referenced entry must get its second chance");
        }
        assert!(memo.stats().evictions >= 2);
    }

    #[test]
    fn readers_fall_back_to_miss_when_a_slot_stays_torn() {
        // Simulate a writer that died mid-update (odd seq, write mutex
        // free): the reader exhausts its spin budget, takes the lock
        // fallback, finds the slot still torn, and reports a sound miss
        // instead of spinning forever or returning torn data.
        let memo = SharedMemo::with_settings(1, PROBE_WINDOW, false);
        let ns = memo.namespace_state(7);
        let k = key(7, 1, 11);
        memo.insert(MemoTable::After, &k, 0, 0, &Ok(()));
        for slot in memo.shards[0].slots.iter() {
            let s = slot.seq.load(Ordering::Relaxed);
            slot.seq.store(s + 1, Ordering::Relaxed);
        }
        let (got, evicted) = memo.lookup(MemoTable::After, &k, 0, &ns);
        assert_eq!((got, evicted), (None, false), "torn slots must read as a sound miss");
        // The "writer" finishes; the entry is visible again.
        for slot in memo.shards[0].slots.iter() {
            let s = slot.seq.load(Ordering::Relaxed);
            slot.seq.store(s + 1, Ordering::Relaxed);
        }
        assert_eq!(memo.lookup(MemoTable::After, &k, 0, &ns), (Some(Ok(())), false));
    }

    #[test]
    fn registered_namespaces_report_labeled_stats() {
        let memo = SharedMemo::new();
        let a = memo.register_namespace("app-a");
        let b = memo.register_namespace("app-b");
        assert_eq!(a, memo_namespace("app-a"));
        let ns_a = memo.namespace_state(a);
        memo.insert(MemoTable::After, &key(a, 1, 1), 0, 0, &Ok(()));
        let _ = memo.lookup(MemoTable::After, &key(a, 1, 1), 0, &ns_a);
        memo.bump_namespace_epoch(b);
        let rows = memo.namespace_stats();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].label, "app-a");
        assert_eq!((rows[0].stats.hits, rows[0].epoch), (1, 0));
        assert_eq!(rows[1].label, "app-b");
        assert_eq!((rows[1].stats.hits, rows[1].epoch), (0, 1));
    }

    #[test]
    fn locked_reads_baseline_behaves_identically() {
        let memo = SharedMemo::with_settings(4, 64, true);
        assert!(memo.locked_reads());
        let ns = memo.namespace_state(7);
        let k = key(7, 1, 11);
        memo.insert(MemoTable::After, &k, 0, 0, &Err(blame("b")));
        let (got, _) = memo.lookup(MemoTable::After, &k, 0, &ns);
        assert_eq!(got, Some(Err(blame("b"))));
        ns.bump_epoch();
        assert_eq!(memo.lookup(MemoTable::After, &k, 0, &ns), (None, true));
    }
}
