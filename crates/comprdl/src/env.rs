//! The CompRDL environment: class table, annotation table, helper registry.
//!
//! This mirrors RDL's global state populated by `type`, `var_type` and
//! `global_type` calls.  Library annotation sets (the Ruby core library in
//! [`crate::stdlib`], the database DSLs in the `db-types` crate) register
//! themselves into a [`CompRdl`] value, and applications add their own
//! annotations for the methods they want checked.

use crate::tlc::{HelperRegistry, TlcCtx, TlcResult, TlcValue};
use rdl_types::{
    parse_method_sig, parse_type_expr, AnnotationTable, ClassTable, MethodSig, PurityEffect,
    TermEffect,
};

/// The assembled CompRDL environment.
#[derive(Debug, Clone, Default)]
pub struct CompRdl {
    /// The class hierarchy.
    pub classes: ClassTable,
    /// Registered method / variable type annotations.
    pub annotations: AnnotationTable,
    /// Helper methods callable from type-level code.
    pub helpers: HelperRegistry,
    /// Lines of type-level code registered per library (class name →
    /// annotation LoC), used to regenerate Table 1.
    loc_per_library: std::collections::BTreeMap<String, usize>,
}

impl CompRdl {
    /// A fresh environment with the builtin class hierarchy and no
    /// annotations.
    pub fn new() -> Self {
        CompRdl {
            classes: ClassTable::with_builtins(),
            annotations: AnnotationTable::new(),
            helpers: HelperRegistry::new(),
            loc_per_library: Default::default(),
        }
    }

    // ---- classes --------------------------------------------------------

    /// Declares a class.
    pub fn add_class(&mut self, name: &str, superclass: &str) {
        self.classes.add_class(name, Some(superclass));
    }

    /// Declares a DB-backed model class (ActiveRecord / Sequel model).
    pub fn add_model_class(&mut self, name: &str, superclass: &str) {
        self.classes.add_model_class(name, superclass);
    }

    // ---- method annotations ---------------------------------------------

    fn record_loc(&mut self, class: &str, sig_src: &str) {
        *self.loc_per_library.entry(class.to_string()).or_default() +=
            sig_src.lines().filter(|l| !l.trim().is_empty()).count().max(1);
    }

    /// Registers an instance method annotation, e.g.
    /// `type_sig("Hash", "[]", "(t<:Object) -> «...»", None)`.
    ///
    /// # Panics
    ///
    /// Panics if the annotation string does not parse; annotations are
    /// library-author input, so a parse failure is a programming error.
    pub fn type_sig(&mut self, class: &str, method: &str, sig: &str, label: Option<&str>) {
        let parsed = self.parse_sig(class, method, sig, label);
        self.annotations.add_instance(class, method, parsed);
    }

    /// Registers a class (singleton) method annotation.
    ///
    /// # Panics
    ///
    /// Panics if the annotation string does not parse.
    pub fn type_sig_singleton(
        &mut self,
        class: &str,
        method: &str,
        sig: &str,
        label: Option<&str>,
    ) {
        let parsed = self.parse_sig(class, method, sig, label);
        self.annotations.add_singleton(class, method, parsed);
    }

    /// Registers an instance method annotation with explicit termination and
    /// purity effects (`terminates:` / `pure:` in the paper).
    ///
    /// # Panics
    ///
    /// Panics if the annotation string does not parse.
    pub fn type_sig_with_effects(
        &mut self,
        class: &str,
        method: &str,
        sig: &str,
        term: TermEffect,
        purity: PurityEffect,
    ) {
        let parsed = self.parse_sig(class, method, sig, None).with_term(term).with_purity(purity);
        self.annotations.add_instance(class, method, parsed);
    }

    fn parse_sig(
        &mut self,
        class: &str,
        method: &str,
        sig: &str,
        label: Option<&str>,
    ) -> MethodSig {
        self.record_loc(class, sig);
        let mut parsed = parse_method_sig(sig).unwrap_or_else(|e| {
            panic!("invalid type annotation for {class}#{method}: {e}\n  {sig}")
        });
        if let Some(label) = label {
            parsed = parsed.with_label(label);
        }
        parsed
    }

    /// Registers an instance variable type (`var_type :@x, "T"`).
    ///
    /// # Panics
    ///
    /// Panics if the annotation string does not parse.
    pub fn var_type(&mut self, class: &str, ivar: &str, ty: &str) {
        let te = parse_type_expr(ty)
            .unwrap_or_else(|e| panic!("invalid var_type for {class}@{ivar}: {e}"));
        self.annotations.add_ivar(class, ivar, te);
    }

    /// Registers a global variable type.
    ///
    /// # Panics
    ///
    /// Panics if the annotation string does not parse.
    pub fn global_type(&mut self, name: &str, ty: &str) {
        let te =
            parse_type_expr(ty).unwrap_or_else(|e| panic!("invalid global_type for ${name}: {e}"));
        self.annotations.add_gvar(name, te);
    }

    // ---- helpers ----------------------------------------------------------

    /// Registers a native (Rust) helper callable from type-level code.
    /// Helpers must be `Send + Sync` so the assembled environment can be
    /// shared across the threads of a parallel checking run.
    pub fn register_helper_native(
        &mut self,
        name: &str,
        f: impl Fn(&mut TlcCtx<'_>, &[TlcValue]) -> TlcResult + Send + Sync + 'static,
    ) {
        self.helpers.register_native(name, f);
    }

    /// Registers helper methods written in the Ruby subset.
    ///
    /// # Panics
    ///
    /// Panics if the helper source does not parse.
    pub fn register_helpers_ruby(&mut self, src: &str) {
        self.helpers.register_ruby(src).unwrap_or_else(|e| panic!("invalid helper methods: {e}"));
    }

    // ---- statistics (Table 1) ---------------------------------------------

    /// Number of comp-type annotations registered for `class`.
    pub fn comp_type_count(&self, class: &str) -> usize {
        self.annotations.comp_count_for(class)
    }

    /// Number of annotations (comp or not) registered for `class`.
    pub fn annotation_count(&self, class: &str) -> usize {
        self.annotations.method_count_for(class)
    }

    /// Lines of type-level code registered for `class` (annotation strings).
    pub fn annotation_loc(&self, class: &str) -> usize {
        self.loc_per_library.get(class).copied().unwrap_or(0)
    }

    /// Number of registered helper methods (shared across libraries).
    pub fn helper_count(&self) -> usize {
        self.helpers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdl_types::MethodKind;

    #[test]
    fn registration_and_lookup() {
        let mut env = CompRdl::new();
        env.add_model_class("User", "ActiveRecord::Base");
        env.type_sig("Hash", "[]", "(k) -> v", None);
        env.type_sig_singleton("User", "find", "(Integer) -> User", None);
        env.var_type("User", "name", "String");
        env.global_type("$schema", "Hash<Symbol, Object>");

        assert!(env.annotations.lookup(&env.classes, "Hash", MethodKind::Instance, "[]").is_some());
        assert!(env
            .annotations
            .lookup(&env.classes, "User", MethodKind::Singleton, "find")
            .is_some());
        assert!(env.annotations.ivar("User", "name").is_some());
        assert!(env.annotations.gvar("$schema").is_some());
        assert!(env.classes.is_model("User"));
        assert_eq!(env.annotation_count("Hash"), 1);
        assert!(env.annotation_loc("Hash") >= 1);
    }

    #[test]
    fn comp_counting() {
        let mut env = CompRdl::new();
        env.type_sig("Hash", "keys", "() -> Array<k>", None);
        env.type_sig(
            "Hash",
            "[]",
            "(t<:Object) -> «if tself.is_a?(FiniteHash) then tself.value_type else tself.value_type end»",
            None,
        );
        assert_eq!(env.annotation_count("Hash"), 2);
        assert_eq!(env.comp_type_count("Hash"), 1);
    }

    #[test]
    fn effects_are_recorded() {
        let mut env = CompRdl::new();
        env.type_sig_with_effects(
            "Array",
            "map",
            "() { (a) -> b } -> Array<b>",
            TermEffect::BlockDep,
            PurityEffect::Pure,
        );
        let (_, sig) =
            env.annotations.lookup(&env.classes, "Array", MethodKind::Instance, "map").unwrap();
        assert_eq!(sig.term, TermEffect::BlockDep);
        assert_eq!(sig.purity, PurityEffect::Pure);
    }

    #[test]
    #[should_panic(expected = "invalid type annotation")]
    fn bad_annotations_panic() {
        let mut env = CompRdl::new();
        env.type_sig("Hash", "broken", "not a signature", None);
    }
}
