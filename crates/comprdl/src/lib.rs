//! # comprdl
//!
//! A Rust implementation of **CompRDL** — *"Type-Level Computations for Ruby
//! Libraries"* (PLDI 2019).  CompRDL extends the RDL type system with *comp
//! types*: library method signatures containing Ruby expressions that are
//! evaluated during type checking to produce precise types.  Because the
//! annotated library methods are not themselves type checked, CompRDL
//! inserts run-time checks at their call sites to preserve soundness.
//!
//! The crate provides:
//!
//! * [`CompRdl`] — the environment of classes, annotations and type-level
//!   helper methods (the analogue of RDL's global tables),
//! * [`tlc`] — the type-level computation evaluator,
//! * [`checker`] — the static type checker, which evaluates comp types at
//!   call sites, performs weak updates, counts casts and records the dynamic
//!   checks to insert,
//! * [`termination`] — the termination / purity analysis for type-level code
//!   (paper §4),
//! * [`runtime`] — value/type membership tests and the
//!   [`runtime::CompRdlHook`] that enforces inserted checks when a program
//!   runs under [`ruby_interp`],
//! * [`stdlib`] — comp-type annotation sets for the Ruby core library
//!   (Array, Hash, String, Integer, Float; paper Table 1).
//!
//! ## Quick start
//!
//! ```
//! use comprdl::{CheckOptions, CompRdl, TypeChecker};
//!
//! let mut env = CompRdl::new();
//! comprdl::stdlib::register_all(&mut env);
//! env.type_sig("Object", "page", "() -> { info: Array<String>, title: String }", None);
//! env.type_sig("Object", "image_url", "() -> String", Some("app"));
//!
//! let program = ruby_syntax::parse_program_strict(
//!     "def image_url()\n  page()[:info].first\nend\n",
//! ).unwrap();
//! let result = TypeChecker::new(&env, &program, CheckOptions::default()).check_all_annotated();
//! assert!(result.errors().is_empty());
//! assert_eq!(result.total_casts(), 0);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod checker;
pub mod env;
pub mod memo;
pub mod persist;
pub mod runtime;
pub mod semdep;
pub mod stdlib;
pub mod termination;
pub mod tlc;

pub use cache::{CacheKey, CacheStats, CompPosition, CompTypeCache};
pub use checker::{
    CheckOptions, ErrorCategory, MethodCheckResult, ProgramCheckResult, TypeChecker, TypeErrorInfo,
};
pub use env::CompRdl;
pub use memo::{memo_namespace, MemoKey, MemoStats, MemoTable, NamespaceStats, SharedMemo};
pub use persist::{corrupt, CheckCache, EffectRecord, LintRecord};
pub use runtime::{
    make_hook, make_hook_shared, type_of_value, value_fingerprint, value_matches, BlameDiagnostic,
    CheckConfig, CompRdlHook, ConsistencyCheck, InsertedCheck,
};
pub use semdep::{comp_semantic_hash, env_hash, DepGraph};
pub use termination::{
    annotation_conflicts, EffectEnv, EffectSource, EffectViolation, InferredEffect,
    TerminationChecker, ViolationKind,
};
pub use tlc::{eval_comp_type, HelperRegistry, MetaKind, TlcCtx, TlcError, TlcValue};
