//! Run-time side of CompRDL: mapping interpreter values to RDL types,
//! checking values against types, and the [`CompRdlHook`] that enforces the
//! dynamic checks inserted by the static checker (paper §2.4, §3, §4).

use crate::tlc::{eval_comp_type, HelperRegistry, TlcValue};
use rdl_types::{ClassTable, HashKey, SingVal, Subtyper, Type, TypeStore};
use ruby_interp::{DynamicCheckHook, Value};
use ruby_syntax::Span;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Computes the (precise) RDL type of a runtime value.  Containers produce
/// store-backed tuple / finite hash types; strings produce const strings.
pub fn type_of_value(value: &Value, store: &mut TypeStore) -> Type {
    match value {
        Value::Nil => Type::nil(),
        Value::Bool(true) => Type::Singleton(SingVal::True),
        Value::Bool(false) => Type::Singleton(SingVal::False),
        Value::Int(i) => Type::int(*i),
        Value::Float(f) => Type::Singleton(SingVal::float(*f)),
        Value::Sym(s) => Type::sym(s.clone()),
        Value::Str(s) => store.new_const_string(s.borrow().clone()),
        Value::Array(items) => {
            let elems = items.borrow().iter().map(|v| type_of_value(v, store)).collect();
            store.new_tuple(elems)
        }
        Value::Hash(pairs) => {
            let mut entries = Vec::new();
            let mut irregular = false;
            for (k, v) in pairs.borrow().iter() {
                let key = match k {
                    Value::Sym(s) => HashKey::Sym(s.clone()),
                    Value::Str(s) => HashKey::Str(s.borrow().clone()),
                    Value::Int(i) => HashKey::Int(*i),
                    _ => {
                        irregular = true;
                        break;
                    }
                };
                entries.push((key, type_of_value(v, store)));
            }
            if irregular {
                Type::hash(Type::object(), Type::object())
            } else {
                store.new_finite_hash(entries)
            }
        }
        Value::Object(o) => Type::nominal(o.borrow().class.clone()),
        Value::Class(c) => Type::class_of(c.clone()),
        Value::Lambda(_) => Type::nominal("Proc"),
    }
}

/// Checks whether a runtime value inhabits a type.  This is the membership
/// test used by the inserted dynamic checks (`⌈A⌉e.m(e)` in λC).
pub fn value_matches(value: &Value, ty: &Type, store: &TypeStore, classes: &ClassTable) -> bool {
    let ty = store.resolve(ty);
    match &ty {
        Type::Top | Type::Dynamic | Type::Var(_) => true,
        Type::Bot => false,
        Type::Bool => matches!(value, Value::Bool(_)),
        Type::Optional(inner) | Type::Vararg(inner) => {
            matches!(value, Value::Nil) || value_matches(value, inner, store, classes)
        }
        Type::Union(members) => members.iter().any(|m| value_matches(value, m, store, classes)),
        Type::Singleton(sv) => match (sv, value) {
            (SingVal::Nil, Value::Nil) => true,
            (SingVal::True, Value::Bool(true)) => true,
            (SingVal::False, Value::Bool(false)) => true,
            (SingVal::Int(i), Value::Int(j)) => i == j,
            (SingVal::FloatBits(b), Value::Float(f)) => f64::from_bits(*b) == *f,
            (SingVal::Sym(s), Value::Sym(t)) => s == t,
            (SingVal::Class(c), Value::Class(d)) => c == d,
            _ => false,
        },
        Type::ConstString(id) => match (store.const_string_value(*id), value) {
            (Some(expected), Value::Str(actual)) => *actual.borrow() == expected,
            (None, Value::Str(_)) => true,
            _ => false,
        },
        Type::Nominal(class) => {
            // `nil` is allowed wherever an object is expected (λC); blame for
            // nil flows from actual method invocation instead.
            if matches!(value, Value::Nil) {
                return true;
            }
            classes.is_subclass(&value.class_name(), class)
                || (class == "Boolean" && matches!(value, Value::Bool(_)))
        }
        Type::Generic { base, args } => match (base.as_str(), value) {
            ("Array", Value::Array(items)) => {
                let elem = args.first().cloned().unwrap_or(Type::Top);
                items.borrow().iter().all(|v| value_matches(v, &elem, store, classes))
            }
            ("Hash", Value::Hash(pairs)) => {
                let kt = args.first().cloned().unwrap_or(Type::Top);
                let vt = args.get(1).cloned().unwrap_or(Type::Top);
                pairs.borrow().iter().all(|(k, v)| {
                    value_matches(k, &kt, store, classes) && value_matches(v, &vt, store, classes)
                })
            }
            // A `Table<T>` value is modelled by whatever object the ORM
            // returns (a relation object or an array of rows).
            ("Table", _) => true,
            ("Enumerator", Value::Array(_)) => true,
            (other, v) => matches!(v, Value::Nil) || classes.is_subclass(&v.class_name(), other),
        },
        Type::Tuple(id) => match value {
            Value::Array(items) => {
                let data = store.tuple(*id);
                let items = items.borrow();
                items.len() == data.elems.len()
                    && items
                        .iter()
                        .zip(data.elems.iter())
                        .all(|(v, t)| value_matches(v, t, store, classes))
            }
            Value::Nil => true,
            _ => false,
        },
        Type::FiniteHash(id) => match value {
            Value::Hash(_) => {
                let data = store.finite_hash(*id);
                data.entries.iter().all(|(k, t)| {
                    let key = match k {
                        HashKey::Sym(s) => Value::Sym(s.clone()),
                        HashKey::Str(s) => Value::str(s.clone()),
                        HashKey::Int(i) => Value::Int(*i),
                    };
                    match value.hash_get(&key) {
                        Some(v) => value_matches(&v, t, store, classes),
                        None => {
                            matches!(t, Type::Optional(_))
                                || matches!(t, Type::Singleton(SingVal::Nil))
                        }
                    }
                })
            }
            Value::Nil => true,
            _ => false,
        },
    }
}

/// A dynamic check attached to one rewritten call site.
#[derive(Debug, Clone)]
pub struct InsertedCheck {
    /// The call site's span (used as its identity).
    pub site: Span,
    /// Human readable description of the call (`Hash#[]`, `Table#joins`...).
    pub description: String,
    /// The return type computed at type-check time; the returned value must
    /// inhabit it.
    pub expected_return: Type,
    /// If the signature used a comp type, the information needed to
    /// re-evaluate it at run time for the consistency check (§4).
    pub consistency: Option<ConsistencyCheck>,
}

/// Re-evaluation data for the comp-type consistency check.
#[derive(Debug, Clone)]
pub struct ConsistencyCheck {
    /// The comp-type expression for the return position.
    pub ret_expr: ruby_syntax::Expr,
    /// Binder names of the parameters, in positional order (bound to the
    /// run-time types of the arguments when re-evaluating).
    pub binders: Vec<Option<String>>,
    /// The type the comp type evaluated to at type-check time.
    pub expected: Type,
}

/// Configuration for which categories of checks the hook enforces; used by
/// the ablation benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckConfig {
    /// Check returned values against the computed return type.
    pub return_checks: bool,
    /// Re-evaluate comp types at run time and compare (heap-mutation guard).
    pub consistency_checks: bool,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig { return_checks: true, consistency_checks: true }
    }
}

/// The [`DynamicCheckHook`] implementation installed into the interpreter
/// for programs rewritten by CompRDL.
pub struct CompRdlHook {
    checks: HashMap<(usize, usize, u32), InsertedCheck>,
    store: RefCell<TypeStore>,
    classes: ClassTable,
    helpers: HelperRegistry,
    config: CheckConfig,
    blames: RefCell<Vec<String>>,
}

impl CompRdlHook {
    /// Builds a hook from the checks produced by the static checker.
    pub fn new(
        checks: Vec<InsertedCheck>,
        store: TypeStore,
        classes: ClassTable,
        helpers: HelperRegistry,
        config: CheckConfig,
    ) -> Self {
        let map =
            checks.into_iter().map(|c| ((c.site.start, c.site.end, c.site.line), c)).collect();
        CompRdlHook {
            checks: map,
            store: RefCell::new(store),
            classes,
            helpers,
            config,
            blames: RefCell::new(Vec::new()),
        }
    }

    /// Number of checked call sites.
    pub fn check_count(&self) -> usize {
        self.checks.len()
    }

    /// Blame messages produced so far (also raised as errors at the call
    /// sites).
    pub fn blames(&self) -> Vec<String> {
        self.blames.borrow().clone()
    }

    fn key(site: Span) -> (usize, usize, u32) {
        (site.start, site.end, site.line)
    }

    fn blame(&self, message: String) -> Result<(), String> {
        self.blames.borrow_mut().push(message.clone());
        Err(message)
    }
}

impl std::fmt::Debug for CompRdlHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompRdlHook").field("checks", &self.checks.len()).finish()
    }
}

impl DynamicCheckHook for CompRdlHook {
    fn has_check(&self, site: Span) -> bool {
        self.checks.contains_key(&Self::key(site))
    }

    fn before_call(&self, site: Span, recv: &Value, args: &[Value]) -> Result<(), String> {
        if !self.config.consistency_checks {
            return Ok(());
        }
        let Some(check) = self.checks.get(&Self::key(site)) else { return Ok(()) };
        let Some(consistency) = &check.consistency else { return Ok(()) };
        let mut store = self.store.borrow_mut();
        let recv_ty = type_of_value(recv, &mut store);
        let mut bindings: HashMap<String, TlcValue> = HashMap::new();
        bindings.insert("tself".to_string(), TlcValue::Type(recv_ty));
        for (i, binder) in consistency.binders.iter().enumerate() {
            if let Some(name) = binder {
                let arg_ty =
                    args.get(i).map(|v| type_of_value(v, &mut store)).unwrap_or_else(Type::nil);
                bindings.insert(name.clone(), TlcValue::Type(arg_ty));
            }
        }
        let recomputed = eval_comp_type(
            &mut store,
            &self.classes,
            &self.helpers,
            bindings,
            &consistency.ret_expr,
        );
        match recomputed {
            Ok(t) => {
                // The comp type may legitimately compute a *more precise*
                // type at run time than it did statically (singleton
                // receivers); it must never compute an incompatible one.
                let sub = Subtyper::new(&self.classes);
                if sub.is_subtype(&store, &t, &consistency.expected)
                    || sub.is_subtype(&store, &consistency.expected, &t)
                {
                    Ok(())
                } else {
                    drop(store);
                    self.blame(format!(
                        "{}: comp type evaluated to `{}` at run time but `{}` at type-check time",
                        check.description, t, consistency.expected
                    ))
                }
            }
            Err(e) => {
                drop(store);
                self.blame(format!("{}: comp type failed at run time: {}", check.description, e))
            }
        }
    }

    fn after_call(&self, site: Span, ret: &Value) -> Result<(), String> {
        if !self.config.return_checks {
            return Ok(());
        }
        let Some(check) = self.checks.get(&Self::key(site)) else { return Ok(()) };
        let store = self.store.borrow();
        if value_matches(ret, &check.expected_return, &store, &self.classes) {
            Ok(())
        } else {
            let msg = format!(
                "{}: returned {} which is not a {}",
                check.description,
                ret.inspect(),
                check.expected_return
            );
            drop(store);
            self.blame(msg)
        }
    }
}

/// Convenience constructor: wraps checks in an [`Rc`] ready to hand to
/// [`ruby_interp::Interpreter::set_hook`].
pub fn make_hook(
    checks: Vec<InsertedCheck>,
    store: TypeStore,
    classes: ClassTable,
    helpers: HelperRegistry,
    config: CheckConfig,
) -> Rc<CompRdlHook> {
    Rc::new(CompRdlHook::new(checks, store, classes, helpers, config))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classes() -> ClassTable {
        let mut ct = ClassTable::with_builtins();
        ct.add_model_class("User", "ActiveRecord::Base");
        ct
    }

    #[test]
    fn type_of_value_forms() {
        let mut store = TypeStore::new();
        assert_eq!(type_of_value(&Value::Int(3), &mut store), Type::int(3));
        assert_eq!(type_of_value(&Value::Sym("a".into()), &mut store), Type::sym("a"));
        assert!(matches!(type_of_value(&Value::str("x"), &mut store), Type::ConstString(_)));
        assert!(matches!(
            type_of_value(&Value::array(vec![Value::Int(1)]), &mut store),
            Type::Tuple(_)
        ));
        assert!(matches!(
            type_of_value(&Value::hash(vec![(Value::Sym("a".into()), Value::Int(1))]), &mut store),
            Type::FiniteHash(_)
        ));
        assert_eq!(type_of_value(&Value::new_object("User"), &mut store), Type::nominal("User"));
        assert_eq!(type_of_value(&Value::Class("User".into()), &mut store), Type::class_of("User"));
    }

    #[test]
    fn value_matching_basics() {
        let store = TypeStore::new();
        let classes = classes();
        assert!(value_matches(&Value::Int(5), &Type::nominal("Integer"), &store, &classes));
        assert!(value_matches(&Value::Int(5), &Type::nominal("Numeric"), &store, &classes));
        assert!(!value_matches(&Value::Int(5), &Type::nominal("String"), &store, &classes));
        assert!(value_matches(&Value::Bool(true), &Type::Bool, &store, &classes));
        assert!(value_matches(&Value::Nil, &Type::nominal("String"), &store, &classes));
        assert!(value_matches(
            &Value::str("x"),
            &Type::union([Type::nominal("String"), Type::nominal("Integer")]),
            &store,
            &classes
        ));
        assert!(!value_matches(
            &Value::Sym("x".into()),
            &Type::union([Type::nominal("String"), Type::nominal("Integer")]),
            &store,
            &classes
        ));
    }

    #[test]
    fn value_matching_containers() {
        let mut store = TypeStore::new();
        let classes = classes();
        let arr = Value::array(vec![Value::str("a"), Value::str("b")]);
        assert!(value_matches(&arr, &Type::array(Type::nominal("String")), &store, &classes));
        assert!(!value_matches(&arr, &Type::array(Type::nominal("Integer")), &store, &classes));

        let tuple_ty = store.new_tuple(vec![Type::nominal("Integer"), Type::nominal("String")]);
        let tup = Value::array(vec![Value::Int(1), Value::str("x")]);
        assert!(value_matches(&tup, &tuple_ty, &store, &classes));
        let wrong = Value::array(vec![Value::str("x"), Value::Int(1)]);
        assert!(!value_matches(&wrong, &tuple_ty, &store, &classes));

        let fh = store.new_finite_hash(vec![
            (HashKey::Sym("info".into()), Type::array(Type::nominal("String"))),
            (HashKey::Sym("title".into()), Type::nominal("String")),
        ]);
        let page = Value::hash(vec![
            (Value::Sym("info".into()), Value::array(vec![Value::str("u")])),
            (Value::Sym("title".into()), Value::str("t")),
        ]);
        assert!(value_matches(&page, &fh, &store, &classes));
        let bad_page = Value::hash(vec![(Value::Sym("title".into()), Value::str("t"))]);
        assert!(!value_matches(&bad_page, &fh, &store, &classes));
    }

    #[test]
    fn hook_checks_return_types() {
        let mut store = TypeStore::new();
        let site = Span::new(10, 20, 3);
        let check = InsertedCheck {
            site,
            description: "Hash#[]".to_string(),
            expected_return: Type::array(Type::nominal("String")),
            consistency: None,
        };
        let _ = &mut store;
        let hook = CompRdlHook::new(
            vec![check],
            store,
            classes(),
            HelperRegistry::new(),
            CheckConfig::default(),
        );
        assert!(hook.has_check(site));
        assert!(!hook.has_check(Span::new(0, 1, 1)));
        let good = Value::array(vec![Value::str("a")]);
        assert!(hook.after_call(site, &good).is_ok());
        let bad = Value::str("not an array");
        let err = hook.after_call(site, &bad).unwrap_err();
        assert!(err.contains("Hash#[]"));
        assert_eq!(hook.blames().len(), 1);
    }

    #[test]
    fn hook_consistency_check_detects_schema_change() {
        // Simulates §4: the comp type consults mutable state (bound helper)
        // whose answer changes between type checking and the call.
        let mut helpers = HelperRegistry::new();
        helpers.register_native("current_schema", |ctx, _args| {
            // Reads the binding `$schema_columns` (set from the "DB").
            Ok(ctx
                .bindings
                .get("$schema_columns")
                .cloned()
                .unwrap_or(crate::tlc::TlcValue::Type(Type::nominal("String"))))
        });
        let site = Span::new(1, 2, 1);
        let expr = ruby_syntax::parse_expr("current_schema()").unwrap();
        let check = InsertedCheck {
            site,
            description: "Table#where".to_string(),
            expected_return: Type::object(),
            consistency: Some(ConsistencyCheck {
                ret_expr: expr,
                binders: vec![],
                expected: Type::nominal("Integer"),
            }),
        };
        let hook = CompRdlHook::new(
            vec![check],
            TypeStore::new(),
            classes(),
            helpers,
            CheckConfig::default(),
        );
        // The helper returns String (default binding) but type checking saw
        // Integer — the consistency check must blame.
        let err = hook.before_call(site, &Value::Class("User".into()), &[]).unwrap_err();
        assert!(err.contains("type-check time"));
    }

    #[test]
    fn check_config_disables_categories() {
        let site = Span::new(5, 6, 1);
        let check = InsertedCheck {
            site,
            description: "Array#first".to_string(),
            expected_return: Type::nominal("Integer"),
            consistency: None,
        };
        let hook = CompRdlHook::new(
            vec![check],
            TypeStore::new(),
            classes(),
            HelperRegistry::new(),
            CheckConfig { return_checks: false, consistency_checks: false },
        );
        assert!(hook.after_call(site, &Value::str("wrong type")).is_ok());
    }
}
