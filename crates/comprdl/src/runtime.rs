//! Run-time side of CompRDL: mapping interpreter values to RDL types,
//! checking values against types, and the [`CompRdlHook`] that enforces the
//! dynamic checks inserted by the static checker (paper §2.4, §3, §4).
//!
//! ## The run-time check memo
//!
//! The paper's Table 2 measures the overhead of these dynamic checks on real
//! test suites, and the naive implementation pays O(structure of the value)
//! at **every** hit: `before_call` re-interns the receiver/argument types
//! into the shared [`TypeStore`] and re-evaluates the comp type, and
//! `after_call` re-walks the returned value against the expected type.  The
//! hook therefore memoizes both callbacks per call site, keyed on a stable
//! structural fingerprint of the values that flowed through the site
//! ([`value_fingerprint`]): a test suite that calls `User.exists?` a
//! thousand times with the same-shaped rows pays for one evaluation and 999
//! table hits.
//!
//! Invalidation mirrors [`crate::cache`]: every memo entry records the
//! [`TypeStore::generation`] it was computed at, and a lookup that finds an
//! entry from an older generation evicts it and re-evaluates — a schema
//! change between calls (§4 "Heap Mutation") can never replay a stale
//! verdict.  The same generation guard makes [`type_of_value`] interning
//! non-amplifying: repeated hits with structurally identical values reuse
//! the store ids minted the first time instead of growing the store
//! unboundedly across a run.
//!
//! ## Sharing the memo across hooks
//!
//! The memo itself lives in a [`SharedMemo`]: a sharded, bounded,
//! `Send + Sync` table — lock-free on the warm read path, see the
//! [`crate::memo`] module docs — that any number of hooks (e.g. the
//! per-app hooks of the parallel corpus harness, or the warm re-runs of
//! the overhead harness) can share through an [`Arc`].  Entries are keyed
//! on `(namespace, site, value fingerprint)`; hooks that must never
//! exchange verdicts (different programs whose spans collide) use
//! different namespaces, while replays of the *same* program reuse one
//! namespace so a warm memo serves every run.
//!
//! Two stamps guard every shared entry:
//!
//! * the owning hook's [`TypeStore::generation`], exactly as before, and
//! * the **namespace's epoch**, bumped whenever any hook *of that
//!   namespace* observes a store mutation ([`CompRdlHook::mutate_store`]
//!   and comp-type evaluations that mutate type-level state both bump it).
//!
//! A lookup that finds either stamp stale evicts the entry and
//! re-evaluates, so a mid-suite migration can never replay a stale
//! verdict — and, because the epoch is per namespace, one app's migration
//! no longer flushes any *other* app's warm entries.  That isolation is
//! sound because namespaces never share keys: an entry is only ever
//! replayed by hooks of the namespace that recorded it, and within one
//! namespace every hook is a deterministic replay of the same program
//! against the same starting store, whose mutations all bump the same
//! counter (equal generations then imply equal store states).
//!
//! ## Blame as diagnostics
//!
//! Check failures are recorded as [`BlameDiagnostic`]s — carrying the
//! interpreter's call-site [`Span`] and a stable code — and convert via
//! `From` into [`diagnostics::Diagnostic`], so runtime blame renders as
//! annotated snippets through `diagnostics::render_in` exactly like every
//! static error.  Memoized replays return the recorded diagnostic verbatim:
//! replayed blame is byte-identical to freshly evaluated blame, including
//! its span, and is delivered in execution order.

use crate::cache::CacheStats;
use crate::memo::{MemoTable, NamespaceState, SharedMemo};
use crate::tlc::{eval_comp_type, HelperRegistry, TlcValue};
use diagnostics::Diagnostic;
use rdl_types::{ClassTable, Fingerprint, HashKey, SingVal, Subtyper, Type, TypeStore};
use ruby_interp::{DynamicCheckHook, Value};
use ruby_syntax::Span;
use std::cell::{Cell, Ref, RefCell};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

/// Computes the (precise) RDL type of a runtime value.  Containers produce
/// store-backed tuple / finite hash types; strings produce const strings.
pub fn type_of_value(value: &Value, store: &mut TypeStore) -> Type {
    match value {
        Value::Nil => Type::nil(),
        Value::Bool(true) => Type::Singleton(SingVal::True),
        Value::Bool(false) => Type::Singleton(SingVal::False),
        Value::Int(i) => Type::int(*i),
        Value::Float(f) => Type::Singleton(SingVal::float(*f)),
        Value::Sym(s) => Type::sym(s.clone()),
        Value::Str(s) => store.new_const_string(s.borrow().clone()),
        Value::Array(items) => {
            let elems = items.borrow().iter().map(|v| type_of_value(v, store)).collect();
            store.new_tuple(elems)
        }
        Value::Hash(pairs) => {
            let mut entries = Vec::new();
            let mut irregular = false;
            for (k, v) in pairs.borrow().iter() {
                let key = match k {
                    Value::Sym(s) => HashKey::Sym(s.clone()),
                    Value::Str(s) => HashKey::Str(s.borrow().clone()),
                    Value::Int(i) => HashKey::Int(*i),
                    _ => {
                        irregular = true;
                        break;
                    }
                };
                entries.push((key, type_of_value(v, store)));
            }
            if irregular {
                Type::hash(Type::object(), Type::object())
            } else {
                store.new_finite_hash(entries)
            }
        }
        Value::Object(o) => Type::nominal(o.borrow().class.clone()),
        Value::Class(c) => Type::class_of(c.clone()),
        Value::Lambda(_) => Type::nominal("Proc"),
    }
}

/// A stable structural fingerprint of a runtime value, used to key the
/// per-call-site check memo: two values digest identically exactly when
/// [`type_of_value`] would map them to structurally identical types, their
/// [`Value::inspect`] renderings agree, and [`value_matches`] cannot tell
/// them apart against any type.  Mutable containers are digested by current
/// content, so an in-place mutation changes the fingerprint.
pub fn value_fingerprint(value: &Value) -> u64 {
    let mut fp = Fingerprint::new();
    hash_value_guarded(&mut fp, value, &mut Vec::new());
    fp.finish()
}

fn hash_value(fp: &mut Fingerprint, value: &Value) {
    hash_value_guarded(fp, value, &mut Vec::new());
}

/// `visiting` holds the container `Rc`s on the current recursion path:
/// runtime values can be self-referential (`a = []; a << a`), and the
/// digest must terminate on them (re-entry digests as a back-reference
/// marker, mirroring `TypeStore::fingerprint_into`).
fn hash_value_guarded(fp: &mut Fingerprint, value: &Value, visiting: &mut Vec<*const ()>) {
    match value {
        Value::Nil => fp.write_u8(0),
        Value::Bool(false) => fp.write_u8(1),
        Value::Bool(true) => fp.write_u8(2),
        Value::Int(i) => {
            fp.write_u8(3);
            fp.write_i64(*i);
        }
        Value::Float(f) => {
            fp.write_u8(4);
            fp.write_u64(f.to_bits());
        }
        Value::Sym(s) => {
            fp.write_u8(5);
            fp.write_str(s);
        }
        Value::Str(s) => {
            fp.write_u8(6);
            fp.write_str(&s.borrow());
        }
        Value::Array(items) => {
            let ptr = Rc::as_ptr(items) as *const ();
            if visiting.contains(&ptr) {
                fp.write_u8(0xFE);
                return;
            }
            visiting.push(ptr);
            fp.write_u8(7);
            let items = items.borrow();
            fp.write_usize(items.len());
            for v in items.iter() {
                hash_value_guarded(fp, v, visiting);
            }
            visiting.pop();
        }
        Value::Hash(pairs) => {
            let ptr = Rc::as_ptr(pairs) as *const ();
            if visiting.contains(&ptr) {
                fp.write_u8(0xFE);
                return;
            }
            visiting.push(ptr);
            fp.write_u8(8);
            let pairs = pairs.borrow();
            fp.write_usize(pairs.len());
            for (k, v) in pairs.iter() {
                hash_value_guarded(fp, k, visiting);
                hash_value_guarded(fp, v, visiting);
            }
            visiting.pop();
        }
        // Only the class name matters: `type_of_value` maps objects to their
        // nominal type, `value_matches` only consults the class, and
        // `inspect` prints `#<Class>`.
        Value::Object(o) => {
            fp.write_u8(9);
            fp.write_str(&o.borrow().class);
        }
        Value::Class(c) => {
            fp.write_u8(10);
            fp.write_str(c);
        }
        // All lambdas type as `Proc` and inspect as `#<Proc>`.
        Value::Lambda(_) => fp.write_u8(11),
    }
}

/// Checks whether a runtime value inhabits a type.  This is the membership
/// test used by the inserted dynamic checks (`⌈A⌉e.m(e)` in λC).
pub fn value_matches(value: &Value, ty: &Type, store: &TypeStore, classes: &ClassTable) -> bool {
    let ty = store.resolve(ty);
    match &ty {
        Type::Top | Type::Dynamic | Type::Var(_) => true,
        Type::Bot => false,
        Type::Bool => matches!(value, Value::Bool(_)),
        Type::Optional(inner) | Type::Vararg(inner) => {
            matches!(value, Value::Nil) || value_matches(value, inner, store, classes)
        }
        Type::Union(members) => members.iter().any(|m| value_matches(value, m, store, classes)),
        Type::Singleton(sv) => match (sv, value) {
            (SingVal::Nil, Value::Nil) => true,
            (SingVal::True, Value::Bool(true)) => true,
            (SingVal::False, Value::Bool(false)) => true,
            (SingVal::Int(i), Value::Int(j)) => i == j,
            (SingVal::FloatBits(b), Value::Float(f)) => f64::from_bits(*b) == *f,
            (SingVal::Sym(s), Value::Sym(t)) => s == t,
            (SingVal::Class(c), Value::Class(d)) => c == d,
            _ => false,
        },
        Type::ConstString(id) => match (store.const_string_value(*id), value) {
            (Some(expected), Value::Str(actual)) => *actual.borrow() == expected,
            (None, Value::Str(_)) => true,
            _ => false,
        },
        Type::Nominal(class) => {
            // `nil` is allowed wherever an object is expected (λC); blame for
            // nil flows from actual method invocation instead.
            if matches!(value, Value::Nil) {
                return true;
            }
            classes.is_subclass(&value.class_name(), class)
                || (class == "Boolean" && matches!(value, Value::Bool(_)))
        }
        Type::Generic { base, args } => match (base.as_str(), value) {
            ("Array", Value::Array(items)) => {
                let elem = args.first().cloned().unwrap_or(Type::Top);
                items.borrow().iter().all(|v| value_matches(v, &elem, store, classes))
            }
            ("Hash", Value::Hash(pairs)) => {
                let kt = args.first().cloned().unwrap_or(Type::Top);
                let vt = args.get(1).cloned().unwrap_or(Type::Top);
                pairs.borrow().iter().all(|(k, v)| {
                    value_matches(k, &kt, store, classes) && value_matches(v, &vt, store, classes)
                })
            }
            // A `Table<T>` value is modelled by whatever object the ORM
            // returns (a relation object or an array of rows).
            ("Table", _) => true,
            ("Enumerator", Value::Array(_)) => true,
            (other, v) => matches!(v, Value::Nil) || classes.is_subclass(&v.class_name(), other),
        },
        Type::Tuple(id) => match value {
            Value::Array(items) => {
                let data = store.tuple(*id);
                let items = items.borrow();
                items.len() == data.elems.len()
                    && items
                        .iter()
                        .zip(data.elems.iter())
                        .all(|(v, t)| value_matches(v, t, store, classes))
            }
            Value::Nil => true,
            _ => false,
        },
        Type::FiniteHash(id) => match value {
            Value::Hash(_) => {
                let data = store.finite_hash(*id);
                data.entries.iter().all(|(k, t)| {
                    let key = match k {
                        HashKey::Sym(s) => Value::Sym(s.clone()),
                        HashKey::Str(s) => Value::str(s.clone()),
                        HashKey::Int(i) => Value::Int(*i),
                    };
                    match value.hash_get(&key) {
                        Some(v) => value_matches(&v, t, store, classes),
                        None => {
                            matches!(t, Type::Optional(_))
                                || matches!(t, Type::Singleton(SingVal::Nil))
                        }
                    }
                })
            }
            Value::Nil => true,
            _ => false,
        },
    }
}

/// A dynamic check attached to one rewritten call site.
#[derive(Debug, Clone)]
pub struct InsertedCheck {
    /// The call site's span (used as its identity).
    pub site: Span,
    /// Human readable description of the call (`Hash#[]`, `Table#joins`...).
    pub description: String,
    /// The return type computed at type-check time; the returned value must
    /// inhabit it.
    pub expected_return: Type,
    /// If the signature used a comp type, the information needed to
    /// re-evaluate it at run time for the consistency check (§4).
    pub consistency: Option<ConsistencyCheck>,
}

/// Re-evaluation data for the comp-type consistency check.
#[derive(Debug, Clone)]
pub struct ConsistencyCheck {
    /// The comp-type expression for the return position.
    pub ret_expr: ruby_syntax::Expr,
    /// Binder names of the parameters, in positional order (bound to the
    /// run-time types of the arguments when re-evaluating).
    pub binders: Vec<Option<String>>,
    /// The type the comp type evaluated to at type-check time.
    pub expected: Type,
}

/// Configuration for which categories of checks the hook enforces and how
/// they execute; used by the ablation and overhead benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckConfig {
    /// Check returned values against the computed return type.
    pub return_checks: bool,
    /// Re-evaluate comp types at run time and compare (heap-mutation guard).
    pub consistency_checks: bool,
    /// Memoize per-site check outcomes keyed on value fingerprints (see the
    /// module docs).  Disable to get the paper's pay-at-every-hit baseline
    /// that the `checked_vs_unchecked` bench measures against.
    pub memoize: bool,
    /// Raise blame as an error at the call site (`true`, the λC semantics)
    /// or record it and let execution continue (`false`, used by the
    /// overhead harness to compare complete blame sets across runs).
    pub raise_blame: bool,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            return_checks: true,
            consistency_checks: true,
            memoize: true,
            raise_blame: true,
        }
    }
}

/// Diagnostic code of a failed return check (`RT0101`).
pub const BLAME_RETURN: &str = "RT0101";
/// Diagnostic code of a failed §4 consistency check (`RT0102`).
pub const BLAME_CONSISTENCY: &str = "RT0102";
/// Diagnostic code of a comp type that failed to evaluate at run time
/// (`RT0103`).
pub const BLAME_EVAL: &str = "RT0103";

/// One runtime blame: the failed check's message together with the
/// interpreter's call-site [`Span`] and a stable diagnostic code.
///
/// Blame flows through the same diagnostics spine as every static error:
/// `From<BlameDiagnostic> for Diagnostic` turns it into a span-carrying
/// [`Diagnostic`] that `diagnostics::render_in` renders as an annotated
/// snippet.  Memoized replays reproduce the recorded value verbatim, so two
/// runs that blame at the same sites produce byte-identical diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlameDiagnostic {
    /// The checked call site the blame was raised at.
    pub site: Span,
    /// Stable code: [`BLAME_RETURN`], [`BLAME_CONSISTENCY`] or
    /// [`BLAME_EVAL`].
    pub code: &'static str,
    /// The headline message (store-backed types rendered structurally).
    pub message: String,
}

impl BlameDiagnostic {
    fn new(code: &'static str, site: Span, message: String) -> Self {
        BlameDiagnostic { site, code, message }
    }
}

impl std::fmt::Display for BlameDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl From<BlameDiagnostic> for Diagnostic {
    fn from(blame: BlameDiagnostic) -> Diagnostic {
        Diagnostic::error(blame.code, blame.message)
            .with_label(blame.site, "blame raised at this checked call")
    }
}

/// A cached [`type_of_value`] result, reused while the store generation is
/// unchanged so repeated hits stop allocating fresh store ids.  (Distinct
/// from `rdl_types::intern`, which globally hash-conses *store-free* type
/// structure; this table maps run-time **values** to store-backed types
/// minted in this hook's own store.)
#[derive(Debug, Clone)]
struct CachedValueType {
    ty: Type,
    generation: u64,
}

/// The [`DynamicCheckHook`] implementation installed into the interpreter
/// for programs rewritten by CompRDL.
///
/// Checks are keyed by their full [`Span`] — including the source-file id —
/// so multi-file programs whose byte offsets coincide across files can never
/// fire a check at the wrong site.
///
/// The check memo lives in an [`Arc<SharedMemo>`]: by default a private one,
/// but [`CompRdlHook::with_shared_memo`] lets many hooks — across threads
/// and across warm re-runs — share a single table (see the module docs).
pub struct CompRdlHook {
    checks: HashMap<Span, InsertedCheck>,
    store: RefCell<TypeStore>,
    classes: ClassTable,
    helpers: HelperRegistry,
    config: CheckConfig,
    blames: RefCell<Vec<BlameDiagnostic>>,
    memo: Arc<SharedMemo>,
    namespace: u64,
    /// The memo-shared state of this hook's namespace — its epoch and its
    /// aggregate counters — resolved once at construction so the per-call
    /// paths never touch the memo's namespace registry.
    ns: Arc<NamespaceState>,
    /// Value-fingerprint → cached type.  Per-hook, *not* shared: the cached
    /// [`Type`]s hold ids of this hook's own store, which mean nothing to a
    /// sibling hook's store.
    value_types: RefCell<HashMap<u64, CachedValueType>>,
    /// This hook's own hit / miss / invalidation counters (the shared memo
    /// additionally aggregates across hooks).
    stats: Cell<CacheStats>,
}

impl CompRdlHook {
    /// Builds a hook from the checks produced by the static checker, with a
    /// private memo.
    pub fn new(
        checks: Vec<InsertedCheck>,
        store: TypeStore,
        classes: ClassTable,
        helpers: HelperRegistry,
        config: CheckConfig,
    ) -> Self {
        Self::with_shared_memo(
            checks,
            store,
            classes,
            helpers,
            config,
            Arc::new(SharedMemo::new()),
            0,
        )
    }

    /// Builds a hook whose check memo is the given [`SharedMemo`], under the
    /// given namespace.  Hooks evaluating the *same program* (warm re-runs,
    /// or one run per harness thread) should share a namespace (see
    /// [`crate::memo_namespace`]); unrelated programs must not, since their spans
    /// can collide.
    pub fn with_shared_memo(
        checks: Vec<InsertedCheck>,
        store: TypeStore,
        classes: ClassTable,
        helpers: HelperRegistry,
        config: CheckConfig,
        memo: Arc<SharedMemo>,
        namespace: u64,
    ) -> Self {
        let map = checks.into_iter().map(|c| (c.site, c)).collect();
        let ns = memo.namespace_state(namespace);
        CompRdlHook {
            checks: map,
            store: RefCell::new(store),
            classes,
            helpers,
            config,
            blames: RefCell::new(Vec::new()),
            memo,
            namespace,
            ns,
            value_types: RefCell::new(HashMap::new()),
            stats: Cell::new(CacheStats::default()),
        }
    }

    /// Number of checked call sites.
    pub fn check_count(&self) -> usize {
        self.checks.len()
    }

    /// The memo this hook records into.
    pub fn shared_memo(&self) -> &Arc<SharedMemo> {
        &self.memo
    }

    /// The namespace this hook's memo entries are keyed under.
    pub fn namespace(&self) -> u64 {
        self.namespace
    }

    /// Borrows the blame diagnostics produced so far, in execution order
    /// (also raised as errors at the call sites unless
    /// [`CheckConfig::raise_blame`] is off).  A borrow, not a clone: the
    /// overhead harness polls this per run per mode, and cloning the whole
    /// vector each time was measurable on blame-heavy suites.
    ///
    /// Drop the returned [`Ref`] before driving any further checked calls:
    /// delivering a blame needs the mutable side of the same `RefCell`, so
    /// a borrow held across `before_call` / `after_call` panics.  Harnesses
    /// that read the blames exactly once after a run should use
    /// [`CompRdlHook::take_blames`] instead.
    pub fn blames(&self) -> Ref<'_, [BlameDiagnostic]> {
        Ref::map(self.blames.borrow(), |v| v.as_slice())
    }

    /// Number of blames recorded so far.
    pub fn blame_count(&self) -> usize {
        self.blames.borrow().len()
    }

    /// Takes ownership of the recorded blame diagnostics (leaving the hook's
    /// list empty).  Harnesses that consume the blames exactly once should
    /// prefer this over [`CompRdlHook::blames`] + clone.
    pub fn take_blames(&self) -> Vec<BlameDiagnostic> {
        std::mem::take(&mut *self.blames.borrow_mut())
    }

    /// Hit / miss / invalidation counters of *this hook's* memo lookups (all
    /// zeros when [`CheckConfig::memoize`] is off).  [`SharedMemo::stats`]
    /// aggregates across every sharing hook.
    pub fn memo_stats(&self) -> CacheStats {
        self.stats.get()
    }

    /// Number of store-backed types currently interned in the hook's store.
    /// The memo keeps this from growing per-hit; the overhead harness
    /// asserts it.
    pub fn store_size(&self) -> usize {
        self.store.borrow().len()
    }

    /// Runs `f` against the hook's type store.  This models type-level state
    /// mutating *between* calls (§4 "Heap Mutation" — e.g. a migration
    /// changing a table's schema mid-run); if `f` mutates the store (its
    /// generation moves), the hook's **namespace epoch** is bumped so no
    /// hook of this namespace can replay a verdict recorded before the
    /// mutation.  Other namespaces' warm entries are untouched — they never
    /// share keys with this one.
    pub fn mutate_store<R>(&self, f: impl FnOnce(&mut TypeStore) -> R) -> R {
        let mut store = self.store.borrow_mut();
        let before = store.generation();
        let result = f(&mut store);
        if store.generation() != before {
            self.ns.bump_epoch();
        }
        result
    }

    fn note_hit(&self) {
        let mut stats = self.stats.get();
        stats.hits += 1;
        self.stats.set(stats);
    }

    fn note_miss(&self, invalidated: bool) {
        let mut stats = self.stats.get();
        stats.misses += 1;
        if invalidated {
            stats.invalidations += 1;
        }
        self.stats.set(stats);
    }

    /// Records a blame and either raises it (the default λC behaviour) or
    /// swallows it so the run can continue collecting the full blame set.
    /// Delivery happens at call time for replays and fresh evaluations
    /// alike, so the recorded blame *sequence* is execution order in both.
    fn deliver(&self, outcome: Result<(), BlameDiagnostic>) -> Result<(), String> {
        match outcome {
            Ok(()) => Ok(()),
            Err(blame) => {
                let raised = self.config.raise_blame.then(|| blame.message.clone());
                self.blames.borrow_mut().push(blame);
                match raised {
                    Some(message) => Err(message),
                    None => Ok(()),
                }
            }
        }
    }

    /// [`type_of_value`] with generation-guarded interning: while the store
    /// is unmutated, structurally identical values map to the *same* store
    /// ids instead of freshly allocated ones.
    fn type_of_value_cached(&self, store: &mut TypeStore, value: &Value) -> Type {
        let fp = value_fingerprint(value);
        let mut table = self.value_types.borrow_mut();
        if let Some(interned) = table.get(&fp) {
            if interned.generation == store.generation() {
                return interned.ty.clone();
            }
        }
        let ty = type_of_value(value, store);
        table.insert(fp, CachedValueType { ty: ty.clone(), generation: store.generation() });
        ty
    }

    /// Evaluates the §4 consistency check, returning `Err` with the blame
    /// diagnostic (not yet recorded) on failure.
    fn eval_consistency(
        &self,
        check: &InsertedCheck,
        consistency: &ConsistencyCheck,
        recv: &Value,
        args: &[Value],
    ) -> Result<(), BlameDiagnostic> {
        let mut store = self.store.borrow_mut();
        let mut bindings: HashMap<String, TlcValue> = HashMap::new();
        {
            let recv_ty = if self.config.memoize {
                self.type_of_value_cached(&mut store, recv)
            } else {
                type_of_value(recv, &mut store)
            };
            bindings.insert("tself".to_string(), TlcValue::Type(recv_ty));
            for (i, binder) in consistency.binders.iter().enumerate() {
                if let Some(name) = binder {
                    let arg_ty = match args.get(i) {
                        Some(v) if self.config.memoize => self.type_of_value_cached(&mut store, v),
                        Some(v) => type_of_value(v, &mut store),
                        None => Type::nil(),
                    };
                    bindings.insert(name.clone(), TlcValue::Type(arg_ty));
                }
            }
        }
        let recomputed = eval_comp_type(
            &mut store,
            &self.classes,
            &self.helpers,
            bindings,
            &consistency.ret_expr,
        );
        match recomputed {
            Ok(t) => {
                // The comp type may legitimately compute a *more precise*
                // type at run time than it did statically (singleton
                // receivers); it must never compute an incompatible one.
                let sub = Subtyper::new(&self.classes);
                if sub.is_subtype(&store, &t, &consistency.expected)
                    || sub.is_subtype(&store, &consistency.expected, &t)
                {
                    Ok(())
                } else {
                    // Render store-backed types structurally: raw `Display`
                    // leaks store ids (`#fhash7`), which differ between
                    // memoized and unmemoized runs and mean nothing to the
                    // user.
                    Err(BlameDiagnostic::new(
                        BLAME_CONSISTENCY,
                        check.site,
                        format!(
                            "{}: comp type evaluated to `{}` at run time but `{}` at \
                             type-check time",
                            check.description,
                            store.render(&t),
                            store.render(&consistency.expected)
                        ),
                    ))
                }
            }
            Err(e) => Err(BlameDiagnostic::new(
                BLAME_EVAL,
                check.site,
                format!("{}: comp type failed at run time: {}", check.description, e),
            )),
        }
    }
}

impl std::fmt::Debug for CompRdlHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompRdlHook").field("checks", &self.checks.len()).finish()
    }
}

impl DynamicCheckHook for CompRdlHook {
    fn has_check(&self, site: Span) -> bool {
        self.checks.contains_key(&site)
    }

    fn before_call(&self, site: Span, recv: &Value, args: &[Value]) -> Result<(), String> {
        if !self.config.consistency_checks {
            return Ok(());
        }
        let Some(check) = self.checks.get(&site) else { return Ok(()) };
        let Some(consistency) = &check.consistency else { return Ok(()) };

        let key = self.config.memoize.then(|| {
            let mut fp = Fingerprint::new();
            hash_value(&mut fp, recv);
            fp.write_usize(args.len());
            for a in args {
                hash_value(&mut fp, a);
            }
            (self.namespace, site, fp.finish())
        });
        let stamp = key.map(|_| (self.store.borrow().generation(), self.ns.epoch()));
        if let (Some(key), Some((generation, _))) = (&key, stamp) {
            let (cached, invalidated) =
                self.memo.lookup(MemoTable::Before, key, generation, &self.ns);
            match cached {
                Some(outcome) => {
                    self.note_hit();
                    return self.deliver(outcome);
                }
                None => self.note_miss(invalidated),
            }
        }

        let generation_before = self.store.borrow().generation();
        let outcome = self.eval_consistency(check, consistency, recv, args);
        let mutated = self.store.borrow().generation() != generation_before;
        if mutated {
            // The evaluation itself mutated type-level state (comp-type
            // helpers hold `&mut TypeStore` — e.g. an in-band schema
            // migration).  Every hook of this namespace must re-validate.
            self.ns.bump_epoch();
        }
        if let (false, Some(key), Some((generation, epoch))) = (mutated, key, stamp) {
            // Record the verdict stamped with the generation/epoch read
            // before evaluation.  A verdict whose evaluation *mutated* the
            // store is never recorded at all: replaying it would skip the
            // evaluation's side effect, and although its pre-mutation stamp
            // makes it stale for this hook, a sibling hook that sampled the
            // epoch in the window before the bump above could still match
            // the stamp and replay it — so the only safe entry is no entry.
            // The next call re-evaluates, exactly like the unmemoized
            // baseline.
            self.memo.insert(MemoTable::Before, &key, generation, epoch, &outcome);
        }
        self.deliver(outcome)
    }

    fn after_call(&self, site: Span, ret: &Value) -> Result<(), String> {
        if !self.config.return_checks {
            return Ok(());
        }
        let Some(check) = self.checks.get(&site) else { return Ok(()) };

        let key = self.config.memoize.then(|| (self.namespace, site, value_fingerprint(ret)));
        let stamp = key.map(|_| (self.store.borrow().generation(), self.ns.epoch()));
        if let (Some(key), Some((generation, _))) = (&key, stamp) {
            let (cached, invalidated) =
                self.memo.lookup(MemoTable::After, key, generation, &self.ns);
            match cached {
                Some(outcome) => {
                    self.note_hit();
                    return self.deliver(outcome);
                }
                None => self.note_miss(invalidated),
            }
        }

        let store = self.store.borrow();
        let outcome = if value_matches(ret, &check.expected_return, &store, &self.classes) {
            Ok(())
        } else {
            Err(BlameDiagnostic::new(
                BLAME_RETURN,
                check.site,
                format!(
                    "{}: returned {} which is not a {}",
                    check.description,
                    ret.inspect(),
                    store.render(&check.expected_return)
                ),
            ))
        };
        drop(store);
        if let (Some(key), Some((generation, epoch))) = (key, stamp) {
            self.memo.insert(MemoTable::After, &key, generation, epoch, &outcome);
        }
        self.deliver(outcome)
    }
}

/// Convenience constructor: wraps checks in an [`Rc`] ready to hand to
/// [`ruby_interp::Interpreter::set_hook`], with a private memo.
pub fn make_hook(
    checks: Vec<InsertedCheck>,
    store: TypeStore,
    classes: ClassTable,
    helpers: HelperRegistry,
    config: CheckConfig,
) -> Rc<CompRdlHook> {
    Rc::new(CompRdlHook::new(checks, store, classes, helpers, config))
}

/// Like [`make_hook`], but recording into the given [`SharedMemo`] under
/// `namespace` (see [`crate::memo_namespace`]).  This is what the corpus harnesses
/// use so every per-app hook — across threads and across warm re-runs —
/// shares one memo.
pub fn make_hook_shared(
    checks: Vec<InsertedCheck>,
    store: TypeStore,
    classes: ClassTable,
    helpers: HelperRegistry,
    config: CheckConfig,
    memo: Arc<SharedMemo>,
    namespace: u64,
) -> Rc<CompRdlHook> {
    Rc::new(CompRdlHook::with_shared_memo(checks, store, classes, helpers, config, memo, namespace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memo::memo_namespace;

    fn classes() -> ClassTable {
        let mut ct = ClassTable::with_builtins();
        ct.add_model_class("User", "ActiveRecord::Base");
        ct
    }

    #[test]
    fn type_of_value_forms() {
        let mut store = TypeStore::new();
        assert_eq!(type_of_value(&Value::Int(3), &mut store), Type::int(3));
        assert_eq!(type_of_value(&Value::Sym("a".into()), &mut store), Type::sym("a"));
        assert!(matches!(type_of_value(&Value::str("x"), &mut store), Type::ConstString(_)));
        assert!(matches!(
            type_of_value(&Value::array(vec![Value::Int(1)]), &mut store),
            Type::Tuple(_)
        ));
        assert!(matches!(
            type_of_value(&Value::hash(vec![(Value::Sym("a".into()), Value::Int(1))]), &mut store),
            Type::FiniteHash(_)
        ));
        assert_eq!(type_of_value(&Value::new_object("User"), &mut store), Type::nominal("User"));
        assert_eq!(type_of_value(&Value::Class("User".into()), &mut store), Type::class_of("User"));
    }

    #[test]
    fn value_matching_basics() {
        let store = TypeStore::new();
        let classes = classes();
        assert!(value_matches(&Value::Int(5), &Type::nominal("Integer"), &store, &classes));
        assert!(value_matches(&Value::Int(5), &Type::nominal("Numeric"), &store, &classes));
        assert!(!value_matches(&Value::Int(5), &Type::nominal("String"), &store, &classes));
        assert!(value_matches(&Value::Bool(true), &Type::Bool, &store, &classes));
        assert!(value_matches(&Value::Nil, &Type::nominal("String"), &store, &classes));
        assert!(value_matches(
            &Value::str("x"),
            &Type::union([Type::nominal("String"), Type::nominal("Integer")]),
            &store,
            &classes
        ));
        assert!(!value_matches(
            &Value::Sym("x".into()),
            &Type::union([Type::nominal("String"), Type::nominal("Integer")]),
            &store,
            &classes
        ));
    }

    #[test]
    fn value_matching_containers() {
        let mut store = TypeStore::new();
        let classes = classes();
        let arr = Value::array(vec![Value::str("a"), Value::str("b")]);
        assert!(value_matches(&arr, &Type::array(Type::nominal("String")), &store, &classes));
        assert!(!value_matches(&arr, &Type::array(Type::nominal("Integer")), &store, &classes));

        let tuple_ty = store.new_tuple(vec![Type::nominal("Integer"), Type::nominal("String")]);
        let tup = Value::array(vec![Value::Int(1), Value::str("x")]);
        assert!(value_matches(&tup, &tuple_ty, &store, &classes));
        let wrong = Value::array(vec![Value::str("x"), Value::Int(1)]);
        assert!(!value_matches(&wrong, &tuple_ty, &store, &classes));

        let fh = store.new_finite_hash(vec![
            (HashKey::Sym("info".into()), Type::array(Type::nominal("String"))),
            (HashKey::Sym("title".into()), Type::nominal("String")),
        ]);
        let page = Value::hash(vec![
            (Value::Sym("info".into()), Value::array(vec![Value::str("u")])),
            (Value::Sym("title".into()), Value::str("t")),
        ]);
        assert!(value_matches(&page, &fh, &store, &classes));
        let bad_page = Value::hash(vec![(Value::Sym("title".into()), Value::str("t"))]);
        assert!(!value_matches(&bad_page, &fh, &store, &classes));
    }

    #[test]
    fn hook_checks_return_types() {
        let mut store = TypeStore::new();
        let site = Span::new(10, 20, 3);
        let check = InsertedCheck {
            site,
            description: "Hash#[]".to_string(),
            expected_return: Type::array(Type::nominal("String")),
            consistency: None,
        };
        let _ = &mut store;
        let hook = CompRdlHook::new(
            vec![check],
            store,
            classes(),
            HelperRegistry::new(),
            CheckConfig::default(),
        );
        assert!(hook.has_check(site));
        assert!(!hook.has_check(Span::new(0, 1, 1)));
        let good = Value::array(vec![Value::str("a")]);
        assert!(hook.after_call(site, &good).is_ok());
        let bad = Value::str("not an array");
        let err = hook.after_call(site, &bad).unwrap_err();
        assert!(err.contains("Hash#[]"));
        assert_eq!(hook.blames().len(), 1);
    }

    #[test]
    fn hook_consistency_check_detects_schema_change() {
        // Simulates §4: the comp type consults mutable state (bound helper)
        // whose answer changes between type checking and the call.
        let mut helpers = HelperRegistry::new();
        helpers.register_native("current_schema", |ctx, _args| {
            // Reads the binding `$schema_columns` (set from the "DB").
            Ok(ctx
                .bindings
                .get("$schema_columns")
                .cloned()
                .unwrap_or(crate::tlc::TlcValue::Type(Type::nominal("String"))))
        });
        let site = Span::new(1, 2, 1);
        let expr = ruby_syntax::parse_expr("current_schema()").unwrap();
        let check = InsertedCheck {
            site,
            description: "Table#where".to_string(),
            expected_return: Type::object(),
            consistency: Some(ConsistencyCheck {
                ret_expr: expr,
                binders: vec![],
                expected: Type::nominal("Integer"),
            }),
        };
        let hook = CompRdlHook::new(
            vec![check],
            TypeStore::new(),
            classes(),
            helpers,
            CheckConfig::default(),
        );
        // The helper returns String (default binding) but type checking saw
        // Integer — the consistency check must blame.
        let err = hook.before_call(site, &Value::Class("User".into()), &[]).unwrap_err();
        assert!(err.contains("type-check time"));
    }

    #[test]
    fn value_fingerprint_tracks_structure_and_mutation() {
        let a = Value::array(vec![Value::Int(1), Value::str("x")]);
        let b = Value::array(vec![Value::Int(1), Value::str("x")]);
        assert_eq!(value_fingerprint(&a), value_fingerprint(&b), "distinct Rcs, same structure");
        assert_ne!(
            value_fingerprint(&a),
            value_fingerprint(&Value::array(vec![Value::str("x"), Value::Int(1)]))
        );
        // In-place mutation changes the digest.
        let before = value_fingerprint(&a);
        if let Value::Array(items) = &a {
            items.borrow_mut().push(Value::Nil);
        }
        assert_ne!(value_fingerprint(&a), before);
        // Nesting is not flattened away.
        let flat = Value::array(vec![Value::Int(1), Value::Int(2)]);
        let nested = Value::array(vec![Value::array(vec![Value::Int(1), Value::Int(2)])]);
        assert_ne!(value_fingerprint(&flat), value_fingerprint(&nested));
    }

    #[test]
    fn cyclic_values_fingerprint_and_check_without_overflowing() {
        // `a = []; a << a` is expressible in the interpreted subset; the
        // default-on memo must not turn a check the unmemoized hook handled
        // fine into a stack overflow.
        let cyclic = Value::array(vec![Value::Int(1)]);
        if let Value::Array(items) = &cyclic {
            items.borrow_mut().push(cyclic.clone());
        }
        let other = Value::array(vec![Value::Int(1)]);
        if let Value::Array(items) = &other {
            items.borrow_mut().push(other.clone());
        }
        assert_eq!(
            value_fingerprint(&cyclic),
            value_fingerprint(&other),
            "structurally identical cycles digest identically"
        );
        assert_ne!(
            value_fingerprint(&cyclic),
            value_fingerprint(&Value::array(vec![Value::Int(1)]))
        );

        let site = Span::new(2, 4, 1);
        let check = InsertedCheck {
            site,
            description: "Array#dup".to_string(),
            expected_return: Type::nominal("Array"),
            consistency: None,
        };
        let hook = CompRdlHook::new(
            vec![check],
            TypeStore::new(),
            classes(),
            HelperRegistry::new(),
            CheckConfig::default(),
        );
        for _ in 0..3 {
            assert!(hook.after_call(site, &cyclic).is_ok());
        }
        assert!(hook.memo_stats().hits >= 2);
    }

    #[test]
    fn repeated_hits_are_memoized_and_do_not_grow_the_store() {
        let site = Span::new(10, 20, 3);
        let check = InsertedCheck {
            site,
            description: "Array#map".to_string(),
            expected_return: Type::array(Type::nominal("String")),
            consistency: None,
        };
        let hook = CompRdlHook::new(
            vec![check],
            TypeStore::new(),
            classes(),
            HelperRegistry::new(),
            CheckConfig::default(),
        );
        let value = Value::array(vec![Value::str("a"), Value::str("b")]);
        for _ in 0..5 {
            assert!(hook.after_call(site, &value).is_ok());
        }
        let stats = hook.memo_stats();
        assert_eq!((stats.misses, stats.hits), (1, 4), "{stats:?}");
        let size_after_first = hook.store_size();
        for _ in 0..5 {
            assert!(hook.after_call(site, &value).is_ok());
        }
        assert_eq!(hook.store_size(), size_after_first, "store must not grow per hit");
    }

    #[test]
    fn memoized_blame_replays_are_byte_identical() {
        let site = Span::new(1, 2, 1);
        let mut store = TypeStore::new();
        // A store-backed expected type, so the message exercises the
        // structural rendering rather than the raw-id Display.
        let expected = store.new_finite_hash(vec![(
            rdl_types::HashKey::Sym("id".into()),
            Type::nominal("Integer"),
        )]);
        let check = InsertedCheck {
            site,
            description: "Table#first".to_string(),
            expected_return: expected,
            consistency: None,
        };
        let hook = CompRdlHook::new(
            vec![check],
            store,
            classes(),
            HelperRegistry::new(),
            CheckConfig { raise_blame: false, ..CheckConfig::default() },
        );
        let bad = Value::Int(7);
        for _ in 0..3 {
            assert!(hook.after_call(site, &bad).is_ok(), "raise_blame off must not raise");
        }
        let blames = hook.blames();
        assert_eq!(blames.len(), 3, "every hit records a blame");
        assert_eq!(blames[0], blames[1], "replayed blame must equal the fresh one verbatim");
        assert_eq!(blames[1], blames[2]);
        assert_eq!(blames[0].site, site, "blame carries the call-site span");
        assert_eq!(blames[0].code, BLAME_RETURN);
        assert!(
            blames[0].message.contains("{ id: Integer }"),
            "structural rendering: {}",
            blames[0]
        );
        assert!(!blames[0].message.contains("#fhash"), "no raw store ids: {}", blames[0]);
        // The Diagnostic conversion is identical for replayed and fresh
        // blame — same code, message and primary span.
        let diags: Vec<Diagnostic> = blames.iter().cloned().map(Diagnostic::from).collect();
        assert_eq!(diags[0], diags[2]);
        assert_eq!(diags[0].primary_span(), site);
        assert_eq!(diags[0].code, BLAME_RETURN);
        drop(blames);
        assert!(hook.memo_stats().hits >= 2);
        assert_eq!(hook.blame_count(), 3);
        assert_eq!(hook.take_blames().len(), 3, "take_blames hands ownership once");
        assert_eq!(hook.blame_count(), 0, "...leaving the hook's list empty");
    }

    #[test]
    fn unmemoized_config_matches_memoized_blames() {
        let site = Span::new(4, 9, 2);
        let mk = |memoize: bool| {
            let check = InsertedCheck {
                site,
                description: "Hash#[]".to_string(),
                expected_return: Type::nominal("Integer"),
                consistency: None,
            };
            CompRdlHook::new(
                vec![check],
                TypeStore::new(),
                classes(),
                HelperRegistry::new(),
                CheckConfig { memoize, raise_blame: false, ..CheckConfig::default() },
            )
        };
        let memoized = mk(true);
        let unmemoized = mk(false);
        // The schedule interleaves passing and failing values, with the
        // failing ones repeating so the memoized hook *replays* blames: the
        // recorded sequence (not just the set) must match the baseline's
        // execution order byte for byte.
        for v in [Value::str("a"), Value::Int(1), Value::str("a"), Value::str("b")] {
            let _ = memoized.after_call(site, &v);
            let _ = unmemoized.after_call(site, &v);
        }
        assert_eq!(&*memoized.blames(), &*unmemoized.blames());
        assert_eq!(unmemoized.memo_stats(), CacheStats::default(), "memo off records nothing");
    }

    #[test]
    fn store_generation_bump_invalidates_the_runtime_memo() {
        // §4 heap mutation: the comp type consults a const string in the
        // store; promoting it between calls changes the verdict, which the
        // memo must not replay over.
        let mut store = TypeStore::new();
        let marker = store.new_const_string("users");
        let marker_for_helper = marker.clone();
        let mut helpers = HelperRegistry::new();
        helpers.register_native("schema_marker", move |ctx, _args| {
            let t = match &marker_for_helper {
                Type::ConstString(id) => match ctx.store.const_string_value(*id) {
                    Some(_) => Type::nominal("Integer"),
                    None => Type::nominal("String"),
                },
                _ => unreachable!(),
            };
            Ok(crate::tlc::TlcValue::Type(t))
        });
        let site = Span::new(1, 2, 1);
        let check = InsertedCheck {
            site,
            description: "Table#where".to_string(),
            expected_return: Type::object(),
            consistency: Some(ConsistencyCheck {
                ret_expr: ruby_syntax::parse_expr("schema_marker()").unwrap(),
                binders: vec![],
                expected: Type::nominal("Integer"),
            }),
        };
        let hook = CompRdlHook::new(
            vec![check],
            store,
            classes(),
            helpers,
            CheckConfig { raise_blame: false, ..CheckConfig::default() },
        );
        let recv = Value::Class("User".into());

        // Two calls: evaluate once, replay once, both consistent.
        assert!(hook.before_call(site, &recv, &[]).is_ok());
        assert!(hook.before_call(site, &recv, &[]).is_ok());
        assert_eq!(hook.blames().len(), 0);
        assert_eq!(hook.memo_stats().hits, 1);

        // Mutate type-level state between calls: the marker promotes, the
        // helper now answers String, and the memoized Ok must be evicted.
        hook.mutate_store(|s| {
            let Type::ConstString(id) = &marker else { unreachable!() };
            s.promote_const_string(*id);
        });
        assert!(hook.before_call(site, &recv, &[]).is_ok(), "raise_blame off");
        assert_eq!(hook.blames().len(), 1, "stale Ok must not be replayed");
        assert!(hook.blames()[0].message.contains("type-check time"), "{:?}", hook.blames());
        assert_eq!(hook.blames()[0].code, BLAME_CONSISTENCY);
        assert_eq!(hook.memo_stats().invalidations, 1);
    }

    #[test]
    fn sites_in_different_files_do_not_collide() {
        // Two spans with identical offsets in different files: the check is
        // registered for file 1 only, so the byte-identical span in file 0
        // must neither report a check nor fire one.
        let site_app = Span::in_file(1, 10, 20, 3);
        let site_other = Span::in_file(0, 10, 20, 3);
        let check = InsertedCheck {
            site: site_app,
            description: "Array#first".to_string(),
            expected_return: Type::nominal("Integer"),
            consistency: None,
        };
        let hook = CompRdlHook::new(
            vec![check],
            TypeStore::new(),
            classes(),
            HelperRegistry::new(),
            CheckConfig::default(),
        );
        assert!(hook.has_check(site_app));
        assert!(!hook.has_check(site_other), "same offsets, different file");
        assert!(hook.after_call(site_other, &Value::str("wrong")).is_ok());
        assert!(hook.after_call(site_app, &Value::str("wrong")).is_err());
    }

    #[test]
    fn check_config_disables_categories() {
        let site = Span::new(5, 6, 1);
        let check = InsertedCheck {
            site,
            description: "Array#first".to_string(),
            expected_return: Type::nominal("Integer"),
            consistency: None,
        };
        let hook = CompRdlHook::new(
            vec![check],
            TypeStore::new(),
            classes(),
            HelperRegistry::new(),
            CheckConfig {
                return_checks: false,
                consistency_checks: false,
                ..CheckConfig::default()
            },
        );
        assert!(hook.after_call(site, &Value::str("wrong type")).is_ok());
    }

    fn simple_check(site: Span) -> InsertedCheck {
        InsertedCheck {
            site,
            description: "Array#map".to_string(),
            expected_return: Type::array(Type::nominal("String")),
            consistency: None,
        }
    }

    fn hook_on(memo: &Arc<SharedMemo>, namespace: u64, site: Span) -> CompRdlHook {
        CompRdlHook::with_shared_memo(
            vec![simple_check(site)],
            TypeStore::new(),
            classes(),
            HelperRegistry::new(),
            CheckConfig { raise_blame: false, ..CheckConfig::default() },
            memo.clone(),
            namespace,
        )
    }

    #[test]
    fn warm_hooks_replay_from_the_shared_memo() {
        // Two hooks over the same program (same namespace, identical fresh
        // stores): the second is a warm re-run and must hit immediately,
        // reproducing the identical blame diagnostic.
        let memo = Arc::new(SharedMemo::new());
        let site = Span::new(10, 20, 3);
        let cold = hook_on(&memo, memo_namespace("app"), site);
        let good = Value::array(vec![Value::str("a")]);
        let bad = Value::Int(9);
        assert!(cold.after_call(site, &good).is_ok());
        assert!(cold.after_call(site, &bad).is_ok(), "raise_blame off records instead");
        assert_eq!(cold.memo_stats(), CacheStats { hits: 0, misses: 2, invalidations: 0 });

        let warm = hook_on(&memo, memo_namespace("app"), site);
        assert!(warm.after_call(site, &good).is_ok());
        assert!(warm.after_call(site, &bad).is_ok());
        assert_eq!(
            warm.memo_stats(),
            CacheStats { hits: 2, misses: 0, invalidations: 0 },
            "a warm re-run must be served entirely from the shared memo"
        );
        assert_eq!(&*warm.blames(), &*cold.blames(), "replayed blame is byte-identical");
        assert_eq!(memo.stats().hits, 2);
        assert_eq!(memo.len(), 2);
        assert_eq!(memo.shard_sizes().iter().sum::<usize>(), memo.len());
    }

    #[test]
    fn namespaces_isolate_programs_with_colliding_spans() {
        // Two *different* programs whose check sites collide byte-for-byte:
        // sharing one memo must never exchange verdicts between them.
        let memo = Arc::new(SharedMemo::new());
        let site = Span::new(10, 20, 3);
        let a = hook_on(&memo, memo_namespace("app-a"), site);
        let value = Value::array(vec![Value::str("x")]);
        assert!(a.after_call(site, &value).is_ok());

        let b = hook_on(&memo, memo_namespace("app-b"), site);
        assert!(b.after_call(site, &value).is_ok());
        assert_eq!(
            b.memo_stats(),
            CacheStats { hits: 0, misses: 1, invalidations: 0 },
            "a different namespace must not hit app-a's entry"
        );
        assert_eq!(memo.len(), 2, "one entry per namespace");
    }

    #[test]
    fn one_hooks_mutation_invalidates_its_own_namespace() {
        // The namespace epoch: hook A's store mutation must keep hook B —
        // same shared memo, *same namespace* — from replaying entries
        // recorded before it; B re-validates against its own store instead.
        let memo = Arc::new(SharedMemo::new());
        let site = Span::new(1, 5, 1);
        let ns = memo_namespace("app");
        let a = hook_on(&memo, ns, site);
        let b = hook_on(&memo, ns, site);
        let value = Value::array(vec![Value::str("x")]);
        assert!(a.after_call(site, &value).is_ok());
        assert!(b.after_call(site, &value).is_ok());
        assert_eq!(b.memo_stats(), CacheStats { hits: 1, misses: 0, invalidations: 0 });

        a.mutate_store(|s| {
            let t = s.new_tuple(vec![Type::nominal("Integer")]);
            let Type::Tuple(id) = t else { unreachable!() };
            s.promote_tuple(id);
        });
        assert_eq!(memo.namespace_epoch(ns), 1, "an observed store mutation bumps the epoch");

        assert!(b.after_call(site, &value).is_ok());
        assert_eq!(
            b.memo_stats(),
            CacheStats { hits: 1, misses: 1, invalidations: 1 },
            "b's pre-mutation entry was evicted, not replayed"
        );
        // A no-op mutate_store (generation unchanged) must not thrash the
        // epoch.
        a.mutate_store(|s| s.generation());
        assert_eq!(memo.namespace_epoch(ns), 1);
    }

    #[test]
    fn one_hooks_mutation_leaves_other_namespaces_warm() {
        // Per-namespace epochs: app A's migration must not flush app B's
        // warm entries — B keeps replaying its own verdicts at full hit
        // rate (namespaces never share keys, so this is sound).
        let memo = Arc::new(SharedMemo::new());
        let site = Span::new(1, 5, 1);
        let a = hook_on(&memo, memo_namespace("app-a"), site);
        let b = hook_on(&memo, memo_namespace("app-b"), site);
        let value = Value::array(vec![Value::str("x")]);
        assert!(a.after_call(site, &value).is_ok());
        assert!(b.after_call(site, &value).is_ok());

        a.mutate_store(|s| {
            let t = s.new_tuple(vec![Type::nominal("Integer")]);
            let Type::Tuple(id) = t else { unreachable!() };
            s.promote_tuple(id);
        });
        assert_eq!(memo.namespace_epoch(memo_namespace("app-a")), 1);
        assert_eq!(memo.namespace_epoch(memo_namespace("app-b")), 0, "b's epoch is untouched");

        assert!(b.after_call(site, &value).is_ok());
        assert_eq!(
            b.memo_stats(),
            CacheStats { hits: 1, misses: 1, invalidations: 0 },
            "b's warm entry must survive a's migration"
        );
        // A's own entry is gone, exactly as before.
        assert!(a.after_call(site, &value).is_ok());
        assert_eq!(a.memo_stats().invalidations, 1);
    }

    #[test]
    fn entry_recorded_just_before_a_concurrent_bump_is_rejected() {
        // The stale-epoch acceptance window: a hook samples its namespace
        // epoch *before* evaluating, and the entry it records carries that
        // sample.  If the epoch is bumped concurrently (here: out-of-band
        // through the memo, mid-evaluation), the recorded entry is already
        // stale at insert time — the next lookup must re-read the (bumped)
        // namespace epoch and reject it rather than replay it.
        let memo = Arc::new(SharedMemo::new());
        let ns = memo_namespace("app");
        let memo_for_helper = memo.clone();
        let fired = std::sync::atomic::AtomicBool::new(false);
        let mut helpers = HelperRegistry::new();
        helpers.register_native("bump_once", move |_ctx, _args| {
            if !fired.swap(true, std::sync::atomic::Ordering::SeqCst) {
                memo_for_helper.bump_namespace_epoch(ns);
            }
            Ok(crate::tlc::TlcValue::Type(Type::nominal("Integer")))
        });
        let site = Span::new(1, 2, 1);
        let check = InsertedCheck {
            site,
            description: "Table#where".to_string(),
            expected_return: Type::object(),
            consistency: Some(ConsistencyCheck {
                ret_expr: ruby_syntax::parse_expr("bump_once()").unwrap(),
                binders: vec![],
                expected: Type::nominal("Integer"),
            }),
        };
        let hook = CompRdlHook::with_shared_memo(
            vec![check],
            TypeStore::new(),
            classes(),
            helpers,
            CheckConfig { raise_blame: false, ..CheckConfig::default() },
            memo.clone(),
            ns,
        );
        let recv = Value::Class("User".into());
        // First call: miss, evaluates; the helper bumps the namespace epoch
        // mid-evaluation, so the entry is recorded with a pre-bump stamp.
        assert!(hook.before_call(site, &recv, &[]).is_ok());
        // Second call: the pre-bump entry must be rejected (invalidation),
        // not replayed, and a fresh entry recorded at the new epoch.
        assert!(hook.before_call(site, &recv, &[]).is_ok());
        // Third call: the fresh entry replays.
        assert!(hook.before_call(site, &recv, &[]).is_ok());
        assert_eq!(
            hook.memo_stats(),
            CacheStats { hits: 1, misses: 2, invalidations: 1 },
            "the entry recorded just before the concurrent bump must be rejected"
        );
        assert_eq!(hook.blames().len(), 0, "the verdicts themselves are consistent");
    }
}
