//! Semantic dependency tracking: Merkle hashes over the call/helper graph.
//!
//! [`DepGraph`] assigns every program method a **Merkle hash** — a digest of
//! its own structural hash ([`ruby_syntax::method_hash`]) combined with the
//! structural hashes of everything its check verdict can depend on:
//!
//! - other program methods it calls (name-resolved, conservatively across
//!   all owners),
//! - the signatures of annotated library methods it calls, and
//! - the comp-type helper methods those signatures' `«...»` expressions
//!   reference, transitively through helper-to-helper calls.
//!
//! A method's Merkle hash is unchanged **iff** nothing in that transitive
//! closure changed, which is exactly the condition under which a previous
//! check verdict can be replayed.  Conversely, editing one comp-type helper
//! changes the Merkle hash of precisely the methods that can reach it — its
//! transitive dependents — and of nothing else.
//!
//! The graph is name-based and deliberately conservative: an unresolvable
//! or dynamic call contributes no edge (the checker never sees through it
//! either), and a name that resolves to several candidates contributes an
//! edge to each.  Over-approximation costs a spurious re-check; it never
//! costs soundness.
//!
//! [`env_hash`] digests the rest of the environment (class hierarchy,
//! method/ivar/gvar annotations).  Helper *bodies* are intentionally
//! excluded from it: a helper edit must invalidate only the methods that
//! reach the helper through the graph, not the whole environment.

use crate::env::CompRdl;
use crate::tlc::HelperRegistry;
use rdl_types::{MethodKind, MethodSig, TypeExpr};
use ruby_syntax::{method_hash, Expr, ExprKind, MethodDef, Program, SemHasher};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Bump when the behaviour of any *native* (Rust) helper changes in a way
/// that affects check verdicts.  Native helpers have no AST to hash, so this
/// tag is their stand-in body hash.
pub const NATIVE_HELPER_REVISION: u32 = 1;

/// The identity of a program method: `(owner class, name, singleton?)`.
pub type MethodId = (String, String, bool);

/// One node of the graph — a program method, an annotated library-method
/// signature, or a comp-type helper.  The three kinds share a
/// representation; what distinguishes them is which index map
/// (`DepGraph::methods` / `helpers` / `Builder::annotations`) points at
/// them.
#[derive(Debug)]
struct Node {
    /// Structural hash of this node alone (no dependencies).
    base: u64,
    /// Outgoing dependency edges (indices into `nodes`).
    deps: Vec<usize>,
}

/// The semantic dependency graph of one program checked against one
/// environment.  See the module docs for the invalidation model.
#[derive(Debug)]
pub struct DepGraph {
    nodes: Vec<Node>,
    methods: BTreeMap<MethodId, usize>,
    helpers: BTreeMap<String, usize>,
    /// Memoized reachable-base-hash sets per node.
    merkles: Vec<u64>,
}

impl DepGraph {
    /// Builds the dependency graph for `program` checked under `env`.
    pub fn build(env: &CompRdl, program: &Program) -> DepGraph {
        let mut b = Builder::default();

        // Helper nodes first: Ruby helpers hash structurally, native helpers
        // by name + revision tag.
        for (name, def) in env.helpers.ruby_defs() {
            b.add_helper(name, method_hash(def));
        }
        for name in env.helpers.native_names() {
            let mut h = SemHasher::new();
            h.write_str("native-helper");
            h.write_str(name);
            h.write_u64(u64::from(NATIVE_HELPER_REVISION));
            b.add_helper(name, h.finish());
        }
        // Helper → helper edges (Ruby bodies only; natives are leaves).
        for (name, def) in env.helpers.ruby_defs() {
            let from = b.helpers[name];
            for callee in called_names(def) {
                if let Some(&to) = b.helpers.get(callee.as_str()) {
                    b.nodes[from].deps.push(to);
                }
            }
        }

        // Annotation nodes: one per annotated method signature.  Base hash
        // covers the signature source (which embeds the comp exprs) plus its
        // identity; edges point at every helper its comp exprs mention.
        let mut annots: Vec<(&(String, MethodKind, String), &MethodSig)> =
            env.annotations.iter().collect();
        annots.sort_by_key(|(k, _)| (k.0.clone(), kind_tag(k.1), k.2.clone()));
        for (key, sig) in &annots {
            let idx = b.add_annotation(key, sig);
            let mut helper_names = BTreeSet::new();
            for_each_comp_expr(sig, &mut |expr| {
                collect_helper_refs(expr, &env.helpers, &mut helper_names);
            });
            for hn in helper_names {
                let to = b.helpers[&hn];
                b.nodes[idx].deps.push(to);
            }
        }

        // Program method nodes, then name-based call edges.
        let methods = program.methods();
        for (owner, def) in &methods {
            b.add_method((owner.clone(), def.name.clone(), def.singleton), method_hash(def));
        }
        // Called-name → candidate-node index, computed once.
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        for ((_, name, _), &idx) in &b.methods {
            by_name.entry(name.as_str()).or_default().push(idx);
        }
        for (key, _) in &annots {
            by_name.entry(key.2.as_str()).or_default().push(b.annotations[&ann_key(key)]);
        }
        for (owner, def) in &methods {
            let from = b.methods[&(owner.clone(), def.name.clone(), def.singleton)];
            for callee in called_names(def) {
                if let Some(cands) = by_name.get(callee.as_str()) {
                    for &to in cands {
                        if to != from {
                            b.nodes[from].deps.push(to);
                        }
                    }
                }
            }
        }

        let mut g = DepGraph {
            merkles: Vec::new(),
            nodes: b.nodes,
            methods: b.methods,
            helpers: b.helpers,
        };
        g.merkles = (0..g.nodes.len()).map(|i| g.compute_merkle(i)).collect();
        g
    }

    /// `H(sorted base hashes of the reachable node set, self included)` —
    /// cycle-safe by construction (the reachable *set* is what is hashed,
    /// not a recursive digest).
    fn compute_merkle(&self, start: usize) -> u64 {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![start];
        seen[start] = true;
        let mut bases = BTreeSet::new();
        while let Some(i) = stack.pop() {
            bases.insert(self.nodes[i].base);
            for &d in &self.nodes[i].deps {
                if !seen[d] {
                    seen[d] = true;
                    stack.push(d);
                }
            }
        }
        let mut h = SemHasher::new();
        h.write_usize(bases.len());
        for base in bases {
            h.write_u64(base);
        }
        h.finish()
    }

    /// The Merkle hash of a program method, or `None` if the program has no
    /// such method.
    pub fn merkle(&self, owner: &str, name: &str, singleton: bool) -> Option<u64> {
        self.methods
            .get(&(owner.to_string(), name.to_string(), singleton))
            .map(|&i| self.merkles[i])
    }

    /// Every program method with its Merkle hash, in `(owner, name,
    /// singleton)` order.
    pub fn method_merkles(&self) -> Vec<(MethodId, u64)> {
        self.methods.iter().map(|(id, &i)| (id.clone(), self.merkles[i])).collect()
    }

    /// The name-resolved method→method call edges of the program, as
    /// deduplicated `(caller, callee)` id pairs in sorted order.  These are
    /// the same edges the `analysis` crate's effect-summary inference
    /// resolves independently over the AST; exposing them lets the corpus
    /// harness cross-check that the two call graphs agree.
    pub fn method_call_edges(&self) -> Vec<(MethodId, MethodId)> {
        let by_idx: BTreeMap<usize, &MethodId> =
            self.methods.iter().map(|(id, &i)| (i, id)).collect();
        let mut out = BTreeSet::new();
        for (id, &from) in &self.methods {
            for &to in &self.nodes[from].deps {
                if let Some(&callee) = by_idx.get(&to) {
                    out.insert((id.clone(), callee.clone()));
                }
            }
        }
        out.into_iter().collect()
    }

    /// The program methods whose check verdicts depend (transitively) on the
    /// named helper — exactly the set a helper edit invalidates.
    pub fn helper_dependents(&self, helper: &str) -> Vec<MethodId> {
        let Some(&target) = self.helpers.get(helper) else {
            return Vec::new();
        };
        self.methods
            .iter()
            .filter(|(_, &from)| self.reaches(from, target))
            .map(|(id, _)| id.clone())
            .collect()
    }

    fn reaches(&self, from: usize, target: usize) -> bool {
        if from == target {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![from];
        seen[from] = true;
        while let Some(i) = stack.pop() {
            if i == target {
                return true;
            }
            for &d in &self.nodes[i].deps {
                if !seen[d] {
                    seen[d] = true;
                    stack.push(d);
                }
            }
        }
        false
    }
}

#[derive(Default)]
struct Builder {
    nodes: Vec<Node>,
    methods: BTreeMap<MethodId, usize>,
    helpers: BTreeMap<String, usize>,
    annotations: BTreeMap<(String, u8, String), usize>,
}

impl Builder {
    fn add_helper(&mut self, name: &str, base: u64) {
        let idx = self.nodes.len();
        self.nodes.push(Node { base, deps: Vec::new() });
        self.helpers.insert(name.to_string(), idx);
    }

    fn add_annotation(&mut self, key: &(String, MethodKind, String), sig: &MethodSig) -> usize {
        let mut h = SemHasher::new();
        h.write_str("annotation");
        h.write_str(&key.0);
        h.write_u8(kind_tag(key.1));
        h.write_str(&key.2);
        h.write_str(&sig.source);
        match &sig.typecheck_label {
            Some(l) => {
                h.write_u8(1);
                h.write_str(l);
            }
            None => h.write_u8(0),
        }
        // The declared effects are *not* part of `sig.source`, but effect
        // summaries (and verdicts built on them) are seeded from the
        // claims, so an effect-only annotation change must move every
        // dependent Merkle hash.
        h.write_u8(match sig.term {
            rdl_types::TermEffect::Terminates => 0,
            rdl_types::TermEffect::BlockDep => 1,
            rdl_types::TermEffect::MayDiverge => 2,
        });
        h.write_u8(match sig.purity {
            rdl_types::PurityEffect::Pure => 0,
            rdl_types::PurityEffect::Impure => 1,
        });
        let idx = self.nodes.len();
        self.nodes.push(Node { base: h.finish(), deps: Vec::new() });
        self.annotations.insert(ann_key(key), idx);
        idx
    }

    fn add_method(&mut self, id: MethodId, base: u64) {
        let idx = self.nodes.len();
        self.nodes.push(Node { base, deps: Vec::new() });
        self.methods.insert(id, idx);
    }
}

fn ann_key(key: &(String, MethodKind, String)) -> (String, u8, String) {
    (key.0.clone(), kind_tag(key.1), key.2.clone())
}

fn kind_tag(kind: MethodKind) -> u8 {
    match kind {
        MethodKind::Instance => 0,
        MethodKind::Singleton => 1,
    }
}

/// The names a method body may invoke: every `Call` name plus every bare
/// `Ident` (which in Ruby can be a zero-argument self-call).  Callers filter
/// against the set of names that actually resolve, so the over-approximation
/// only ever adds edges for name collisions — sound, at worst one spurious
/// re-check.
fn called_names(def: &MethodDef) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut visit = |e: &Expr| match &e.kind {
        ExprKind::Call { name, .. } => {
            out.insert(name.clone());
        }
        ExprKind::Ident(name) => {
            out.insert(name.clone());
        }
        ExprKind::OpAssign { op, .. } => {
            out.insert(op.clone());
        }
        _ => {}
    };
    for e in &def.body {
        e.walk(&mut visit);
    }
    for p in &def.params {
        if let Some(d) = &p.default {
            d.walk(&mut visit);
        }
    }
    out
}

/// Calls `f` on every `«...»` comp expression nested anywhere in the
/// signature (params, return, block signature).
fn for_each_comp_expr(sig: &MethodSig, f: &mut impl FnMut(&Expr)) {
    for p in &sig.params {
        for_each_comp_in_type(&p.ty, f);
    }
    for_each_comp_in_type(&sig.ret, f);
    if let Some(block) = &sig.block {
        for_each_comp_expr(block, f);
    }
}

fn for_each_comp_in_type(te: &TypeExpr, f: &mut impl FnMut(&Expr)) {
    match te {
        TypeExpr::Comp(spec) => {
            f(&spec.expr);
            for_each_comp_in_type(&spec.bound, f);
        }
        TypeExpr::Generic(_, args) | TypeExpr::Union(args) | TypeExpr::Tuple(args) => {
            for a in args {
                for_each_comp_in_type(a, f);
            }
        }
        TypeExpr::Optional(t) | TypeExpr::Vararg(t) => for_each_comp_in_type(t, f),
        TypeExpr::FiniteHash(entries) => {
            for (_, v) in entries {
                for_each_comp_in_type(v, f);
            }
        }
        TypeExpr::Simple(_) | TypeExpr::ConstString(_) => {}
    }
}

/// Collects every helper name the expression references (as a call or bare
/// identifier), filtered to names registered in `helpers`.
fn collect_helper_refs(expr: &Expr, helpers: &HelperRegistry, out: &mut BTreeSet<String>) {
    expr.walk(&mut |e| match &e.kind {
        ExprKind::Call { name, .. } | ExprKind::Ident(name) if helpers.contains(name) => {
            out.insert(name.clone());
        }
        _ => {}
    });
}

/// The semantic hash of one comp-type expression *including* the bodies of
/// every helper it transitively references.  This is the `semantic` field of
/// [`crate::cache::CacheKey`]: a cached comp-type evaluation is only valid
/// while the expression and its helper closure are unchanged.
pub fn comp_semantic_hash(expr: &Expr, helpers: &HelperRegistry) -> u64 {
    let mut todo: Vec<String> = Vec::new();
    let mut seen = BTreeSet::new();
    collect_helper_refs(expr, helpers, &mut seen);
    todo.extend(seen.iter().cloned());
    // Chase helper → helper references to a fixpoint.
    while let Some(name) = todo.pop() {
        if let Some(def) = helpers.ruby_defs().iter().find(|(n, _)| *n == name).map(|(_, d)| *d) {
            let mut refs = BTreeSet::new();
            collect_helper_refs_in_def(def, helpers, &mut refs);
            for r in refs {
                if seen.insert(r.clone()) {
                    todo.push(r);
                }
            }
        }
    }
    let mut h = SemHasher::new();
    h.write_str("comp-expr");
    h.write_u64(ruby_syntax::expr_hash(expr));
    h.write_usize(seen.len());
    for name in &seen {
        h.write_str(name);
        let body = helpers
            .ruby_defs()
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| method_hash(d))
            .unwrap_or(u64::from(NATIVE_HELPER_REVISION));
        h.write_u64(body);
    }
    h.finish()
}

fn collect_helper_refs_in_def(
    def: &MethodDef,
    helpers: &HelperRegistry,
    out: &mut BTreeSet<String>,
) {
    for e in &def.body {
        collect_helper_refs(e, helpers, out);
    }
}

/// Digest of the checking environment *excluding helper bodies*: the class
/// hierarchy and every method / ivar / gvar annotation.  A persisted check
/// cache is only replayable against an environment with the same hash;
/// helper edits are tracked at method granularity by [`DepGraph`] instead.
pub fn env_hash(env: &CompRdl) -> u64 {
    let mut h = SemHasher::new();
    h.write_str("env");
    let class_names: Vec<&str> = env.classes.names().collect();
    h.write_usize(class_names.len());
    for name in &class_names {
        h.write_str(name);
        let ancestors = env.classes.ancestors(name);
        h.write_usize(ancestors.len());
        for a in &ancestors {
            h.write_str(a);
        }
        h.write_bool(env.classes.is_model(name));
    }
    let mut annots: Vec<(&(String, MethodKind, String), &MethodSig)> =
        env.annotations.iter().collect();
    annots.sort_by_key(|(k, _)| (k.0.clone(), kind_tag(k.1), k.2.clone()));
    h.write_usize(annots.len());
    for (key, sig) in annots {
        h.write_str(&key.0);
        h.write_u8(kind_tag(key.1));
        h.write_str(&key.2);
        h.write_str(&sig.source);
        match &sig.typecheck_label {
            Some(l) => {
                h.write_u8(1);
                h.write_str(l);
            }
            None => h.write_u8(0),
        }
        // Declared effects live outside `sig.source`; see `add_annotation`.
        h.write_u8(match sig.term {
            rdl_types::TermEffect::Terminates => 0,
            rdl_types::TermEffect::BlockDep => 1,
            rdl_types::TermEffect::MayDiverge => 2,
        });
        h.write_u8(match sig.purity {
            rdl_types::PurityEffect::Pure => 0,
            rdl_types::PurityEffect::Impure => 1,
        });
    }
    // Ivar/gvar annotations are keyed per class; probe the classes we know.
    // (The table offers no global iterator; classes() covers every declared
    // class, which is where ivars can live.)
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_with_helpers() -> CompRdl {
        let mut env = CompRdl::new();
        env.register_helpers_ruby(
            "def leaf(x)\n  x\nend\ndef mid(x)\n  leaf(x)\nend\ndef top(x)\n  mid(x)\nend\n",
        );
        env.type_sig("Widget", "frob", "(t<:Object) -> «top(targs[0])»", None);
        env.add_class("Widget", "Object");
        env
    }

    fn program() -> Program {
        ruby_syntax::parse_program_strict(
            "def uses_frob(w)\n  w.frob(1)\nend\ndef plain(x)\n  x\nend\ndef calls_plain(x)\n  plain(x)\nend\n",
        )
        .unwrap()
    }

    #[test]
    fn helper_edit_moves_exactly_its_dependents() {
        let env = env_with_helpers();
        let prog = program();
        let g1 = DepGraph::build(&env, &prog);

        // Re-register `leaf` with a different body.
        let mut env2 = env_with_helpers();
        env2.register_helpers_ruby("def leaf(x)\n  x + 0\nend\n");
        let g2 = DepGraph::build(&env2, &prog);

        // `uses_frob` reaches leaf via frob → top → mid → leaf.
        assert_ne!(
            g1.merkle("Object", "uses_frob", false),
            g2.merkle("Object", "uses_frob", false)
        );
        // The others never touch a helper; their hashes must not move.
        assert_eq!(g1.merkle("Object", "plain", false), g2.merkle("Object", "plain", false));
        assert_eq!(
            g1.merkle("Object", "calls_plain", false),
            g2.merkle("Object", "calls_plain", false)
        );
    }

    #[test]
    fn helper_dependents_is_the_transitive_closure() {
        let env = env_with_helpers();
        let g = DepGraph::build(&env, &program());
        let deps = g.helper_dependents("leaf");
        assert_eq!(deps, vec![("Object".to_string(), "uses_frob".to_string(), false)]);
        assert!(g.helper_dependents("no_such_helper").is_empty());
    }

    #[test]
    fn method_edit_invalidates_callers_transitively() {
        let env = env_with_helpers();
        let g1 = DepGraph::build(&env, &program());
        let edited = ruby_syntax::parse_program_strict(
            "def uses_frob(w)\n  w.frob(1)\nend\ndef plain(x)\n  x + 1\nend\ndef calls_plain(x)\n  plain(x)\nend\n",
        )
        .unwrap();
        let g2 = DepGraph::build(&env, &edited);
        assert_ne!(g1.merkle("Object", "plain", false), g2.merkle("Object", "plain", false));
        assert_ne!(
            g1.merkle("Object", "calls_plain", false),
            g2.merkle("Object", "calls_plain", false),
            "caller must be invalidated with its callee"
        );
        assert_eq!(
            g1.merkle("Object", "uses_frob", false),
            g2.merkle("Object", "uses_frob", false),
            "unrelated method must keep its hash"
        );
    }

    #[test]
    fn layout_edits_do_not_move_merkles() {
        let env = env_with_helpers();
        let g1 = DepGraph::build(&env, &program());
        let noisy = ruby_syntax::parse_program_strict(
            "# comment\n\ndef uses_frob(w)\n  w.frob(1)   # trailing\nend\n\n\ndef plain(x)\n  x\nend\ndef calls_plain(x)\n  plain(x)\nend\n",
        )
        .unwrap();
        let g2 = DepGraph::build(&env, &noisy);
        assert_eq!(g1.method_merkles(), g2.method_merkles());
    }

    #[test]
    fn comp_semantic_hash_tracks_helper_closure() {
        let env = env_with_helpers();
        let expr = ruby_syntax::parse_expr("top(targs[0])").unwrap();
        let h1 = comp_semantic_hash(&expr, &env.helpers);

        let mut env2 = env_with_helpers();
        env2.register_helpers_ruby("def leaf(x)\n  x + 0\nend\n");
        let h2 = comp_semantic_hash(&expr, &env2.helpers);
        assert_ne!(h1, h2, "transitive helper edit must move the comp hash");

        // An unrelated helper does not.
        let mut env3 = env_with_helpers();
        env3.register_helpers_ruby("def unrelated(x)\n  x\nend\n");
        let h3 = comp_semantic_hash(&expr, &env3.helpers);
        assert_eq!(h1, h3);
    }

    #[test]
    fn env_hash_tracks_annotations_not_helpers() {
        let e1 = env_with_helpers();
        let mut e2 = env_with_helpers();
        e2.register_helpers_ruby("def leaf(x)\n  x + 0\nend\n");
        assert_eq!(env_hash(&e1), env_hash(&e2), "helper bodies are graph-tracked, not env-wide");

        let mut e3 = env_with_helpers();
        e3.type_sig("Widget", "other", "(Integer) -> Integer", None);
        assert_ne!(env_hash(&e1), env_hash(&e3));
    }
}
