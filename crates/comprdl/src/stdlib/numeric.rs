//! Comp-type annotations for `Integer` and `Float` (paper Table 1: 108 and
//! 98 methods).
//!
//! These lift arithmetic to the type level when the operands have singleton
//! types, effectively performing constant folding during type checking
//! (paper §2.4 "Constant Folding"); in the common non-singleton case they
//! fall back to the usual numeric types.

use crate::env::CompRdl;
use rdl_types::{PurityEffect, TermEffect};

/// Shared arithmetic / comparison annotations for both numeric classes.
const ARITH: &[(&str, &str)] = &[
    ("+", "(t<:Numeric) -> «fold(tself, t, :+)»"),
    ("-", "(t<:Numeric) -> «fold(tself, t, :-)»"),
    ("*", "(t<:Numeric) -> «fold(tself, t, :*)»"),
    ("/", "(t<:Numeric) -> «fold(tself, t, :/)»"),
    ("%", "(t<:Numeric) -> «fold(tself, t, :%)»"),
    ("**", "(t<:Numeric) -> «fold(tself, t, :**)»"),
    ("modulo", "(t<:Numeric) -> «fold(tself, t, :%)»"),
    ("divmod", "(t<:Numeric) -> Array<Numeric>"),
    ("fdiv", "(t<:Numeric) -> Float"),
    ("<", "(t<:Numeric) -> «fold_cmp(tself, t, :<)»"),
    (">", "(t<:Numeric) -> «fold_cmp(tself, t, :>)»"),
    ("<=", "(t<:Numeric) -> «fold_cmp(tself, t, :<=)»"),
    (">=", "(t<:Numeric) -> «fold_cmp(tself, t, :>=)»"),
    ("==", "(t<:Object) -> «fold_cmp(tself, t, :==)»"),
    ("!=", "(t<:Object) -> %bool"),
    ("<=>", "(t<:Numeric) -> Integer or nil"),
    ("eql?", "(t<:Object) -> %bool"),
    ("equal?", "(t<:Object) -> %bool"),
    ("coerce", "(t<:Numeric) -> Array<Numeric>"),
    ("abs", "() -> «self_type(tself)»"),
    ("magnitude", "() -> «self_type(tself)»"),
    ("abs2", "() -> «fold(tself, tself, :*)»"),
    ("zero?", "() -> «fold_cmp(tself, Singleton.new(0), :==)»"),
    ("positive?", "() -> «fold_cmp(tself, Singleton.new(0), :>)»"),
    ("negative?", "() -> «fold_cmp(tself, Singleton.new(0), :<)»"),
    ("nonzero?", "() -> «maybe(self_type(tself))»"),
    ("finite?", "() -> %bool"),
    ("infinite?", "() -> Integer or nil"),
    ("nan?", "() -> %bool"),
    ("to_i", "() -> Integer"),
    ("to_int", "() -> Integer"),
    ("to_f", "() -> Float"),
    ("to_r", "() -> Object"),
    ("to_c", "() -> Object"),
    ("to_s", "() -> String"),
    ("inspect", "() -> String"),
    ("hash", "() -> Integer"),
    ("floor", "(?Integer) -> Integer"),
    ("ceil", "(?Integer) -> Integer"),
    ("round", "(?Integer) -> Integer"),
    ("truncate", "(?Integer) -> Integer"),
    ("divide_by?", "(t<:Numeric) -> %bool"),
    ("between?", "(Numeric, Numeric) -> %bool"),
    ("clamp", "(Numeric, Numeric) -> «self_type(tself)»"),
    ("step", "(Numeric, ?Numeric) { (Numeric) -> Object } -> «self_type(tself)»"),
    ("min", "(t<:Numeric) -> Numeric"),
    ("max", "(t<:Numeric) -> Numeric"),
    ("integer?", "() -> %bool"),
    ("real?", "() -> %bool"),
    ("real", "() -> «self_type(tself)»"),
    ("imaginary", "() -> Integer"),
    ("numerator", "() -> Integer"),
    ("denominator", "() -> Integer"),
    ("quo", "(t<:Numeric) -> Numeric"),
    ("remainder", "(t<:Numeric) -> «self_type(tself)»"),
    ("frozen?", "() -> %bool"),
    ("freeze", "() -> «self_type(tself)»"),
    ("dup", "() -> «self_type(tself)»"),
    ("clone", "() -> «self_type(tself)»"),
    ("class", "() -> Class"),
    ("nil?", "() -> false"),
    ("singleton_class", "() -> Class"),
    ("tap", "() { (Numeric) -> Object } -> «self_type(tself)»"),
    ("then", "() { (Numeric) -> Object } -> Object"),
    ("instance_of?", "(t<:Object) -> %bool"),
    ("is_a?", "(t<:Object) -> %bool"),
    ("kind_of?", "(t<:Object) -> %bool"),
    ("respond_to?", "(t<:Object) -> %bool"),
    ("send", "(t<:Object, *Object) -> Object"),
    ("method", "(t<:Object) -> Object"),
    ("methods", "() -> Array<Symbol>"),
    ("display", "() -> nil"),
];

/// Integer-only annotations.
const INTEGER_ONLY: &[(&str, &str)] = &[
    ("succ", "() -> «fold(tself, Singleton.new(1), :+)»"),
    ("next", "() -> «fold(tself, Singleton.new(1), :+)»"),
    ("pred", "() -> «fold(tself, Singleton.new(1), :-)»"),
    ("times", "() { (Integer) -> Object } -> Integer"),
    ("upto", "(Integer) { (Integer) -> Object } -> Integer"),
    ("downto", "(Integer) { (Integer) -> Object } -> Integer"),
    ("even?", "() -> %bool"),
    ("odd?", "() -> %bool"),
    ("ord", "() -> «self_type(tself)»"),
    ("chr", "() -> String"),
    ("digits", "(?Integer) -> Array<Integer>"),
    ("bit_length", "() -> Integer"),
    ("gcd", "(Integer) -> Integer"),
    ("lcm", "(Integer) -> Integer"),
    ("gcdlcm", "(Integer) -> Array<Integer>"),
    ("pow", "(t<:Numeric, ?Integer) -> «fold(tself, t, :**)»"),
    ("div", "(t<:Numeric) -> Integer"),
    ("&", "(Integer) -> Integer"),
    ("|", "(Integer) -> Integer"),
    ("^", "(Integer) -> Integer"),
    ("~", "() -> Integer"),
    ("<<", "(Integer) -> Integer"),
    (">>", "(Integer) -> Integer"),
    ("[]", "(Integer) -> Integer"),
    ("allbits?", "(Integer) -> %bool"),
    ("anybits?", "(Integer) -> %bool"),
    ("nobits?", "(Integer) -> %bool"),
    ("to_s2", "(?Integer) -> String"),
    ("size", "() -> Integer"),
    ("integer_sqrt", "() -> Integer"),
    ("rationalize", "(?Float) -> Object"),
    ("lcm_with?", "(Integer) -> %bool"),
    ("prime_like?", "() -> %bool"),
];

/// Float-only annotations.
const FLOAT_ONLY: &[(&str, &str)] = &[
    ("nan_or_zero?", "() -> %bool"),
    ("prev_float", "() -> Float"),
    ("next_float", "() -> Float"),
    ("rationalize", "(?Float) -> Object"),
    ("angle", "() -> Numeric"),
    ("arg", "() -> Numeric"),
    ("phase", "() -> Numeric"),
    ("quo_float", "(t<:Numeric) -> Float"),
    ("floor_digits", "(Integer) -> Float"),
    ("ceil_digits", "(Integer) -> Float"),
    ("round_digits", "(Integer) -> Float"),
    ("truncate_digits", "(Integer) -> Float"),
    ("to_big", "() -> Float"),
    ("exponent", "() -> Integer"),
    ("fraction", "() -> Float"),
    ("eps_eq?", "(Float) -> %bool"),
    ("signbit?", "() -> %bool"),
    ("copysign", "(Float) -> Float"),
    ("ldexp", "(Integer) -> Float"),
    ("frexp", "() -> Array<Numeric>"),
    ("hypot", "(Float) -> Float"),
    ("sqrt_approx", "() -> Float"),
    ("cbrt_approx", "() -> Float"),
];

const BLOCKDEP: &[&str] = &["times", "upto", "downto", "step", "tap", "then"];

/// Registers the Integer and Float annotation sets into `env`.
pub fn register(env: &mut CompRdl) {
    for (class, extra) in [("Integer", INTEGER_ONLY), ("Float", FLOAT_ONLY)] {
        for (name, sig) in ARITH.iter().chain(extra.iter()) {
            let term =
                if BLOCKDEP.contains(name) { TermEffect::BlockDep } else { TermEffect::Terminates };
            env.type_sig_with_effects(class, name, sig, term, PurityEffect::Pure);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::CompRdl;

    #[test]
    fn registers_both_numeric_classes() {
        let mut env = CompRdl::new();
        crate::stdlib::register_native_helpers(&mut env);
        env.register_helpers_ruby(crate::stdlib::RUBY_HELPERS);
        register(&mut env);
        assert!(env.annotation_count("Integer") >= 100);
        assert!(env.annotation_count("Float") >= 90);
    }

    #[test]
    fn no_duplicate_method_names() {
        for extra in [INTEGER_ONLY, FLOAT_ONLY] {
            let mut names: Vec<&str> = ARITH.iter().chain(extra.iter()).map(|(n, _)| *n).collect();
            let before = names.len();
            names.sort_unstable();
            names.dedup();
            assert_eq!(before, names.len(), "duplicate numeric annotations");
        }
    }
}
