//! Comp-type annotations for `Hash` (paper Table 1: 48 methods).
//!
//! Finite hash receivers indexed with singleton keys keep per-key precision
//! (the `Hash#[]` example of §2.2); other receivers fall back to the
//! `Hash<K, V>` key/value types.

use crate::env::CompRdl;
use rdl_types::{PurityEffect, TermEffect};

/// `(name, signature)` pairs for the Hash annotation set.
pub const METHODS: &[(&str, &str)] = &[
    ("[]", "(t<:Object) -> «idx(tself, t)» / v"),
    ("[]=", "(t<:Object, u<:Object) -> «u»"),
    ("store", "(t<:Object, u<:Object) -> «u»"),
    ("fetch", "(t<:Object, ?Object) -> «idx(tself, t)» / v"),
    ("dig", "(*Object) -> «vals(tself)» / v"),
    ("key?", "(t<:Object) -> %bool"),
    ("has_key?", "(t<:Object) -> %bool"),
    ("include?", "(t<:Object) -> %bool"),
    ("member?", "(t<:Object) -> %bool"),
    ("value?", "(t<:Object) -> %bool"),
    ("has_value?", "(t<:Object) -> %bool"),
    ("keys", "() -> «hash_keys(tself)»"),
    ("values", "() -> «hash_values(tself)»"),
    ("values_at", "(*Object) -> «hash_values(tself)»"),
    ("length", "() -> Integer"),
    ("size", "() -> Integer"),
    ("count", "(?Object) -> Integer"),
    ("empty?", "() -> %bool"),
    ("any?", "() { (k, v) -> %bool } -> %bool"),
    ("all?", "() { (k, v) -> %bool } -> %bool"),
    ("none?", "() { (k, v) -> %bool } -> %bool"),
    ("each", "() { (k, v) -> Object } -> «self_type(tself)»"),
    ("each_pair", "() { (k, v) -> Object } -> «self_type(tself)»"),
    ("each_key", "() { (k) -> Object } -> «self_type(tself)»"),
    ("each_value", "() { (v) -> Object } -> «self_type(tself)»"),
    ("map", "() { (k, v) -> b } -> Array<b>"),
    ("collect", "() { (k, v) -> b } -> Array<b>"),
    ("flat_map", "() { (k, v) -> b } -> Array<Object>"),
    ("select", "() { (k, v) -> %bool } -> «hsh(tself)»"),
    ("filter", "() { (k, v) -> %bool } -> «hsh(tself)»"),
    ("reject", "() { (k, v) -> %bool } -> «hsh(tself)»"),
    ("find", "() { (k, v) -> %bool } -> Array<Object> or nil"),
    ("detect", "() { (k, v) -> %bool } -> Array<Object> or nil"),
    ("reduce", "(?Object) { (Object, Object) -> Object } -> Object"),
    ("inject", "(?Object) { (Object, Object) -> Object } -> Object"),
    ("merge", "(t<:Hash) -> «merged_hash(tself, t)»"),
    ("merge!", "(t<:Hash) -> «merged_hash(tself, t)»"),
    ("update", "(t<:Hash) -> «merged_hash(tself, t)»"),
    ("delete", "(t<:Object) -> «maybe(idx(tself, t))»"),
    ("delete_if", "() { (k, v) -> %bool } -> «hsh(tself)»"),
    ("keep_if", "() { (k, v) -> %bool } -> «hsh(tself)»"),
    ("clear", "() -> «self_type(tself)»"),
    ("to_a", "() -> Array<Array<Object>>"),
    ("to_h", "() -> «self_type(tself)»"),
    ("to_s", "() -> String"),
    ("inspect", "() -> String"),
    ("invert", "() -> Hash<v, k>"),
    ("key", "(t<:Object) -> «maybe(keyt(tself))»"),
    ("freeze", "() -> «self_type(tself)»"),
    ("dup", "() -> «self_type(tself)»"),
    ("sort_by", "() { (k, v) -> b } -> Array<Array<Object>>"),
    ("group_by", "() { (k, v) -> b } -> Hash<Object, Array<Object>>"),
    ("transform_values", "() { (v) -> b } -> Hash<k, Object>"),
    ("transform_keys", "() { (k) -> b } -> Hash<Object, v>"),
    ("slice", "(*Object) -> «hsh(tself)»"),
    ("except", "(*Object) -> «hsh(tself)»"),
    ("fetch_values", "(*Object) -> «hash_values(tself)»"),
    ("default", "() -> Object"),
    ("compact", "() -> «hsh(tself)»"),
];

const BLOCKDEP: &[&str] = &[
    "any?",
    "all?",
    "none?",
    "each",
    "each_pair",
    "each_key",
    "each_value",
    "map",
    "collect",
    "flat_map",
    "select",
    "filter",
    "reject",
    "find",
    "detect",
    "reduce",
    "inject",
    "delete_if",
    "keep_if",
    "sort_by",
    "group_by",
    "transform_values",
    "transform_keys",
];

const IMPURE: &[&str] =
    &["[]=", "store", "merge!", "update", "delete", "delete_if", "keep_if", "clear"];

/// Registers the Hash annotation set into `env`.
pub fn register(env: &mut CompRdl) {
    for (name, sig) in METHODS {
        let term =
            if BLOCKDEP.contains(name) { TermEffect::BlockDep } else { TermEffect::Terminates };
        let purity = if IMPURE.contains(name) { PurityEffect::Impure } else { PurityEffect::Pure };
        env.type_sig_with_effects("Hash", name, sig, term, purity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::CompRdl;

    #[test]
    fn registers_the_full_method_list() {
        let mut env = CompRdl::new();
        crate::stdlib::register_native_helpers(&mut env);
        env.register_helpers_ruby(crate::stdlib::RUBY_HELPERS);
        register(&mut env);
        assert!(env.annotation_count("Hash") >= 48);
        assert!(env.comp_type_count("Hash") >= 20);
    }

    #[test]
    fn no_duplicate_method_names() {
        let mut names: Vec<&str> = METHODS.iter().map(|(n, _)| *n).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate Hash annotations");
    }
}
