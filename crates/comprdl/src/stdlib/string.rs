//! Comp-type annotations for `String` (paper Table 1: 114 methods).
//!
//! Const-string receivers (string literals that are never written to, §2.2)
//! behave like singletons: pure operations such as `upcase` or `+` compute
//! the resulting const string at the type level, while mutating methods fall
//! back to plain `String` (and trigger a weak update at the checker level).

use crate::env::CompRdl;
use rdl_types::{PurityEffect, TermEffect};

/// `(name, signature)` pairs for the String annotation set.
pub const METHODS: &[(&str, &str)] = &[
    ("+", "(t<:String) -> «str_concat(tself, t)»"),
    ("concat", "(t<:String) -> String"),
    ("<<", "(t<:Object) -> String"),
    ("*", "(Integer) -> String"),
    ("%", "(t<:Object) -> String"),
    ("==", "(t<:Object) -> %bool"),
    ("eql?", "(t<:Object) -> %bool"),
    ("equal?", "(t<:Object) -> %bool"),
    ("<=>", "(t<:String) -> Integer or nil"),
    ("<", "(t<:String) -> %bool"),
    (">", "(t<:String) -> %bool"),
    ("<=", "(t<:String) -> %bool"),
    (">=", "(t<:String) -> %bool"),
    ("=~", "(t<:Object) -> Integer or nil"),
    ("[]", "(t<:Object, ?Integer) -> String or nil"),
    ("[]=", "(t<:Object, u<:String) -> «u»"),
    ("slice", "(t<:Object, ?Integer) -> String or nil"),
    ("slice!", "(t<:Object, ?Integer) -> String or nil"),
    ("length", "() -> «str_len(tself)»"),
    ("size", "() -> «str_len(tself)»"),
    ("bytesize", "() -> Integer"),
    ("empty?", "() -> %bool"),
    ("upcase", "() -> «str_op(tself, :upcase)»"),
    ("upcase!", "() -> String or nil"),
    ("downcase", "() -> «str_op(tself, :downcase)»"),
    ("downcase!", "() -> String or nil"),
    ("capitalize", "() -> «str_op(tself, :capitalize)»"),
    ("capitalize!", "() -> String or nil"),
    ("swapcase", "() -> String"),
    ("swapcase!", "() -> String or nil"),
    ("strip", "() -> «str_op(tself, :strip)»"),
    ("strip!", "() -> String or nil"),
    ("lstrip", "() -> String"),
    ("lstrip!", "() -> String or nil"),
    ("rstrip", "() -> String"),
    ("rstrip!", "() -> String or nil"),
    ("chomp", "() -> «str_op(tself, :chomp)»"),
    ("chomp!", "() -> String or nil"),
    ("chop", "() -> String"),
    ("chop!", "() -> String or nil"),
    ("chr", "() -> String"),
    ("reverse", "() -> «str_op(tself, :reverse)»"),
    ("reverse!", "() -> String"),
    ("sub", "(t<:Object, u<:String) -> String"),
    ("sub!", "(t<:Object, u<:String) -> String or nil"),
    ("gsub", "(t<:Object, u<:String) -> String"),
    ("gsub!", "(t<:Object, u<:String) -> String or nil"),
    ("tr", "(String, String) -> String"),
    ("tr!", "(String, String) -> String or nil"),
    ("tr_s", "(String, String) -> String"),
    ("delete", "(String) -> String"),
    ("delete!", "(String) -> String or nil"),
    ("squeeze", "(?String) -> String"),
    ("squeeze!", "(?String) -> String or nil"),
    ("replace", "(t<:String) -> «t»"),
    ("insert", "(Integer, String) -> String"),
    ("prepend", "(*String) -> String"),
    ("include?", "(t<:String) -> %bool"),
    ("start_with?", "(*String) -> %bool"),
    ("end_with?", "(*String) -> %bool"),
    ("match", "(t<:Object) -> Object or nil"),
    ("match?", "(t<:Object) -> %bool"),
    ("index", "(t<:Object, ?Integer) -> Integer or nil"),
    ("rindex", "(t<:Object, ?Integer) -> Integer or nil"),
    ("count", "(String) -> Integer"),
    ("split", "(?Object, ?Integer) -> Array<String>"),
    ("partition", "(t<:Object) -> Array<String>"),
    ("rpartition", "(t<:Object) -> Array<String>"),
    ("chars", "() -> Array<String>"),
    ("bytes", "() -> Array<Integer>"),
    ("lines", "(?String) -> Array<String>"),
    ("each_char", "() { (String) -> Object } -> String"),
    ("each_byte", "() { (Integer) -> Object } -> String"),
    ("each_line", "(?String) { (String) -> Object } -> String"),
    ("scan", "(t<:Object) -> Array<String>"),
    ("ljust", "(Integer, ?String) -> String"),
    ("rjust", "(Integer, ?String) -> String"),
    ("center", "(Integer, ?String) -> String"),
    ("to_s", "() -> «str_op(tself, :to_s)»"),
    ("to_str", "() -> «str_op(tself, :to_str)»"),
    ("to_i", "() -> Integer"),
    ("to_f", "() -> Float"),
    ("to_r", "() -> Object"),
    ("to_c", "() -> Object"),
    ("to_sym", "() -> Symbol"),
    ("intern", "() -> Symbol"),
    ("inspect", "() -> String"),
    ("dump", "() -> String"),
    ("hash", "() -> Integer"),
    ("freeze", "() -> «str_op(tself, :freeze)»"),
    ("frozen?", "() -> %bool"),
    ("dup", "() -> «str_op(tself, :dup)»"),
    ("clone", "() -> «str_op(tself, :dup)»"),
    ("succ", "() -> String"),
    ("next", "() -> String"),
    ("ord", "() -> Integer"),
    ("hex", "() -> Integer"),
    ("oct", "() -> Integer"),
    ("sum", "() -> Integer"),
    ("crypt", "(String) -> String"),
    ("unpack", "(String) -> Array<Object>"),
    ("unpack1", "(String) -> Object"),
    ("encode", "(?String) -> String"),
    ("encoding", "() -> Object"),
    ("force_encoding", "(String) -> String"),
    ("valid_encoding?", "() -> %bool"),
    ("ascii_only?", "() -> %bool"),
    ("unicode_normalize", "() -> String"),
    ("casecmp", "(String) -> Integer or nil"),
    ("casecmp?", "(String) -> %bool"),
    ("between?", "(String, String) -> %bool"),
    ("getbyte", "(Integer) -> Integer or nil"),
    ("setbyte", "(Integer, Integer) -> Integer"),
    ("byteslice", "(Integer, ?Integer) -> String or nil"),
    ("grapheme_clusters", "() -> Array<String>"),
    ("scrub", "(?String) -> String"),
    ("b", "() -> String"),
];

const BLOCKDEP: &[&str] = &["each_char", "each_byte", "each_line"];

const IMPURE: &[&str] = &[
    "<<",
    "concat",
    "[]=",
    "upcase!",
    "downcase!",
    "capitalize!",
    "swapcase!",
    "strip!",
    "lstrip!",
    "rstrip!",
    "chomp!",
    "chop!",
    "reverse!",
    "sub!",
    "gsub!",
    "tr!",
    "delete!",
    "squeeze!",
    "replace",
    "insert",
    "prepend",
    "slice!",
    "force_encoding",
    "setbyte",
    "clear",
];

/// Registers the String annotation set into `env`.
pub fn register(env: &mut CompRdl) {
    for (name, sig) in METHODS {
        let term =
            if BLOCKDEP.contains(name) { TermEffect::BlockDep } else { TermEffect::Terminates };
        let purity = if IMPURE.contains(name) { PurityEffect::Impure } else { PurityEffect::Pure };
        env.type_sig_with_effects("String", name, sig, term, purity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::CompRdl;

    #[test]
    fn registers_the_full_method_list() {
        let mut env = CompRdl::new();
        crate::stdlib::register_native_helpers(&mut env);
        env.register_helpers_ruby(crate::stdlib::RUBY_HELPERS);
        register(&mut env);
        assert!(env.annotation_count("String") >= 110);
    }

    #[test]
    fn no_duplicate_method_names() {
        let mut names: Vec<&str> = METHODS.iter().map(|(n, _)| *n).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate String annotations");
    }
}
