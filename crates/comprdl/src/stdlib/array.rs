//! Comp-type annotations for `Array` (paper Table 1: 114 methods).
//!
//! Tuple receivers keep per-position precision (`first`, `last`, `[]` with a
//! singleton index); other receivers fall back to the element type, exactly
//! as described in §2.2 ("Tuple Types").

use crate::env::CompRdl;
use rdl_types::{PurityEffect, TermEffect};

/// `(name, signature)` pairs for the Array annotation set.
pub const METHODS: &[(&str, &str)] = &[
    ("[]", "(t<:Object) -> «idx(tself, t)» / a"),
    ("at", "(t<:Integer) -> «idx(tself, t)» / a"),
    ("slice", "(t<:Object, ?Integer) -> «maybe(arr(tself))»"),
    ("slice!", "(t<:Object, ?Integer) -> «maybe(arr(tself))»"),
    ("[]=", "(t<:Object, u<:Object) -> «u»"),
    ("first", "() -> «first_elem(tself)» / a"),
    ("last", "() -> «last_elem(tself)» / a"),
    ("fetch", "(t<:Integer) -> «idx(tself, t)» / a"),
    ("dig", "(*Object) -> «elem(tself)»"),
    ("push", "(*Object) -> «self_type(tself)»"),
    ("append", "(*Object) -> «self_type(tself)»"),
    ("<<", "(t<:Object) -> «self_type(tself)»"),
    ("unshift", "(*Object) -> «self_type(tself)»"),
    ("prepend", "(*Object) -> «self_type(tself)»"),
    ("insert", "(Integer, *Object) -> «self_type(tself)»"),
    ("pop", "() -> «maybe(elem(tself))»"),
    ("shift", "() -> «maybe(elem(tself))»"),
    ("delete", "(t<:Object) -> «maybe(t)»"),
    ("delete_at", "(Integer) -> «maybe(elem(tself))»"),
    ("delete_if", "() { (a) -> %bool } -> «arr(tself)»"),
    ("keep_if", "() { (a) -> %bool } -> «arr(tself)»"),
    ("clear", "() -> «self_type(tself)»"),
    ("length", "() -> Integer"),
    ("size", "() -> Integer"),
    ("count", "(?Object) -> Integer"),
    ("empty?", "() -> %bool"),
    ("any?", "() { (a) -> %bool } -> %bool"),
    ("all?", "() { (a) -> %bool } -> %bool"),
    ("none?", "() { (a) -> %bool } -> %bool"),
    ("one?", "() { (a) -> %bool } -> %bool"),
    ("include?", "(t<:Object) -> %bool"),
    ("member?", "(t<:Object) -> %bool"),
    ("index", "(t<:Object) -> Integer or nil"),
    ("find_index", "(t<:Object) -> Integer or nil"),
    ("rindex", "(t<:Object) -> Integer or nil"),
    ("first_n", "(Integer) -> «arr(tself)»"),
    ("take", "(Integer) -> «arr(tself)»"),
    ("take_while", "() { (a) -> %bool } -> «arr(tself)»"),
    ("drop", "(Integer) -> «arr(tself)»"),
    ("drop_while", "() { (a) -> %bool } -> «arr(tself)»"),
    ("each", "() { (a) -> Object } -> «self_type(tself)»"),
    ("each_index", "() { (Integer) -> Object } -> «self_type(tself)»"),
    ("each_with_index", "() { (a, Integer) -> Object } -> «self_type(tself)»"),
    ("each_with_object", "(t<:Object) { (a, Object) -> Object } -> «t»"),
    ("each_slice", "(Integer) { (Array<a>) -> Object } -> «self_type(tself)»"),
    ("each_cons", "(Integer) { (Array<a>) -> Object } -> «self_type(tself)»"),
    ("reverse_each", "() { (a) -> Object } -> «self_type(tself)»"),
    ("map", "() { (a) -> b } -> Array<b>"),
    ("map!", "() { (a) -> b } -> Array<b>"),
    ("collect", "() { (a) -> b } -> Array<b>"),
    ("collect!", "() { (a) -> b } -> Array<b>"),
    ("flat_map", "() { (a) -> b } -> Array<Object>"),
    ("collect_concat", "() { (a) -> b } -> Array<Object>"),
    ("select", "() { (a) -> %bool } -> «arr(tself)»"),
    ("select!", "() { (a) -> %bool } -> «maybe(arr(tself))»"),
    ("filter", "() { (a) -> %bool } -> «arr(tself)»"),
    ("filter_map", "() { (a) -> Object } -> Array<Object>"),
    ("reject", "() { (a) -> %bool } -> «arr(tself)»"),
    ("reject!", "() { (a) -> %bool } -> «maybe(arr(tself))»"),
    ("find", "() { (a) -> %bool } -> «maybe(elem(tself))»"),
    ("detect", "() { (a) -> %bool } -> «maybe(elem(tself))»"),
    ("find_all", "() { (a) -> %bool } -> «arr(tself)»"),
    ("partition", "() { (a) -> %bool } -> Array<Array<a>>"),
    ("group_by", "() { (a) -> b } -> Hash<Object, Array<a>>"),
    ("chunk_while", "() { (a, a) -> %bool } -> Array<Array<a>>"),
    ("reduce", "(?Object) { (Object, a) -> Object } -> Object"),
    ("inject", "(?Object) { (Object, a) -> Object } -> Object"),
    ("sum", "(?Numeric) -> «fold(elem(tself), Singleton.new(0), :+)»"),
    ("min", "() -> «maybe(elem(tself))»"),
    ("max", "() -> «maybe(elem(tself))»"),
    ("min_by", "() { (a) -> b } -> «maybe(elem(tself))»"),
    ("max_by", "() { (a) -> b } -> «maybe(elem(tself))»"),
    ("minmax", "() -> «arr(tself)»"),
    ("sort", "() -> «arr(tself)»"),
    ("sort!", "() -> «arr(tself)»"),
    ("sort_by", "() { (a) -> b } -> «arr(tself)»"),
    ("sort_by!", "() { (a) -> b } -> «arr(tself)»"),
    ("uniq", "() -> «arr(tself)»"),
    ("uniq!", "() -> «maybe(arr(tself))»"),
    ("compact", "() -> «arr(tself)»"),
    ("compact!", "() -> «maybe(arr(tself))»"),
    ("flatten", "(?Integer) -> «flat(tself)»"),
    ("flatten!", "(?Integer) -> «maybe(flat(tself))»"),
    ("reverse", "() -> «arr(tself)»"),
    ("reverse!", "() -> «self_type(tself)»"),
    ("rotate", "(?Integer) -> «arr(tself)»"),
    ("rotate!", "(?Integer) -> «self_type(tself)»"),
    ("shuffle", "() -> «arr(tself)»"),
    ("shuffle!", "() -> «self_type(tself)»"),
    ("sample", "() -> «maybe(elem(tself))»"),
    ("join", "(?String) -> String"),
    ("to_a", "() -> «self_type(tself)»"),
    ("to_ary", "() -> «self_type(tself)»"),
    ("to_h", "() -> Hash<Object, Object>"),
    ("to_s", "() -> String"),
    ("inspect", "() -> String"),
    ("hash", "() -> Integer"),
    ("eql?", "(t<:Object) -> %bool"),
    ("==", "(t<:Object) -> %bool"),
    ("<=>", "(t<:Object) -> Integer or nil"),
    ("frozen?", "() -> %bool"),
    ("freeze", "() -> «self_type(tself)»"),
    ("dup", "() -> «self_type(tself)»"),
    ("clone", "() -> «self_type(tself)»"),
    ("+", "(t<:Array) -> «merged_array(tself, t)»"),
    ("concat", "(t<:Array) -> «merged_array(tself, t)»"),
    ("-", "(t<:Array) -> «arr(tself)»"),
    ("&", "(t<:Array) -> «arr(tself)»"),
    ("|", "(t<:Array) -> «merged_array(tself, t)»"),
    ("*", "(t<:Object) -> «arr(tself)»"),
    ("zip", "(t<:Array) -> «pairs(tself, t)»"),
    ("product", "(t<:Array) -> «pairs(tself, t)»"),
    ("combination", "(Integer) -> Array<Array<a>>"),
    ("permutation", "(?Integer) -> Array<Array<a>>"),
    ("transpose", "() -> Array<Array<Object>>"),
    ("assoc", "(t<:Object) -> «maybe(elem(tself))»"),
    ("rassoc", "(t<:Object) -> «maybe(elem(tself))»"),
    ("values_at", "(*Integer) -> «arr(tself)»"),
    ("fill", "(t<:Object) -> «self_type(tself)»"),
    ("replace", "(t<:Array) -> «t»"),
    ("pack", "(String) -> String"),
    ("tally", "() -> Hash<a, Integer>"),
    ("bsearch", "() { (a) -> %bool } -> «maybe(elem(tself))»"),
    ("cycle", "(Integer) { (a) -> Object } -> nil"),
];

/// Additional helper used only by the Array annotations.
const ARRAY_HELPERS: &str = r#"
# Array#+ / Array#| element union.
def merged_array(t, u)
  Generic.new(Array, Union.new(elem(t), elem(u)))
end
"#;

/// Iterator methods whose termination depends on their block (`:blockdep`).
const BLOCKDEP: &[&str] = &[
    "map",
    "map!",
    "collect",
    "collect!",
    "each",
    "each_index",
    "each_with_index",
    "each_with_object",
    "each_slice",
    "each_cons",
    "reverse_each",
    "select",
    "select!",
    "filter",
    "filter_map",
    "reject",
    "reject!",
    "find",
    "detect",
    "find_all",
    "partition",
    "group_by",
    "chunk_while",
    "reduce",
    "inject",
    "min_by",
    "max_by",
    "sort_by",
    "sort_by!",
    "take_while",
    "drop_while",
    "delete_if",
    "keep_if",
    "flat_map",
    "collect_concat",
    "bsearch",
    "cycle",
    "all?",
    "any?",
    "none?",
    "one?",
];

/// Methods that mutate the receiver (impure).
const IMPURE: &[&str] = &[
    "[]=",
    "push",
    "append",
    "<<",
    "unshift",
    "prepend",
    "insert",
    "pop",
    "shift",
    "delete",
    "delete_at",
    "delete_if",
    "keep_if",
    "clear",
    "map!",
    "collect!",
    "select!",
    "reject!",
    "sort!",
    "sort_by!",
    "uniq!",
    "compact!",
    "flatten!",
    "reverse!",
    "rotate!",
    "shuffle!",
    "concat",
    "fill",
    "replace",
    "slice!",
];

/// Registers the Array annotation set into `env`.
pub fn register(env: &mut CompRdl) {
    env.register_helpers_ruby(ARRAY_HELPERS);
    for (name, sig) in METHODS {
        let term =
            if BLOCKDEP.contains(name) { TermEffect::BlockDep } else { TermEffect::Terminates };
        let purity = if IMPURE.contains(name) { PurityEffect::Impure } else { PurityEffect::Pure };
        env.type_sig_with_effects("Array", name, sig, term, purity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::CompRdl;

    #[test]
    fn registers_the_full_method_list() {
        let mut env = CompRdl::new();
        crate::stdlib::register_native_helpers(&mut env);
        env.register_helpers_ruby(crate::stdlib::RUBY_HELPERS);
        register(&mut env);
        assert!(env.annotation_count("Array") >= 110);
        assert!(env.comp_type_count("Array") >= 70);
    }

    #[test]
    fn no_duplicate_method_names() {
        let mut names: Vec<&str> = METHODS.iter().map(|(n, _)| *n).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate Array annotations");
    }
}
