//! Comp-type annotations for the Ruby core library (paper Table 1).
//!
//! The paper writes comp types for the `Array`, `Hash`, `String`, `Integer`
//! and `Float` core classes (which are implemented in C and therefore never
//! type checked themselves — their calls are dynamically checked instead).
//! As in the paper, most annotations share a small set of *helper methods*:
//! a few native helpers (constant folding, const-string operations) plus a
//! set written in the Ruby subset and evaluated by the type-level
//! interpreter.

pub mod array;
pub mod hash;
pub mod numeric;
pub mod string;

use crate::env::CompRdl;
use crate::tlc::{TlcError, TlcValue};
use rdl_types::{SingVal, Type};

/// Shared type-level helper methods written in the Ruby subset.  These are
/// the analogue of the paper's 83 helper methods and are counted in Table 1.
pub const RUBY_HELPERS: &str = r#"
# The element type of an array-like receiver: the union of a tuple's
# element types, the parameter of Array<T>, or Object as a fallback.
def elem(t)
  if t.is_a?(Tuple)
    t.elem_type
  elsif t.is_a?(Generic)
    t.param
  else
    Nominal.new(Object)
  end
end

# An Array<T> with the receiver's element type.
def arr(t)
  Generic.new(Array, elem(t))
end

# The value type of a hash-like receiver.
def vals(t)
  t.value_type
end

# The key type of a hash-like receiver.
def keyt(t)
  t.key_type
end

# A Hash<K, V> with the receiver's key and value types.
def hsh(t)
  Generic.new(Hash, keyt(t), vals(t))
end

# Precise indexing: a finite hash or tuple indexed by a singleton key yields
# the exact component type; otherwise fall back to the value/element type.
def idx(t, k)
  if t.is_a?(FiniteHash) && k.is_a?(Singleton)
    t[k.val]
  elsif t.is_a?(Tuple) && k.is_a?(Singleton)
    t[k.val]
  elsif t.is_a?(FiniteHash)
    vals(t)
  elsif t.is_a?(Tuple)
    elem(t)
  elsif t.is_a?(Generic)
    if t.base == Hash
      vals(t)
    else
      elem(t)
    end
  else
    Nominal.new(Object)
  end
end

# The type of the first element of a tuple, or the element type otherwise.
def first_elem(t)
  if t.is_a?(Tuple)
    if t.size == 0
      Singleton.new(nil)
    else
      t.elems.first
    end
  else
    Union.new(elem(t), Singleton.new(nil))
  end
end

# The type of the last element of a tuple, or the element type otherwise.
def last_elem(t)
  if t.is_a?(Tuple)
    if t.size == 0
      Singleton.new(nil)
    else
      t.elems.last
    end
  else
    Union.new(elem(t), Singleton.new(nil))
  end
end

# The receiver's own type (identity); used by methods returning self.
def self_type(t)
  t
end

# An optional (nilable) version of a type.
def maybe(t)
  Union.new(t, Singleton.new(nil))
end

# An Array of the receiver's key type / value type (Hash#keys / Hash#values).
def hash_keys(t)
  Generic.new(Array, keyt(t))
end

def hash_values(t)
  Generic.new(Array, vals(t))
end

# Merge two hash-like types, as Hash#merge does (used also by Table#joins).
def merged_hash(t, u)
  if t.is_a?(FiniteHash) && u.is_a?(FiniteHash)
    t.merge(u.elts)
  else
    Generic.new(Hash, keyt(t), Union.new(vals(t), vals(u)))
  end
end

# Array#flatten: flattening loses per-position precision.
def flat(t)
  Generic.new(Array, Nominal.new(Object))
end

# Array#zip / Array#product element pairs.
def pairs(t, u)
  Generic.new(Array, Generic.new(Array, Union.new(elem(t), elem(u))))
end
"#;

/// Registers the native helpers (constant folding and const-string
/// operations) into `env`.
pub fn register_native_helpers(env: &mut CompRdl) {
    // Numeric constant folding (§2.4 "Constant Folding"): when both operand
    // types are integer/float singletons, compute the singleton result.
    env.register_helper_native("fold", |_ctx, args| {
        let get = |v: &TlcValue| -> Option<f64> {
            match v {
                TlcValue::Type(Type::Singleton(SingVal::Int(i))) => Some(*i as f64),
                TlcValue::Type(Type::Singleton(SingVal::FloatBits(b))) => Some(f64::from_bits(*b)),
                _ => None,
            }
        };
        let is_float = |v: &TlcValue| {
            matches!(v, TlcValue::Type(Type::Singleton(SingVal::FloatBits(_))))
                || matches!(v, TlcValue::Type(Type::Nominal(n)) if n == "Float")
        };
        let is_int = |v: &TlcValue| {
            matches!(v, TlcValue::Type(Type::Singleton(SingVal::Int(_))))
                || matches!(v, TlcValue::Type(Type::Nominal(n)) if n == "Integer")
        };
        let (a, b, op) = (args.first(), args.get(1), args.get(2));
        let op = match op {
            Some(TlcValue::Sym(s)) => s.clone(),
            _ => return Err(TlcError::new("fold requires an operator symbol")),
        };
        let av = a.unwrap_or(&TlcValue::Nil);
        let bv = b.unwrap_or(&TlcValue::Nil);
        let fallback = if is_float(av) || is_float(bv) {
            TlcValue::Type(Type::nominal("Float"))
        } else if is_int(av) && is_int(bv) {
            TlcValue::Type(Type::nominal("Integer"))
        } else {
            TlcValue::Type(Type::union([Type::nominal("Integer"), Type::nominal("Float")]))
        };
        let (Some(x), Some(y)) = (a.and_then(get), b.and_then(get)) else {
            return Ok(fallback);
        };
        let result = match op.as_str() {
            "+" => x + y,
            "-" => x - y,
            "*" => x * y,
            "/" => {
                if y == 0.0 {
                    return Ok(fallback);
                }
                x / y
            }
            "%" => {
                if y == 0.0 {
                    return Ok(fallback);
                }
                x % y
            }
            "**" => x.powf(y),
            _ => return Ok(fallback),
        };
        let both_int = matches!(a, Some(TlcValue::Type(Type::Singleton(SingVal::Int(_)))))
            && matches!(b, Some(TlcValue::Type(Type::Singleton(SingVal::Int(_)))));
        if both_int && result.fract() == 0.0 {
            Ok(TlcValue::Type(Type::int(result as i64)))
        } else {
            Ok(TlcValue::Type(Type::Singleton(SingVal::float(result))))
        }
    });

    // Comparison folding: singleton operands yield singleton booleans.
    env.register_helper_native("fold_cmp", |_ctx, args| {
        let get = |v: Option<&TlcValue>| -> Option<f64> {
            match v {
                Some(TlcValue::Type(Type::Singleton(SingVal::Int(i)))) => Some(*i as f64),
                Some(TlcValue::Type(Type::Singleton(SingVal::FloatBits(b)))) => {
                    Some(f64::from_bits(*b))
                }
                _ => None,
            }
        };
        let op = match args.get(2) {
            Some(TlcValue::Sym(s)) => s.clone(),
            _ => return Err(TlcError::new("fold_cmp requires an operator symbol")),
        };
        let (Some(x), Some(y)) = (get(args.first()), get(args.get(1))) else {
            return Ok(TlcValue::Type(Type::Bool));
        };
        let result = match op.as_str() {
            "<" => x < y,
            ">" => x > y,
            "<=" => x <= y,
            ">=" => x >= y,
            "==" => x == y,
            _ => return Ok(TlcValue::Type(Type::Bool)),
        };
        Ok(TlcValue::Type(Type::Singleton(if result { SingVal::True } else { SingVal::False })))
    });

    // Const-string operations (§2.2): when the receiver is a const string
    // with a known value, compute the resulting const string; otherwise fall
    // back to String.
    env.register_helper_native("str_op", |ctx, args| {
        let value = match args.first() {
            Some(TlcValue::Type(Type::ConstString(id))) => {
                ctx.store.const_string_value(*id).map(|s| s.to_string())
            }
            _ => None,
        };
        let op = match args.get(1) {
            Some(TlcValue::Sym(s)) => s.clone(),
            _ => return Err(TlcError::new("str_op requires an operation symbol")),
        };
        match value {
            None => Ok(TlcValue::Type(Type::nominal("String"))),
            Some(s) => {
                let out = match op.as_str() {
                    "upcase" => s.to_uppercase(),
                    "downcase" => s.to_lowercase(),
                    "strip" => s.trim().to_string(),
                    "reverse" => s.chars().rev().collect(),
                    "capitalize" => {
                        let mut cs = s.chars();
                        match cs.next() {
                            Some(c) => c.to_uppercase().collect::<String>() + cs.as_str(),
                            None => String::new(),
                        }
                    }
                    "chomp" => s.trim_end_matches('\n').to_string(),
                    "freeze" | "dup" | "to_s" | "to_str" => s,
                    _ => return Ok(TlcValue::Type(Type::nominal("String"))),
                };
                Ok(TlcValue::Type(ctx.store.new_const_string(out)))
            }
        }
    });

    // Const-string concatenation.
    env.register_helper_native("str_concat", |ctx, args| {
        let get = |v: Option<&TlcValue>, ctx: &crate::tlc::TlcCtx<'_>| -> Option<String> {
            match v {
                Some(TlcValue::Type(Type::ConstString(id))) => {
                    ctx.store.const_string_value(*id).map(|s| s.to_string())
                }
                _ => None,
            }
        };
        let a = get(args.first(), ctx);
        let b = get(args.get(1), ctx);
        match (a, b) {
            (Some(x), Some(y)) => Ok(TlcValue::Type(ctx.store.new_const_string(format!("{x}{y}")))),
            _ => Ok(TlcValue::Type(Type::nominal("String"))),
        }
    });

    // String length / emptiness on const strings.
    env.register_helper_native("str_len", |ctx, args| match args.first() {
        Some(TlcValue::Type(Type::ConstString(id))) => match ctx.store.const_string_value(*id) {
            Some(s) => Ok(TlcValue::Type(Type::int(s.chars().count() as i64))),
            None => Ok(TlcValue::Type(Type::nominal("Integer"))),
        },
        _ => Ok(TlcValue::Type(Type::nominal("Integer"))),
    });
}

/// Registers every core-library annotation set plus the shared helpers.
pub fn register_all(env: &mut CompRdl) {
    register_native_helpers(env);
    env.register_helpers_ruby(RUBY_HELPERS);
    array::register(env);
    hash::register(env);
    string::register(env);
    numeric::register(env);
}

/// The per-library rows of Table 1 for the core libraries registered here.
pub fn table1_core_rows(env: &CompRdl) -> Vec<(String, usize, usize)> {
    ["Array", "Hash", "String", "Float", "Integer"]
        .iter()
        .map(|lib| (lib.to_string(), env.annotation_count(lib), env.annotation_loc(lib)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_substantial_annotation_sets() {
        let mut env = CompRdl::new();
        register_all(&mut env);
        assert!(env.annotation_count("Array") >= 100, "{}", env.annotation_count("Array"));
        assert!(env.annotation_count("Hash") >= 40, "{}", env.annotation_count("Hash"));
        assert!(env.annotation_count("String") >= 100, "{}", env.annotation_count("String"));
        assert!(env.annotation_count("Integer") >= 90, "{}", env.annotation_count("Integer"));
        assert!(env.annotation_count("Float") >= 80, "{}", env.annotation_count("Float"));
        assert!(env.helper_count() >= 15);
    }

    #[test]
    fn most_core_annotations_are_comp_types() {
        let mut env = CompRdl::new();
        register_all(&mut env);
        for lib in ["Array", "Hash", "String", "Integer", "Float"] {
            let total = env.annotation_count(lib);
            let comp = env.comp_type_count(lib);
            assert!(
                comp >= 10 && comp <= total,
                "{lib}: only {comp} of {total} annotations are comp types"
            );
        }
    }

    #[test]
    fn table1_rows_have_loc() {
        let mut env = CompRdl::new();
        register_all(&mut env);
        for (lib, count, loc) in table1_core_rows(&env) {
            assert!(count > 0, "{lib} has no annotations");
            assert!(loc > 0, "{lib} has no recorded LoC");
        }
    }
}
