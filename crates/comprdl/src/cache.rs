//! The comp-type evaluation cache.
//!
//! CompRDL evaluates type-level computations at *every* library call site
//! (paper §2), so a checking run over a real program evaluates the same comp
//! type for the same receiver / argument types over and over — e.g. every
//! `User.where(...)` call re-derives the `users` schema hash.  This module
//! memoizes those evaluations.
//!
//! ## Key
//!
//! An evaluation is identified by `(owner class, method name, position)` —
//! position being a parameter index or the return slot, which pins down the
//! comp-type *expression* — plus the **resolved** binding environment the
//! expression runs under (`tself` and each binder, in sorted name order),
//! plus the **semantic hash** of the comp expression and its transitive
//! helper closure ([`crate::semdep::comp_semantic_hash`]).  Two call sites
//! with the same key run the same expression — *the same text, backed by
//! the same helper bodies* — over the same inputs and must produce the same
//! result.  Keying on the semantic hash instead of a process-lifetime
//! counter is what lets these entries round-trip through the on-disk cache
//! ([`crate::persist`]): an entry survives a restart exactly as long as
//! nothing it depends on was edited.
//!
//! Store-backed bindings are keyed by a *structural* digest (via
//! [`TypeStore::fingerprint`] — cheaper than building the
//! [`TypeStore::render`] string, and inducing the same equivalence up to
//! the ~2⁻⁶⁴-per-pair collision probability of a 64-bit digest) rather
//! than their raw ids: every call site allocates fresh ids for literal
//! hashes and tuples, so id-based keys would never match, while
//! structurally identical inputs are exactly the ones that evaluate
//! identically.  A weak update changes the structure and therefore the
//! key, so mutated receivers never match stale entries.
//!
//! ## Invalidation
//!
//! Store-backed types (tuples, finite hashes, const strings) are mutable:
//! weak updates and promotions change what an id *means* without changing
//! the id (§4).  Every such mutation bumps the
//! [`TypeStore::generation`] counter, and any cache entry whose key **or**
//! result mentions a store-backed type records the generation it was
//! inserted at.  A lookup that finds a store-dependent entry from an older
//! generation evicts it and reports a miss, so cached results can never go
//! stale — at worst a mutation costs one re-evaluation per affected key.

use crate::tlc::{TlcError, TlcValue};
use rdl_types::{Type, TypeId, TypeStore};
use std::collections::HashMap;

/// Which comp-type slot of a signature an evaluation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompPosition {
    /// The comp type of the `i`-th parameter.
    Param(u8),
    /// The comp type of the return position.
    Ret,
}

/// One binding's contribution to a cache key: store-free types compare by
/// their interned id (hash-consing makes id equality structural equality,
/// so hashing and comparing a key is integer work instead of a tree walk —
/// see `rdl_types::intern`), store-backed types compare by their structural
/// digest so fresh ids with identical content match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum KeyType {
    /// The interned id of a type with no store-backed parts.
    Interned(TypeId),
    /// The [`TypeStore::fingerprint`] digest of a store-backed type.
    Structural(u64),
}

/// The identity of one comp-type evaluation.  See the module docs for why
/// these fields pin down the result.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    owner: String,
    method: String,
    position: CompPosition,
    /// Semantic hash of the comp expression plus its transitive helper
    /// closure ([`crate::semdep::comp_semantic_hash`]).  An edit to the
    /// expression or any helper it can reach changes this value, so stale
    /// entries simply stop matching instead of needing eager eviction.
    semantic: u64,
    /// `(name, keyed type)` bindings in sorted name order.
    bindings: Vec<(String, KeyType)>,
    /// Whether any binding mentioned a store-backed type (used for
    /// generation guarding).
    store_backed_inputs: bool,
}

impl CacheKey {
    /// Builds a key from the binding environment handed to the evaluator.
    /// Returns `None` when a binding holds a non-type value (no such
    /// bindings are produced by the checker today, but native helpers could
    /// see richer environments; refusing to cache keeps this conservative).
    pub fn build(
        owner: &str,
        method: &str,
        position: CompPosition,
        semantic: u64,
        bindings: &HashMap<String, TlcValue>,
        store: &TypeStore,
    ) -> Option<CacheKey> {
        let mut store_backed_inputs = false;
        let mut resolved: Vec<(String, KeyType)> = Vec::with_capacity(bindings.len());
        for (name, value) in bindings {
            match value {
                TlcValue::Type(t) => {
                    let keyed = if t.contains_store_backed() {
                        store_backed_inputs = true;
                        KeyType::Structural(store.fingerprint(t))
                    } else {
                        KeyType::Interned(rdl_types::intern(t))
                    };
                    resolved.push((name.clone(), keyed));
                }
                _ => return None,
            }
        }
        resolved.sort_by(|a, b| a.0.cmp(&b.0));
        Some(CacheKey {
            owner: owner.to_string(),
            method: method.to_string(),
            position,
            semantic,
            bindings: resolved,
            store_backed_inputs,
        })
    }

    fn depends_on_store(&self) -> bool {
        self.store_backed_inputs
    }
}

#[derive(Debug, Clone)]
struct CacheEntry {
    result: Result<Type, TlcError>,
    /// True when the key or the result mentions a store-backed type; such
    /// entries are only valid while the store generation is unchanged.
    store_dependent: bool,
    generation: u64,
}

/// Hit / miss / invalidation counters, exposed so benches and tests can
/// verify the cache is actually doing work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to evaluation.
    pub misses: u64,
    /// Entries evicted because the store generation moved past them.
    pub invalidations: u64,
}

impl CacheStats {
    /// Sums two stat blocks (used when merging parallel workers).
    pub fn merged(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            invalidations: self.invalidations + other.invalidations,
        }
    }
}

/// The memoization table for comp-type evaluations, owned by one checking
/// run (parallel workers each own their own cache alongside their own
/// [`TypeStore`]).
#[derive(Debug, Clone, Default)]
pub struct CompTypeCache {
    entries: HashMap<CacheKey, CacheEntry>,
    /// Per-slot evaluation counts, linearly scanned (a program uses a few
    /// dozen comp-type slots at most).  Keying a lookup costs allocations
    /// (binding clones, fingerprints), which is pure overhead for slots
    /// that are only ever evaluated once — the common case in small
    /// programs — so the keyed machinery only engages from a slot's second
    /// evaluation on.
    slots: Vec<(String, String, CompPosition, u32)>,
    stats: CacheStats,
}

impl CompTypeCache {
    /// An empty cache.
    pub fn new() -> Self {
        CompTypeCache::default()
    }

    /// Records one evaluation of the `(owner, method, position)` slot and
    /// reports whether the keyed cache should engage for it: `false` for
    /// the slot's first evaluation (no repetition proven yet — the caller
    /// should evaluate directly and skip key building), `true` afterwards.
    pub fn note_evaluation(&mut self, owner: &str, method: &str, position: CompPosition) -> bool {
        for (o, m, p, count) in &mut self.slots {
            if *p == position && o == owner && m == method {
                *count += 1;
                return true;
            }
        }
        self.slots.push((owner.to_string(), method.to_string(), position, 1));
        self.stats.misses += 1;
        false
    }

    /// Looks up a previous evaluation.  Store-dependent entries whose
    /// generation no longer matches `store` are evicted and reported as
    /// misses.
    pub fn lookup(&mut self, key: &CacheKey, store: &TypeStore) -> Option<Result<Type, TlcError>> {
        match self.entries.get(key) {
            Some(entry) if entry.store_dependent && entry.generation != store.generation() => {
                self.entries.remove(key);
                self.stats.invalidations += 1;
                self.stats.misses += 1;
                None
            }
            Some(entry) => {
                self.stats.hits += 1;
                Some(entry.result.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Records the result of an evaluation under `key`.
    pub fn insert(&mut self, key: CacheKey, result: Result<Type, TlcError>, store: &TypeStore) {
        let store_dependent =
            key.depends_on_store() || matches!(&result, Ok(t) if t.contains_store_backed());
        self.entries
            .insert(key, CacheEntry { result, store_dependent, generation: store.generation() });
    }

    /// The number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdl_types::HashKey;

    fn key_for(store: &TypeStore, tself: &Type) -> CacheKey {
        key_for_sem(store, tself, 0xfeed)
    }

    fn key_for_sem(store: &TypeStore, tself: &Type, semantic: u64) -> CacheKey {
        let mut bindings = HashMap::new();
        bindings.insert("tself".to_string(), TlcValue::Type(tself.clone()));
        CacheKey::build("Table", "where", CompPosition::Param(0), semantic, &bindings, store)
            .unwrap()
    }

    #[test]
    fn hit_after_insert_and_stats() {
        let store = TypeStore::new();
        let mut cache = CompTypeCache::new();
        let key = key_for(&store, &Type::class_of("User"));
        assert!(cache.lookup(&key, &store).is_none());
        cache.insert(key.clone(), Ok(Type::nominal("String")), &store);
        assert_eq!(cache.lookup(&key, &store), Some(Ok(Type::nominal("String"))));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1, invalidations: 0 });
    }

    #[test]
    fn non_type_bindings_refuse_to_build_a_key() {
        let store = TypeStore::new();
        let mut bindings = HashMap::new();
        bindings.insert("tself".to_string(), TlcValue::Sym("x".to_string()));
        assert!(CacheKey::build("Hash", "[]", CompPosition::Ret, 0, &bindings, &store).is_none());
    }

    #[test]
    fn semantic_hash_partitions_the_key_space() {
        // The same slot and bindings under an edited comp expression (or
        // helper closure) must not hit entries recorded for the old one.
        let store = TypeStore::new();
        let mut cache = CompTypeCache::new();
        let old = key_for_sem(&store, &Type::class_of("User"), 1);
        cache.insert(old.clone(), Ok(Type::nominal("String")), &store);
        let new = key_for_sem(&store, &Type::class_of("User"), 2);
        assert!(cache.lookup(&new, &store).is_none());
        assert!(cache.lookup(&old, &store).is_some());
    }

    #[test]
    fn structurally_identical_store_types_share_a_key() {
        // Every call site allocates fresh ids for literal hashes; the cache
        // must still hit across sites when the *content* is identical.
        let mut store = TypeStore::new();
        let h1 = store.new_finite_hash(vec![(HashKey::Sym("id".into()), Type::int(1))]);
        let h2 = store.new_finite_hash(vec![(HashKey::Sym("id".into()), Type::int(1))]);
        assert_ne!(h1, h2, "distinct ids");
        assert_eq!(key_for(&store, &h1), key_for(&store, &h2));
        // Mutating one of them changes its fingerprint, so it stops
        // matching entries recorded for the old content.
        let Type::FiniteHash(id) = h2 else { panic!() };
        store.weak_update_hash(id, HashKey::Sym("id".into()), Type::nominal("String"));
        assert_ne!(key_for(&store, &h1), key_for(&store, &h2));
    }

    #[test]
    fn promotion_invalidates_store_backed_keys() {
        let mut store = TypeStore::new();
        let mut cache = CompTypeCache::new();
        let hash = store.new_finite_hash(vec![(HashKey::Sym("id".into()), Type::int(1))]);
        let key = key_for(&store, &hash);
        cache.insert(key.clone(), Ok(Type::nominal("Integer")), &store);
        assert!(cache.lookup(&key, &store).is_some());

        // Promoting the hash bumps the generation; the entry must die.
        let Type::FiniteHash(id) = hash else { panic!() };
        store.promote_finite_hash(id);
        assert!(cache.lookup(&key, &store).is_none(), "stale entry survived promotion");
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn weak_update_invalidates_store_backed_results() {
        let mut store = TypeStore::new();
        let mut cache = CompTypeCache::new();
        // Key is store-free, but the *result* is a store-backed schema hash.
        let key = key_for(&store, &Type::class_of("User"));
        let schema = store.new_finite_hash(vec![(HashKey::Sym("id".into()), Type::int(1))]);
        cache.insert(key.clone(), Ok(schema.clone()), &store);
        assert!(cache.lookup(&key, &store).is_some());

        let Type::FiniteHash(id) = schema else { panic!() };
        store.weak_update_hash(id, HashKey::Sym("name".into()), Type::nominal("String"));
        assert!(cache.lookup(&key, &store).is_none(), "stale entry survived weak update");
    }

    #[test]
    fn store_free_entries_survive_mutations() {
        let mut store = TypeStore::new();
        let mut cache = CompTypeCache::new();
        let key = key_for(&store, &Type::class_of("User"));
        cache.insert(key.clone(), Ok(Type::nominal("Integer")), &store);
        let t = store.new_tuple(vec![Type::int(1)]);
        let Type::Tuple(id) = t else { panic!() };
        store.promote_tuple(id);
        assert!(
            cache.lookup(&key, &store).is_some(),
            "store-free entries need not die on unrelated mutations"
        );
    }

    #[test]
    fn errors_are_cached_too() {
        let store = TypeStore::new();
        let mut cache = CompTypeCache::new();
        let key = key_for(&store, &Type::nominal("String"));
        cache.insert(key.clone(), Err(TlcError::new("boom")), &store);
        assert_eq!(cache.lookup(&key, &store), Some(Err(TlcError::new("boom"))));
    }
}
