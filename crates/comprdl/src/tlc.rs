//! The type-level computation (comp type) evaluator.
//!
//! Comp types are Ruby expressions that run *during type checking* and
//! produce RDL types (paper §2).  Type-level code manipulates type objects
//! reflectively — `tself.is_a?(FiniteHash)`, `t.val`, `tself.elts[t.val]`,
//! `Generic.new(Table, schema_type(tself).merge({t.val => schema_type(t)}))`
//! — and may call *helper methods* such as `schema_type`, which the paper
//! counts separately in Table 1.
//!
//! The evaluator interprets the Ruby-subset expression with a small value
//! universe in which RDL [`Type`]s are first-class values, and dispatches
//! helper calls either to native Rust helpers or to helpers written in the
//! Ruby subset and registered with the [`HelperRegistry`].

use rdl_types::{ClassTable, HashKey, SingVal, Subtyper, Type, TypeStore};
use ruby_syntax::{BinOp, Expr, ExprKind, MethodDef, Span};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Maximum number of AST nodes a single comp-type evaluation may visit.
/// Together with the termination checker (§4) this guarantees type checking
/// terminates.
const TLC_FUEL: u64 = 200_000;

/// An error raised while evaluating type-level code.
#[derive(Debug, Clone, PartialEq)]
pub struct TlcError {
    /// Human readable description.
    pub message: String,
    /// Where in the type-level source the evaluation failed, when known.
    /// [`TlcCtx::eval`] attaches the span of the innermost failing
    /// expression automatically.
    pub span: Option<Span>,
    /// When the error came from checking an embedded SQL fragment: where in
    /// the *raw fragment string* the problem is.  The static checker maps
    /// this through the string literal that supplied the fragment so the
    /// diagnostic points into the original Ruby source.
    pub sql_span: Option<Span>,
}

impl TlcError {
    /// Creates an error with no location (yet).
    pub fn new(message: impl Into<String>) -> Self {
        TlcError { message: message.into(), span: None, sql_span: None }
    }

    /// Attaches a location, replacing any existing one.
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// Attaches a span relative to an embedded SQL fragment string.
    pub fn with_sql_span(mut self, span: Span) -> Self {
        if !span.is_dummy() {
            self.sql_span = Some(span);
        }
        self
    }

    /// Attaches a location only if none is set, so the innermost (most
    /// precise) span wins as an error propagates outwards.
    pub fn or_span(mut self, span: Span) -> Self {
        if self.span.is_none() && !span.is_dummy() {
            self.span = Some(span);
        }
        self
    }
}

impl fmt::Display for TlcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type-level computation error: {}", self.message)?;
        if let Some(span) = self.span {
            write!(f, " (at {span})")?;
        }
        Ok(())
    }
}

impl std::error::Error for TlcError {}

impl From<TlcError> for diagnostics::Diagnostic {
    fn from(e: TlcError) -> Self {
        let mut d = diagnostics::Diagnostic::error("TLC0001", e.message.clone());
        if let Some(span) = e.span {
            d = d.with_label(span, "while evaluating this type-level expression");
        }
        d.with_note("the span is relative to the type-level (comp type) source")
    }
}

/// Result type for type-level evaluation.
pub type TlcResult<T = TlcValue> = Result<T, TlcError>;

/// The RDL type-node classes that type-level code can test against with
/// `is_a?` and construct with `.new`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaKind {
    /// `Singleton` — singleton types (symbols, integers, class objects...).
    Singleton,
    /// `Nominal` — plain class types.
    Nominal,
    /// `Generic` — generic instantiations such as `Table<T>`.
    Generic,
    /// `FiniteHash` — heterogeneous hash types.
    FiniteHash,
    /// `Tuple` — heterogeneous array types.
    Tuple,
    /// `ConstString` — const string types.
    ConstString,
    /// `Union` — union types.
    Union,
    /// `Optional` — optional argument types.
    Optional,
}

impl MetaKind {
    fn from_name(name: &str) -> Option<MetaKind> {
        Some(match name {
            "Singleton" => MetaKind::Singleton,
            "Nominal" => MetaKind::Nominal,
            "Generic" => MetaKind::Generic,
            "FiniteHash" => MetaKind::FiniteHash,
            "Tuple" => MetaKind::Tuple,
            "ConstString" => MetaKind::ConstString,
            "Union" => MetaKind::Union,
            "Optional" => MetaKind::Optional,
            _ => return None,
        })
    }
}

/// A value in the type-level universe.
#[derive(Debug, Clone, PartialEq)]
pub enum TlcValue {
    /// `nil`.
    Nil,
    /// A boolean.
    Bool(bool),
    /// An integer.
    Int(i64),
    /// A string.
    Str(String),
    /// A symbol.
    Sym(String),
    /// An array of type-level values.
    Array(Vec<TlcValue>),
    /// A hash of type-level values.
    Hash(Vec<(TlcValue, TlcValue)>),
    /// An RDL type as a first-class value.
    Type(Type),
    /// A reference to an ordinary class (e.g. `Table`, `String`, `User`).
    ClassRef(String),
    /// A reference to one of the RDL type-node classes.
    MetaClass(MetaKind),
}

impl TlcValue {
    /// Ruby truthiness.
    pub fn truthy(&self) -> bool {
        !matches!(self, TlcValue::Nil | TlcValue::Bool(false))
    }

    /// Converts the value to an RDL type, if it denotes one.  Hashes of
    /// `symbol => type` convert to finite hash types; class references
    /// convert to nominal types; symbols/integers/strings convert to
    /// singleton / const-string types.
    pub fn into_type(self, store: &mut TypeStore) -> TlcResult<Type> {
        match self {
            TlcValue::Type(t) => Ok(t),
            TlcValue::ClassRef(name) => Ok(class_ref_type(&name)),
            TlcValue::Sym(s) => Ok(Type::sym(s)),
            TlcValue::Int(i) => Ok(Type::int(i)),
            TlcValue::Str(s) => Ok(store.new_const_string(s)),
            TlcValue::Bool(true) => Ok(Type::Singleton(SingVal::True)),
            TlcValue::Bool(false) => Ok(Type::Singleton(SingVal::False)),
            TlcValue::Nil => Ok(Type::nil()),
            TlcValue::Hash(pairs) => {
                let mut entries = Vec::with_capacity(pairs.len());
                for (k, v) in pairs {
                    let key = match k {
                        TlcValue::Sym(s) => HashKey::Sym(s),
                        TlcValue::Str(s) => HashKey::Str(s),
                        TlcValue::Int(i) => HashKey::Int(i),
                        other => {
                            return Err(TlcError::new(format!(
                                "cannot use {other:?} as a finite hash key"
                            )))
                        }
                    };
                    let vt = v.into_type(store)?;
                    entries.push((key, vt));
                }
                Ok(store.new_finite_hash(entries))
            }
            TlcValue::Array(items) => {
                let mut elems = Vec::with_capacity(items.len());
                for item in items {
                    elems.push(item.into_type(store)?);
                }
                Ok(store.new_tuple(elems))
            }
            TlcValue::MetaClass(_) => Err(TlcError::new("a type-node class is not itself a type")),
        }
    }

    fn type_equal(&self, other: &TlcValue) -> bool {
        self == other
    }
}

/// The base-class nominal/special type named by a class reference in
/// type-level code.
fn class_ref_type(name: &str) -> Type {
    match name {
        "Boolean" => Type::Bool,
        "NilClass" => Type::nil(),
        _ => Type::nominal(name),
    }
}

/// A native helper method callable from type-level code.  Helpers are
/// `Send + Sync` behind an [`Arc`] so a [`HelperRegistry`] can be shared
/// across the threads of a parallel checking run.
pub type NativeHelper = Arc<dyn Fn(&mut TlcCtx<'_>, &[TlcValue]) -> TlcResult + Send + Sync>;

/// The registry of helper methods usable inside comp types (Table 1 counts
/// these per library).
#[derive(Default, Clone)]
pub struct HelperRegistry {
    native: HashMap<String, NativeHelper>,
    ruby: HashMap<String, Arc<MethodDef>>,
    /// Lines of type-level Ruby code contributed by registered Ruby helpers
    /// (used for Table 1 LoC accounting).
    ruby_loc: usize,
}

impl fmt::Debug for HelperRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HelperRegistry")
            .field("native", &self.native.keys().collect::<Vec<_>>())
            .field("ruby", &self.ruby.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl HelperRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        HelperRegistry::default()
    }

    /// Registers a native (Rust) helper.
    pub fn register_native(
        &mut self,
        name: &str,
        f: impl Fn(&mut TlcCtx<'_>, &[TlcValue]) -> TlcResult + Send + Sync + 'static,
    ) {
        self.native.insert(name.to_string(), Arc::new(f));
    }

    /// Registers helper methods written in the Ruby subset; `src` is parsed
    /// and each top-level `def` becomes a callable helper.
    ///
    /// # Errors
    ///
    /// Returns a [`TlcError`] if `src` does not parse.
    pub fn register_ruby(&mut self, src: &str) -> TlcResult<()> {
        let program = ruby_syntax::parse_program_strict(src)
            .map_err(|e| TlcError::new(format!("helper source does not parse: {e}")))?;
        self.ruby_loc += ruby_syntax::count_loc(src);
        for (_, m) in program.methods() {
            self.ruby.insert(m.name.clone(), Arc::new(m.clone()));
        }
        Ok(())
    }

    /// Number of registered helper methods.
    pub fn len(&self) -> usize {
        self.native.len() + self.ruby.len()
    }

    /// True if no helpers are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Names of all registered helpers.
    pub fn names(&self) -> Vec<String> {
        let mut out: Vec<String> = self.native.keys().chain(self.ruby.keys()).cloned().collect();
        out.sort();
        out.dedup();
        out
    }

    /// Lines of Ruby helper code registered.
    pub fn ruby_loc(&self) -> usize {
        self.ruby_loc
    }

    fn get_native(&self, name: &str) -> Option<NativeHelper> {
        self.native.get(name).cloned()
    }

    fn get_ruby(&self, name: &str) -> Option<Arc<MethodDef>> {
        self.ruby.get(name).cloned()
    }

    /// Whether a helper with the given name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.native.contains_key(name) || self.ruby.contains_key(name)
    }

    /// The Ruby-subset helper definitions, sorted by name.
    ///
    /// Used by `semdep` to hash helper bodies structurally and chase
    /// helper-to-helper calls when building the dependency graph.
    pub fn ruby_defs(&self) -> Vec<(&str, &MethodDef)> {
        let mut out: Vec<(&str, &MethodDef)> =
            self.ruby.iter().map(|(n, m)| (n.as_str(), &**m)).collect();
        out.sort_by_key(|(n, _)| *n);
        out
    }

    /// The names of the native (Rust) helpers, sorted.
    ///
    /// Native helpers have no AST to hash; `semdep` identifies them by name
    /// plus the crate-level native helper revision tag.
    pub fn native_names(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.native.keys().map(String::as_str).collect();
        out.sort();
        out
    }
}

/// Evaluation context handed to native helpers and used internally by the
/// evaluator.
pub struct TlcCtx<'a> {
    /// The type store (helpers may allocate finite hash / tuple types).
    pub store: &'a mut TypeStore,
    /// The class hierarchy.
    pub classes: &'a ClassTable,
    /// The helper registry.
    pub helpers: &'a HelperRegistry,
    /// Extra named bindings visible to type-level code (`tself`, binders).
    pub bindings: HashMap<String, TlcValue>,
    fuel: u64,
    depth: u32,
    /// The stack of Ruby-subset helpers currently being evaluated, with the
    /// span of each helper's definition.  The whole evaluation shares one
    /// fuel budget (helper-to-helper calls do not get a fresh one), so when
    /// the budget runs out this identifies the helper that was burning fuel.
    helper_stack: Vec<(String, Span)>,
}

/// Maximum helper-call nesting depth.  CompRDL assumes type-level code does
/// not recurse (paper §4); a small bound turns accidental recursion into an
/// error instead of a stack overflow.
const MAX_HELPER_DEPTH: u32 = 64;

impl<'a> TlcCtx<'a> {
    /// Creates a context with the given bindings.
    pub fn new(
        store: &'a mut TypeStore,
        classes: &'a ClassTable,
        helpers: &'a HelperRegistry,
        bindings: HashMap<String, TlcValue>,
    ) -> Self {
        TlcCtx {
            store,
            classes,
            helpers,
            bindings,
            fuel: TLC_FUEL,
            depth: 0,
            helper_stack: Vec::new(),
        }
    }

    /// The error reported when the shared fuel budget runs out: names the
    /// helper that was executing (the whole evaluation shares one budget, so
    /// a generic message would blame the outermost comp type instead of the
    /// helper actually looping) and carries the helper definition's span.
    fn fuel_exhausted(&self) -> TlcError {
        match self.helper_stack.last() {
            Some((name, span)) => TlcError::new(format!(
                "type-level computation exceeded its step budget while evaluating helper `{name}` \
                 (helper-to-helper calls share one budget)"
            ))
            .with_span(*span),
            None => TlcError::new("type-level computation exceeded its step budget"),
        }
    }

    fn burn(&mut self) -> TlcResult<()> {
        if self.fuel == 0 {
            return Err(self.fuel_exhausted());
        }
        self.fuel -= 1;
        Ok(())
    }

    /// Evaluates a type-level expression to a value.
    ///
    /// # Errors
    ///
    /// Returns a [`TlcError`] if the expression goes wrong (unknown method,
    /// unbound variable, fuel exhaustion, ...).
    pub fn eval(&mut self, expr: &Expr) -> TlcResult {
        self.eval_inner(expr).map_err(|e| e.or_span(expr.span))
    }

    fn eval_inner(&mut self, expr: &Expr) -> TlcResult {
        self.burn()?;
        match &expr.kind {
            ExprKind::Nil => Ok(TlcValue::Nil),
            ExprKind::True => Ok(TlcValue::Bool(true)),
            ExprKind::False => Ok(TlcValue::Bool(false)),
            ExprKind::Int(i) => Ok(TlcValue::Int(*i)),
            ExprKind::Float(f) => Ok(TlcValue::Int(*f as i64)),
            ExprKind::Str(s) => Ok(TlcValue::Str(s.clone())),
            ExprKind::Sym(s) => Ok(TlcValue::Sym(s.clone())),
            ExprKind::Array(items) => {
                let mut out = Vec::with_capacity(items.len());
                for i in items {
                    out.push(self.eval(i)?);
                }
                Ok(TlcValue::Array(out))
            }
            ExprKind::Hash(pairs) => {
                let mut out = Vec::with_capacity(pairs.len());
                for (k, v) in pairs {
                    out.push((self.eval(k)?, self.eval(v)?));
                }
                Ok(TlcValue::Hash(out))
            }
            ExprKind::SelfExpr => self
                .bindings
                .get("tself")
                .cloned()
                .ok_or_else(|| TlcError::new("`self` is not bound in type-level code")),
            ExprKind::Ident(name) => {
                if let Some(v) = self.bindings.get(name) {
                    return Ok(v.clone());
                }
                self.call_helper(name, &[])
            }
            ExprKind::GVar(name) => {
                self.bindings.get(&format!("${name}")).cloned().ok_or_else(|| {
                    TlcError::new(format!("unbound global ${name} in type-level code"))
                })
            }
            ExprKind::IVar(name) => {
                self.bindings.get(&format!("@{name}")).cloned().ok_or_else(|| {
                    TlcError::new(format!("unbound ivar @{name} in type-level code"))
                })
            }
            ExprKind::Const(path) => {
                let joined = path.join("::");
                if let Some(kind) = MetaKind::from_name(&joined) {
                    return Ok(TlcValue::MetaClass(kind));
                }
                Ok(TlcValue::ClassRef(joined))
            }
            ExprKind::BoolOp { op, lhs, rhs } => {
                let l = self.eval(lhs)?;
                match op {
                    BinOp::And => {
                        if l.truthy() {
                            self.eval(rhs)
                        } else {
                            Ok(l)
                        }
                    }
                    BinOp::Or => {
                        if l.truthy() {
                            Ok(l)
                        } else {
                            self.eval(rhs)
                        }
                    }
                }
            }
            ExprKind::Not(e) => Ok(TlcValue::Bool(!self.eval(e)?.truthy())),
            ExprKind::If { arms, else_body } => {
                for arm in arms {
                    if self.eval(&arm.cond)?.truthy() {
                        return self.eval_body(&arm.body);
                    }
                }
                self.eval_body(else_body)
            }
            ExprKind::Case { subject, arms, else_body } => {
                let s = self.eval(subject)?;
                for arm in arms {
                    let c = self.eval(&arm.cond)?;
                    if c.type_equal(&s) {
                        return self.eval_body(&arm.body);
                    }
                }
                self.eval_body(else_body)
            }
            ExprKind::Return(Some(e)) => self.eval(e),
            ExprKind::Return(None) => Ok(TlcValue::Nil),
            ExprKind::Assign { target, value } => {
                let v = self.eval(value)?;
                if let ruby_syntax::LValue::Local(name) = target {
                    self.bindings.insert(name.clone(), v.clone());
                    Ok(v)
                } else {
                    Err(TlcError::new(
                        "type-level code may only assign to local variables (purity)",
                    ))
                }
            }
            ExprKind::Call { recv, name, args, .. } => {
                let mut arg_vals = Vec::with_capacity(args.len());
                for a in args {
                    arg_vals.push(self.eval(a)?);
                }
                match recv {
                    None => self.call_helper(name, &arg_vals),
                    Some(r) => {
                        // `RDL.helper(...)` is routed to the helper registry.
                        if let ExprKind::Const(path) = &r.kind {
                            if path == &["RDL".to_string()] {
                                return self.call_helper(name, &arg_vals);
                            }
                        }
                        let recv_val = self.eval(r)?;
                        self.call_method(&recv_val, name, &arg_vals)
                    }
                }
            }
            ExprKind::While { .. } => {
                Err(TlcError::new("type-level code may not use loops (termination)"))
            }
            ExprKind::TypeCast { expr, .. } => self.eval(expr),
            other => {
                Err(TlcError::new(format!("unsupported construct in type-level code: {other:?}")))
            }
        }
    }

    fn eval_body(&mut self, body: &[Expr]) -> TlcResult {
        let mut last = TlcValue::Nil;
        for e in body {
            last = self.eval(e)?;
        }
        Ok(last)
    }

    /// Calls a helper method by name (native first, then Ruby-subset).
    ///
    /// # Errors
    ///
    /// Returns a [`TlcError`] if the helper is unknown or fails.
    pub fn call_helper(&mut self, name: &str, args: &[TlcValue]) -> TlcResult {
        if let Some(f) = self.helpers.get_native(name) {
            return f(self, args);
        }
        if let Some(def) = self.helpers.get_ruby(name) {
            if self.depth >= MAX_HELPER_DEPTH {
                return Err(TlcError::new(format!(
                    "type-level computation exceeded its step budget in helper `{name}` \
                     (recursive helper?)"
                ))
                .with_span(def.span));
            }
            self.depth += 1;
            self.helper_stack.push((name.to_string(), def.span));
            let saved = self.bindings.clone();
            for (i, p) in def.params.iter().enumerate() {
                let v = match args.get(i) {
                    Some(v) => v.clone(),
                    None => match &p.default {
                        Some(d) => self.eval(d)?,
                        None => TlcValue::Nil,
                    },
                };
                self.bindings.insert(p.name.clone(), v);
            }
            let result = self.eval_body(&def.body.clone());
            self.bindings = saved;
            self.helper_stack.pop();
            self.depth -= 1;
            return result;
        }
        Err(TlcError::new(format!("unknown helper method `{name}` in type-level code")))
    }

    // ---- methods on type-level values -----------------------------------

    /// Renders a type for an error message with store-backed parts expanded
    /// structurally, so messages are independent of store allocation order.
    fn show(&self, t: &Type) -> String {
        self.store.render(t)
    }

    fn call_method(&mut self, recv: &TlcValue, name: &str, args: &[TlcValue]) -> TlcResult {
        match name {
            "==" => return Ok(TlcValue::Bool(recv.type_equal(&args[0].clone()))),
            "!=" => return Ok(TlcValue::Bool(!recv.type_equal(&args[0].clone()))),
            "nil?" => return Ok(TlcValue::Bool(matches!(recv, TlcValue::Nil))),
            "is_a?" | "kind_of?" | "instance_of?" => return self.is_a(recv, args),
            _ => {}
        }
        match recv {
            TlcValue::Type(t) => self.type_method(t, name, args),
            TlcValue::Hash(pairs) => self.hash_method(pairs, name, args),
            TlcValue::Array(items) => self.array_method(items, name, args),
            TlcValue::Str(s) => self.string_method(s, name, args),
            TlcValue::Sym(s) => match name {
                "to_s" => Ok(TlcValue::Str(s.clone())),
                "to_sym" => Ok(recv.clone()),
                _ => Err(TlcError::new(format!("unknown method `{name}` on symbol"))),
            },
            TlcValue::Int(i) => match name {
                "+" => Ok(TlcValue::Int(i + expect_int(args, 0)?)),
                "-" => Ok(TlcValue::Int(i - expect_int(args, 0)?)),
                "*" => Ok(TlcValue::Int(i * expect_int(args, 0)?)),
                "to_s" => Ok(TlcValue::Str(i.to_string())),
                _ => Err(TlcError::new(format!("unknown method `{name}` on integer"))),
            },
            TlcValue::MetaClass(kind) => self.metaclass_method(*kind, name, args),
            TlcValue::ClassRef(class) => match name {
                "new" => Err(TlcError::new(format!(
                    "type-level code cannot instantiate ordinary class {class}"
                ))),
                "to_s" | "name" => Ok(TlcValue::Str(class.clone())),
                "to_type" => Ok(TlcValue::Type(class_ref_type(class))),
                _ => {
                    // Fall back to a helper with an explicit receiver, e.g.
                    // `DBSchema.table_type(...)`.
                    let qualified = format!("{class}.{name}");
                    if self.helpers.contains(&qualified) {
                        self.call_helper(&qualified, args)
                    } else {
                        self.call_helper(name, args)
                    }
                }
            },
            TlcValue::Nil => Err(TlcError::new(format!("undefined method `{name}` for nil"))),
            TlcValue::Bool(_) => Err(TlcError::new(format!("unknown method `{name}` on boolean"))),
        }
    }

    fn is_a(&mut self, recv: &TlcValue, args: &[TlcValue]) -> TlcResult {
        let target = args.first().ok_or_else(|| TlcError::new("is_a? requires an argument"))?;
        let result = match (recv, target) {
            (TlcValue::Type(t), TlcValue::MetaClass(kind)) => {
                let t = self.store.resolve(t);
                match kind {
                    MetaKind::Singleton => {
                        t.is_singleton()
                            || matches!(t, Type::ConstString(id) if self.store.const_string_value(id).is_some())
                    }
                    MetaKind::Nominal => matches!(t, Type::Nominal(_)),
                    MetaKind::Generic => matches!(t, Type::Generic { .. }),
                    MetaKind::FiniteHash => matches!(t, Type::FiniteHash(_)),
                    MetaKind::Tuple => matches!(t, Type::Tuple(_)),
                    MetaKind::ConstString => matches!(t, Type::ConstString(_)),
                    MetaKind::Union => matches!(t, Type::Union(_)),
                    MetaKind::Optional => matches!(t, Type::Optional(_)),
                }
            }
            (TlcValue::Type(t), TlcValue::ClassRef(class)) => {
                let sub = Subtyper::new(self.classes);
                sub.is_subtype(self.store, t, &class_ref_type(class))
            }
            (TlcValue::Sym(_), TlcValue::ClassRef(c)) => c == "Symbol",
            (TlcValue::Str(_), TlcValue::ClassRef(c)) => c == "String",
            (TlcValue::Int(_), TlcValue::ClassRef(c)) => c == "Integer" || c == "Numeric",
            (TlcValue::Hash(_), TlcValue::ClassRef(c)) => c == "Hash",
            (TlcValue::Array(_), TlcValue::ClassRef(c)) => c == "Array",
            _ => false,
        };
        Ok(TlcValue::Bool(result))
    }

    fn metaclass_method(&mut self, kind: MetaKind, name: &str, args: &[TlcValue]) -> TlcResult {
        if name != "new" {
            return Err(TlcError::new(format!("unknown method `{name}` on type-node class")));
        }
        match kind {
            MetaKind::Nominal => {
                let class = expect_class_name(args, 0)?;
                Ok(TlcValue::Type(class_ref_type(&class)))
            }
            MetaKind::Singleton => {
                let arg = args.first().cloned().unwrap_or(TlcValue::Nil);
                let t = match arg {
                    TlcValue::Sym(s) => Type::sym(s),
                    TlcValue::Int(i) => Type::int(i),
                    TlcValue::Str(s) => self.store.new_const_string(s),
                    TlcValue::ClassRef(c) => Type::class_of(c),
                    TlcValue::Bool(true) => Type::Singleton(SingVal::True),
                    TlcValue::Bool(false) => Type::Singleton(SingVal::False),
                    TlcValue::Nil => Type::nil(),
                    other => {
                        return Err(TlcError::new(format!(
                            "cannot build a singleton type from {other:?}"
                        )))
                    }
                };
                Ok(TlcValue::Type(t))
            }
            MetaKind::Generic => {
                let base = expect_class_name(args, 0)?;
                let mut params = Vec::new();
                for a in &args[1..] {
                    params.push(a.clone().into_type(self.store)?);
                }
                Ok(TlcValue::Type(Type::Generic { base, args: params }))
            }
            MetaKind::FiniteHash => {
                let arg = args.first().cloned().unwrap_or(TlcValue::Hash(vec![]));
                Ok(TlcValue::Type(arg.into_type(self.store)?))
            }
            MetaKind::Tuple => {
                let mut elems = Vec::new();
                for a in args {
                    elems.push(a.clone().into_type(self.store)?);
                }
                Ok(TlcValue::Type(self.store.new_tuple(elems)))
            }
            MetaKind::ConstString => {
                let s = match args.first() {
                    Some(TlcValue::Str(s)) => s.clone(),
                    _ => return Err(TlcError::new("ConstString.new requires a string")),
                };
                Ok(TlcValue::Type(self.store.new_const_string(s)))
            }
            MetaKind::Union => {
                let mut members = Vec::new();
                for a in args {
                    members.push(a.clone().into_type(self.store)?);
                }
                Ok(TlcValue::Type(Type::union(members)))
            }
            MetaKind::Optional => {
                let t = args
                    .first()
                    .cloned()
                    .unwrap_or(TlcValue::Type(Type::Top))
                    .into_type(self.store)?;
                Ok(TlcValue::Type(Type::Optional(Box::new(t))))
            }
        }
    }

    fn type_method(&mut self, t: &Type, name: &str, args: &[TlcValue]) -> TlcResult {
        let resolved = self.store.resolve(t);
        match name {
            // The singleton's underlying value.
            "val" | "value" => match &resolved {
                Type::Singleton(SingVal::Sym(s)) => Ok(TlcValue::Sym(s.clone())),
                Type::Singleton(SingVal::Int(i)) => Ok(TlcValue::Int(*i)),
                Type::Singleton(SingVal::Class(c)) => Ok(TlcValue::ClassRef(c.clone())),
                Type::Singleton(SingVal::True) => Ok(TlcValue::Bool(true)),
                Type::Singleton(SingVal::False) => Ok(TlcValue::Bool(false)),
                Type::Singleton(SingVal::Nil) => Ok(TlcValue::Nil),
                Type::Singleton(SingVal::FloatBits(b)) => {
                    Ok(TlcValue::Int(f64::from_bits(*b) as i64))
                }
                Type::ConstString(id) => match self.store.const_string_value(*id) {
                    Some(s) => Ok(TlcValue::Str(s.to_string())),
                    None => Err(TlcError::new("const string no longer has a known value")),
                },
                other => {
                    Err(TlcError::new(format!("`{}` is not a singleton type", self.show(other))))
                }
            },
            // Finite hash entries as a `symbol => type` hash.
            "elts" | "entries" => match &resolved {
                Type::FiniteHash(id) => {
                    let data = self.store.finite_hash(*id).clone();
                    let pairs = data
                        .entries
                        .iter()
                        .map(|(k, v)| {
                            let key = match k {
                                HashKey::Sym(s) => TlcValue::Sym(s.clone()),
                                HashKey::Str(s) => TlcValue::Str(s.clone()),
                                HashKey::Int(i) => TlcValue::Int(*i),
                            };
                            (key, TlcValue::Type(v.clone()))
                        })
                        .collect();
                    Ok(TlcValue::Hash(pairs))
                }
                other => Err(TlcError::new(format!("`{}` has no elts", self.show(other)))),
            },
            // Generic parameters.
            "params" => match &resolved {
                Type::Generic { args, .. } => {
                    Ok(TlcValue::Array(args.iter().map(|a| TlcValue::Type(a.clone())).collect()))
                }
                other => {
                    Err(TlcError::new(format!("`{}` has no type parameters", self.show(other))))
                }
            },
            "param" => match &resolved {
                Type::Generic { args, .. } if !args.is_empty() => {
                    Ok(TlcValue::Type(args[0].clone()))
                }
                other => {
                    Err(TlcError::new(format!("`{}` has no type parameters", self.show(other))))
                }
            },
            "base" => match &resolved {
                Type::Generic { base, .. } => Ok(TlcValue::ClassRef(base.clone())),
                Type::Nominal(n) => Ok(TlcValue::ClassRef(n.clone())),
                Type::Singleton(SingVal::Class(c)) => Ok(TlcValue::ClassRef(c.clone())),
                other => Err(TlcError::new(format!("`{}` has no base class", self.show(other)))),
            },
            // The union of a finite hash's value types / a Hash generic's
            // value parameter; `Hash<Symbol, Object>` in the fallback case.
            "value_type" => Ok(TlcValue::Type(self.value_type_of(&resolved))),
            "key_type" => Ok(TlcValue::Type(self.key_type_of(&resolved))),
            // The union of a tuple's element types / an Array generic's
            // parameter.
            "elem_type" | "element_type" => Ok(TlcValue::Type(self.elem_type_of(&resolved))),
            // Tuple element list.
            "elems" => match &resolved {
                Type::Tuple(id) => {
                    let data = self.store.tuple(*id).clone();
                    Ok(TlcValue::Array(
                        data.elems.iter().map(|e| TlcValue::Type(e.clone())).collect(),
                    ))
                }
                other => {
                    Err(TlcError::new(format!("`{}` has no tuple elements", self.show(other))))
                }
            },
            // Merge a finite hash type with a hash of additional entries,
            // yielding a new finite hash type (used by `joins`).
            "merge" => {
                let extra = args
                    .first()
                    .cloned()
                    .ok_or_else(|| TlcError::new("merge requires an argument"))?;
                self.merge_types(&resolved, extra)
            }
            // Indexing a finite hash type by a key symbol yields the value
            // type for that key (used by `Hash#[]`'s comp type).
            "[]" => {
                let key = args.first().cloned().unwrap_or(TlcValue::Nil);
                self.index_type(&resolved, key)
            }
            "union" | "union_with" => {
                let other = args
                    .first()
                    .cloned()
                    .ok_or_else(|| TlcError::new("union requires an argument"))?
                    .into_type(self.store)?;
                Ok(TlcValue::Type(Type::union([resolved, other])))
            }
            "canonical" | "to_type" => Ok(TlcValue::Type(resolved)),
            "to_s" | "name" | "inspect" => Ok(TlcValue::Str(resolved.to_string())),
            "keys" => match &resolved {
                Type::FiniteHash(id) => {
                    let data = self.store.finite_hash(*id).clone();
                    Ok(TlcValue::Array(
                        data.entries
                            .iter()
                            .map(|(k, _)| match k {
                                HashKey::Sym(s) => TlcValue::Sym(s.clone()),
                                HashKey::Str(s) => TlcValue::Str(s.clone()),
                                HashKey::Int(i) => TlcValue::Int(*i),
                            })
                            .collect(),
                    ))
                }
                other => Err(TlcError::new(format!("`{}` has no keys", self.show(other)))),
            },
            "size" | "length" => match &resolved {
                Type::Tuple(id) => Ok(TlcValue::Int(self.store.tuple(*id).elems.len() as i64)),
                Type::FiniteHash(id) => {
                    Ok(TlcValue::Int(self.store.finite_hash(*id).entries.len() as i64))
                }
                other => Err(TlcError::new(format!("`{}` has no size", self.show(other)))),
            },
            "subtype_of?" | "<=" => {
                let other = args
                    .first()
                    .cloned()
                    .ok_or_else(|| TlcError::new("subtype_of? requires an argument"))?
                    .into_type(self.store)?;
                let sub = Subtyper::new(self.classes);
                Ok(TlcValue::Bool(sub.is_subtype(self.store, &resolved, &other)))
            }
            other => Err(TlcError::new(format!(
                "unknown method `{other}` on type `{}`",
                self.show(&resolved)
            ))),
        }
    }

    fn value_type_of(&mut self, t: &Type) -> Type {
        match t {
            Type::FiniteHash(id) => {
                let data = self.store.finite_hash(*id);
                Type::union(data.entries.iter().map(|(_, v)| v.clone()))
            }
            Type::Generic { base, args } if base == "Hash" && args.len() == 2 => args[1].clone(),
            _ => Type::object(),
        }
    }

    fn key_type_of(&mut self, t: &Type) -> Type {
        match t {
            Type::FiniteHash(id) => {
                let data = self.store.finite_hash(*id);
                Type::union(data.entries.iter().map(|(k, _)| match k {
                    HashKey::Sym(s) => Type::sym(s.clone()),
                    HashKey::Str(_) => Type::nominal("String"),
                    HashKey::Int(i) => Type::int(*i),
                }))
            }
            Type::Generic { base, args } if base == "Hash" && args.len() == 2 => args[0].clone(),
            _ => Type::object(),
        }
    }

    fn elem_type_of(&mut self, t: &Type) -> Type {
        match t {
            Type::Tuple(id) => {
                let data = self.store.tuple(*id);
                let u = Type::union(data.elems.iter().cloned());
                if u == Type::Bot {
                    Type::object()
                } else {
                    u
                }
            }
            Type::Generic { base, args } if base == "Array" && args.len() == 1 => args[0].clone(),
            _ => Type::object(),
        }
    }

    fn merge_types(&mut self, t: &Type, extra: TlcValue) -> TlcResult {
        let mut entries = match t {
            Type::FiniteHash(id) => self.store.finite_hash(*id).entries.clone(),
            Type::Generic { base, .. } if base == "Hash" => Vec::new(),
            other => {
                return Err(TlcError::new(format!(
                    "cannot merge into non-hash type `{}`",
                    self.show(other)
                )))
            }
        };
        let extra_entries: Vec<(HashKey, Type)> = match extra {
            TlcValue::Hash(pairs) => {
                let mut out = Vec::with_capacity(pairs.len());
                for (k, v) in pairs {
                    let key = match k {
                        TlcValue::Sym(s) => HashKey::Sym(s),
                        TlcValue::Str(s) => HashKey::Str(s),
                        TlcValue::Int(i) => HashKey::Int(i),
                        other => return Err(TlcError::new(format!("invalid hash key {other:?}"))),
                    };
                    out.push((key, v.into_type(self.store)?));
                }
                out
            }
            TlcValue::Type(Type::FiniteHash(id)) => self.store.finite_hash(id).entries.clone(),
            other => return Err(TlcError::new(format!("cannot merge {other:?} into a hash type"))),
        };
        for (k, v) in extra_entries {
            match entries.iter_mut().find(|(ek, _)| *ek == k) {
                Some(slot) => slot.1 = v,
                None => entries.push((k, v)),
            }
        }
        Ok(TlcValue::Type(self.store.new_finite_hash(entries)))
    }

    fn index_type(&mut self, t: &Type, key: TlcValue) -> TlcResult {
        match t {
            Type::FiniteHash(id) => {
                let hk = match &key {
                    TlcValue::Sym(s) => HashKey::Sym(s.clone()),
                    TlcValue::Str(s) => HashKey::Str(s.clone()),
                    TlcValue::Int(i) => HashKey::Int(*i),
                    TlcValue::Type(Type::Singleton(SingVal::Sym(s))) => HashKey::Sym(s.clone()),
                    TlcValue::Type(Type::Singleton(SingVal::Int(i))) => HashKey::Int(*i),
                    other => return Err(TlcError::new(format!("invalid hash key {other:?}"))),
                };
                match self.store.finite_hash(*id).get(&hk) {
                    Some(v) => Ok(TlcValue::Type(v.clone())),
                    None => Ok(TlcValue::Type(Type::nil())),
                }
            }
            Type::Tuple(id) => match key {
                TlcValue::Int(i) | TlcValue::Type(Type::Singleton(SingVal::Int(i))) => {
                    let data = self.store.tuple(*id);
                    let idx = if i < 0 { data.elems.len() as i64 + i } else { i };
                    match data.elems.get(idx.max(0) as usize) {
                        Some(t) => Ok(TlcValue::Type(t.clone())),
                        None => Ok(TlcValue::Type(Type::nil())),
                    }
                }
                other => Err(TlcError::new(format!("invalid tuple index {other:?}"))),
            },
            Type::Generic { base, args } if base == "Hash" && args.len() == 2 => {
                Ok(TlcValue::Type(args[1].clone()))
            }
            Type::Generic { base, args } if base == "Array" && args.len() == 1 => {
                Ok(TlcValue::Type(args[0].clone()))
            }
            other => Err(TlcError::new(format!("cannot index type `{}`", self.show(other)))),
        }
    }

    fn hash_method(
        &mut self,
        pairs: &[(TlcValue, TlcValue)],
        name: &str,
        args: &[TlcValue],
    ) -> TlcResult {
        match name {
            "[]" => {
                let key = args.first().cloned().unwrap_or(TlcValue::Nil);
                Ok(pairs
                    .iter()
                    .find(|(k, _)| k.type_equal(&key))
                    .map(|(_, v)| v.clone())
                    .unwrap_or(TlcValue::Nil))
            }
            "merge" => {
                let mut out = pairs.to_vec();
                if let Some(TlcValue::Hash(other)) = args.first() {
                    for (k, v) in other {
                        match out.iter_mut().find(|(ek, _)| ek.type_equal(k)) {
                            Some(slot) => slot.1 = v.clone(),
                            None => out.push((k.clone(), v.clone())),
                        }
                    }
                }
                Ok(TlcValue::Hash(out))
            }
            "keys" => Ok(TlcValue::Array(pairs.iter().map(|(k, _)| k.clone()).collect())),
            "values" => Ok(TlcValue::Array(pairs.iter().map(|(_, v)| v.clone()).collect())),
            "key?" | "has_key?" | "include?" => {
                let key = args.first().cloned().unwrap_or(TlcValue::Nil);
                Ok(TlcValue::Bool(pairs.iter().any(|(k, _)| k.type_equal(&key))))
            }
            "size" | "length" => Ok(TlcValue::Int(pairs.len() as i64)),
            "empty?" => Ok(TlcValue::Bool(pairs.is_empty())),
            "to_type" => TlcValue::Hash(pairs.to_vec()).into_type(self.store).map(TlcValue::Type),
            other => Err(TlcError::new(format!("unknown method `{other}` on type-level hash"))),
        }
    }

    fn array_method(&mut self, items: &[TlcValue], name: &str, args: &[TlcValue]) -> TlcResult {
        match name {
            "[]" | "at" => {
                let i = expect_int(args, 0)?;
                let idx = if i < 0 { items.len() as i64 + i } else { i };
                Ok(items.get(idx.max(0) as usize).cloned().unwrap_or(TlcValue::Nil))
            }
            "first" => Ok(items.first().cloned().unwrap_or(TlcValue::Nil)),
            "last" => Ok(items.last().cloned().unwrap_or(TlcValue::Nil)),
            "size" | "length" => Ok(TlcValue::Int(items.len() as i64)),
            "empty?" => Ok(TlcValue::Bool(items.is_empty())),
            "include?" => {
                let target = args.first().cloned().unwrap_or(TlcValue::Nil);
                Ok(TlcValue::Bool(items.iter().any(|i| i.type_equal(&target))))
            }
            "union_type" => {
                let mut types = Vec::new();
                for item in items {
                    types.push(item.clone().into_type(self.store)?);
                }
                Ok(TlcValue::Type(Type::union(types)))
            }
            other => Err(TlcError::new(format!("unknown method `{other}` on type-level array"))),
        }
    }

    fn string_method(&mut self, s: &str, name: &str, args: &[TlcValue]) -> TlcResult {
        match name {
            "to_sym" => Ok(TlcValue::Sym(s.to_string())),
            "to_s" => Ok(TlcValue::Str(s.to_string())),
            "upcase" => Ok(TlcValue::Str(s.to_uppercase())),
            "downcase" => Ok(TlcValue::Str(s.to_lowercase())),
            "length" | "size" => Ok(TlcValue::Int(s.chars().count() as i64)),
            "include?" => match args.first() {
                Some(TlcValue::Str(n)) => Ok(TlcValue::Bool(s.contains(n))),
                _ => Ok(TlcValue::Bool(false)),
            },
            "+" => match args.first() {
                Some(TlcValue::Str(o)) => Ok(TlcValue::Str(format!("{s}{o}"))),
                _ => Err(TlcError::new("String#+ requires a string")),
            },
            other => Err(TlcError::new(format!("unknown method `{other}` on type-level string"))),
        }
    }
}

fn expect_int(args: &[TlcValue], i: usize) -> TlcResult<i64> {
    match args.get(i) {
        Some(TlcValue::Int(n)) => Ok(*n),
        other => Err(TlcError::new(format!("expected an integer argument, got {other:?}"))),
    }
}

fn expect_class_name(args: &[TlcValue], i: usize) -> TlcResult<String> {
    match args.get(i) {
        Some(TlcValue::ClassRef(c)) => Ok(c.clone()),
        Some(TlcValue::Str(s)) => Ok(s.clone()),
        Some(TlcValue::Sym(s)) => Ok(s.clone()),
        Some(TlcValue::MetaClass(_)) | None => Err(TlcError::new("expected a class name argument")),
        Some(other) => Err(TlcError::new(format!("expected a class name, got {other:?}"))),
    }
}

/// Evaluates a comp-type expression with the given bindings and converts the
/// result to a [`Type`].
///
/// # Errors
///
/// Returns a [`TlcError`] if evaluation fails or the result does not denote
/// a type.
pub fn eval_comp_type(
    store: &mut TypeStore,
    classes: &ClassTable,
    helpers: &HelperRegistry,
    bindings: HashMap<String, TlcValue>,
    expr: &Expr,
) -> Result<Type, TlcError> {
    let mut ctx = TlcCtx::new(store, classes, helpers, bindings);
    let value = ctx.eval(expr)?;
    value.into_type(ctx.store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruby_syntax::parse_expr;

    fn eval_with(
        bindings: Vec<(&str, TlcValue)>,
        helpers: &HelperRegistry,
        store: &mut TypeStore,
        src: &str,
    ) -> Result<Type, TlcError> {
        let classes = ClassTable::with_builtins();
        let expr = parse_expr(src).expect("parse");
        let bindings = bindings.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        eval_comp_type(store, &classes, helpers, bindings, &expr)
    }

    #[test]
    fn literal_and_constructor_forms() {
        let helpers = HelperRegistry::new();
        let mut store = TypeStore::new();
        assert_eq!(
            eval_with(vec![], &helpers, &mut store, "Nominal.new(Table)").unwrap(),
            Type::nominal("Table")
        );
        assert_eq!(
            eval_with(vec![], &helpers, &mut store, "Singleton.new(:emails)").unwrap(),
            Type::sym("emails")
        );
        let t = eval_with(vec![], &helpers, &mut store, "Generic.new(Array, Nominal.new(String))")
            .unwrap();
        assert_eq!(t, Type::array(Type::nominal("String")));
        let u = eval_with(
            vec![],
            &helpers,
            &mut store,
            "Union.new(Nominal.new(Integer), Nominal.new(String))",
        )
        .unwrap();
        assert!(matches!(u, Type::Union(_)));
    }

    #[test]
    fn conditional_on_singleton_receiver() {
        // The Bool.∧ example from §3.1.
        let helpers = HelperRegistry::new();
        let mut store = TypeStore::new();
        let src = "if (tself == Singleton.new(true)) && (a == Singleton.new(true))\n\
                     Singleton.new(true)\n\
                   elsif (tself == Singleton.new(false)) || (a == Singleton.new(false))\n\
                     Singleton.new(false)\n\
                   else\n\
                     Boolean\n\
                   end";
        let t = eval_with(
            vec![
                ("tself", TlcValue::Type(Type::Singleton(SingVal::True))),
                ("a", TlcValue::Type(Type::Singleton(SingVal::True))),
            ],
            &helpers,
            &mut store,
            src,
        )
        .unwrap();
        assert_eq!(t, Type::Singleton(SingVal::True));
        let t = eval_with(
            vec![
                ("tself", TlcValue::Type(Type::Bool)),
                ("a", TlcValue::Type(Type::Singleton(SingVal::True))),
            ],
            &helpers,
            &mut store,
            src,
        )
        .unwrap();
        assert_eq!(t, Type::Bool);
    }

    #[test]
    fn finite_hash_indexing_comp_type() {
        // The Hash#[] comp type from §2.2.
        let helpers = HelperRegistry::new();
        let mut store = TypeStore::new();
        let page_ty = store.new_finite_hash(vec![
            (HashKey::Sym("info".into()), Type::array(Type::nominal("String"))),
            (HashKey::Sym("title".into()), Type::nominal("String")),
        ]);
        let src = "if tself.is_a?(FiniteHash) && t.is_a?(Singleton)\n\
                     tself.elts[t.val]\n\
                   else\n\
                     tself.value_type\n\
                   end";
        let t = eval_with(
            vec![
                ("tself", TlcValue::Type(page_ty.clone())),
                ("t", TlcValue::Type(Type::sym("info"))),
            ],
            &helpers,
            &mut store,
            src,
        )
        .unwrap();
        assert_eq!(t, Type::array(Type::nominal("String")));
        // Fallback arm: a plain Hash<Symbol, String> receiver.
        let t = eval_with(
            vec![
                (
                    "tself",
                    TlcValue::Type(Type::hash(Type::nominal("Symbol"), Type::nominal("String"))),
                ),
                ("t", TlcValue::Type(Type::nominal("Symbol"))),
            ],
            &helpers,
            &mut store,
            src,
        )
        .unwrap();
        assert_eq!(t, Type::nominal("String"));
    }

    #[test]
    fn merge_builds_joined_schema() {
        let helpers = HelperRegistry::new();
        let mut store = TypeStore::new();
        let users = store.new_finite_hash(vec![
            (HashKey::Sym("id".into()), Type::nominal("Integer")),
            (HashKey::Sym("username".into()), Type::nominal("String")),
        ]);
        let emails =
            store.new_finite_hash(vec![(HashKey::Sym("email".into()), Type::nominal("String"))]);
        let src = "Generic.new(Table, tself.merge({ t.val => targ }))";
        let expr = parse_expr(src).unwrap();
        let classes = ClassTable::with_builtins();
        let mut bindings = HashMap::new();
        bindings.insert("tself".to_string(), TlcValue::Type(users));
        bindings.insert("t".to_string(), TlcValue::Type(Type::sym("emails")));
        bindings.insert("targ".to_string(), TlcValue::Type(emails));
        let t = eval_comp_type(&mut store, &classes, &helpers, bindings, &expr).unwrap();
        match t {
            Type::Generic { base, args } => {
                assert_eq!(base, "Table");
                let Type::FiniteHash(id) = args[0] else { panic!("expected a finite hash") };
                let data = store.finite_hash(id);
                assert_eq!(data.entries.len(), 3);
                assert!(data.get(&HashKey::Sym("emails".into())).is_some());
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn native_and_ruby_helpers() {
        let mut helpers = HelperRegistry::new();
        helpers.register_native("always_string", |_ctx, _args| {
            Ok(TlcValue::Type(Type::nominal("String")))
        });
        helpers
            .register_ruby(
                "def pick(t)\n  if t.is_a?(Singleton) then t else Nominal.new(Object) end\nend\n",
            )
            .unwrap();
        assert_eq!(helpers.len(), 2);
        assert!(helpers.contains("pick"));
        assert!(helpers.ruby_loc() >= 3);

        let mut store = TypeStore::new();
        assert_eq!(
            eval_with(vec![], &helpers, &mut store, "always_string()").unwrap(),
            Type::nominal("String")
        );
        assert_eq!(
            eval_with(vec![("x", TlcValue::Type(Type::sym("a")))], &helpers, &mut store, "pick(x)")
                .unwrap(),
            Type::sym("a")
        );
        assert_eq!(
            eval_with(
                vec![("x", TlcValue::Type(Type::nominal("String")))],
                &helpers,
                &mut store,
                "pick(x)"
            )
            .unwrap(),
            Type::nominal("Object")
        );
    }

    #[test]
    fn loops_and_unknown_helpers_are_rejected() {
        let helpers = HelperRegistry::new();
        let mut store = TypeStore::new();
        assert!(eval_with(vec![], &helpers, &mut store, "while true\n 1\nend").is_err());
        assert!(eval_with(vec![], &helpers, &mut store, "mystery_helper(1)").is_err());
    }

    #[test]
    fn recursion_is_cut_off_by_fuel() {
        let mut helpers = HelperRegistry::new();
        helpers.register_ruby("def loop_forever(t)\n  loop_forever(t)\nend\n").unwrap();
        let mut store = TypeStore::new();
        let err = eval_with(
            vec![("x", TlcValue::Type(Type::Top))],
            &helpers,
            &mut store,
            "loop_forever(x)",
        )
        .unwrap_err();
        assert!(err.message.contains("step budget"));
        // The whole evaluation shares one budget, so the report must name
        // the helper that was burning it and point at its definition.
        assert!(err.message.contains("loop_forever"), "{}", err.message);
        assert!(err.span.is_some(), "exhaustion must carry the helper's span");
    }

    #[test]
    fn fuel_exhaustion_names_the_running_helper() {
        // Mutually recursive helpers exhaust the shared budget; the error
        // must blame one of the helpers involved, not the outer comp type.
        let mut helpers = HelperRegistry::new();
        helpers
            .register_ruby("def spin(t)\n  spin2(t)\nend\ndef spin2(t)\n  spin(t)\nend\n")
            .unwrap();
        let mut store = TypeStore::new();
        let err =
            eval_with(vec![("x", TlcValue::Type(Type::Top))], &helpers, &mut store, "spin(x)")
                .unwrap_err();
        assert!(err.message.contains("step budget"), "{}", err.message);
        assert!(
            err.message.contains("spin"),
            "expected the originating helper's name in: {}",
            err.message
        );
        assert!(err.span.is_some());
    }

    #[test]
    fn helper_registry_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HelperRegistry>();
        assert_send_sync::<crate::env::CompRdl>();
    }

    #[test]
    fn tuple_first_comp_type() {
        let helpers = HelperRegistry::new();
        let mut store = TypeStore::new();
        let tuple = store.new_tuple(vec![Type::nominal("Integer"), Type::nominal("String")]);
        let src = "if tself.is_a?(Tuple) then tself.elems.first else tself.elem_type end";
        let t =
            eval_with(vec![("tself", TlcValue::Type(tuple))], &helpers, &mut store, src).unwrap();
        assert_eq!(t, Type::nominal("Integer"));
        let t = eval_with(
            vec![("tself", TlcValue::Type(Type::array(Type::Bool)))],
            &helpers,
            &mut store,
            src,
        )
        .unwrap();
        assert_eq!(t, Type::Bool);
    }

    #[test]
    fn is_a_against_ordinary_classes() {
        let helpers = HelperRegistry::new();
        let mut store = TypeStore::new();
        let src = "if t.is_a?(Symbol) then Singleton.new(:ok) else Nominal.new(String) end";
        let t = eval_with(vec![("t", TlcValue::Type(Type::sym("x")))], &helpers, &mut store, src)
            .unwrap();
        assert_eq!(t, Type::sym("ok"));
        let t = eval_with(
            vec![("t", TlcValue::Type(Type::nominal("Integer")))],
            &helpers,
            &mut store,
            src,
        )
        .unwrap();
        assert_eq!(t, Type::nominal("String"));
    }
}
