//! The CompRDL static type checker.
//!
//! Given a Ruby-subset [`Program`], a set of method type annotations (some
//! of which use comp types), and a selection of methods to check, the
//! checker:
//!
//! * type checks each selected method body against its signature,
//! * evaluates comp types at library call sites to obtain precise argument
//!   and return types (paper §2.1–§2.3),
//! * runs the termination checker on every comp type it evaluates (§4),
//! * records the dynamic checks that must be inserted at calls to
//!   non-type-checked library methods (§2.4, §3.2),
//! * performs weak updates (with constraint replay) when tuple / finite hash
//!   / const string typed values are mutated (§4), and
//! * accounts for type casts: explicit `RDL.type_cast` calls and the
//!   implicit casts that *would* be required when precision is lost
//!   (used to reproduce the "Casts" vs "Casts (RDL)" columns of Table 2).

use crate::cache::{CacheKey, CacheStats, CompPosition, CompTypeCache};
use crate::env::CompRdl;
use crate::runtime::{ConsistencyCheck, InsertedCheck};
use crate::termination::{EffectViolation, InferredEffect, TerminationChecker};
use crate::tlc::{eval_comp_type, TlcError, TlcValue};
use rdl_types::{
    HashKey, MethodKind, MethodSig, ParamSig, SingVal, Subtyper, Type, TypeExpr, TypeStore,
};
use ruby_syntax::{BinOp, Expr, ExprKind, LValue, MethodDef, Program, Span};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// What kind of type error was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCategory {
    /// A reference to an undefined constant (e.g. the Journey `Field` bug).
    UndefinedConstant,
    /// A call to a method the receiver's type does not have.
    NoMethod,
    /// An argument's type does not match the (possibly computed) parameter
    /// type.
    ArgumentType,
    /// The method body's type does not match its declared return type
    /// (e.g. the Code.org `current_user` documentation bug).
    ReturnType,
    /// A comp type failed to evaluate.
    CompType,
    /// A weak update invalidated a previously asserted constraint.
    WeakUpdate,
    /// Type-level code failed the termination / purity check.
    Termination,
    /// Wrong number of arguments.
    Arity,
    /// An embedded SQL string failed to type check (§2.3).
    Sql,
}

impl ErrorCategory {
    /// Stable diagnostic code for this category of type error.
    pub fn code(self) -> &'static str {
        match self {
            ErrorCategory::UndefinedConstant => "TYP0001",
            ErrorCategory::NoMethod => "TYP0002",
            ErrorCategory::ArgumentType => "TYP0003",
            ErrorCategory::ReturnType => "TYP0004",
            ErrorCategory::CompType => "TYP0005",
            ErrorCategory::WeakUpdate => "TYP0006",
            ErrorCategory::Termination => "TYP0007",
            ErrorCategory::Arity => "TYP0008",
            ErrorCategory::Sql => "TYP0009",
        }
    }
}

/// A type error found by the checker.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeErrorInfo {
    /// Which category of error.
    pub category: ErrorCategory,
    /// Class owning the method being checked.
    pub class: String,
    /// Name of the method being checked.
    pub method: String,
    /// Human readable message.
    pub message: String,
    /// Where in the checked source the error points.
    pub span: Span,
}

impl TypeErrorInfo {
    /// 1-based source line of the error (the start of its span).
    pub fn line(&self) -> u32 {
        self.span.line
    }
}

impl fmt::Display for TypeErrorInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}#{} (line {}): {:?}: {}",
            self.class, self.method, self.span.line, self.category, self.message
        )
    }
}

impl std::error::Error for TypeErrorInfo {}

impl From<TypeErrorInfo> for diagnostics::Diagnostic {
    fn from(e: TypeErrorInfo) -> Self {
        diagnostics::Diagnostic::error(e.category.code(), e.message.clone())
            .with_label(e.span, format!("while checking `{}#{}`", e.class, e.method))
    }
}

/// Options controlling a checking run.
#[derive(Debug, Clone, Copy)]
pub struct CheckOptions {
    /// Evaluate comp types (`true`) or fall back to their static bounds as
    /// plain RDL would (`false`).
    pub use_comp_types: bool,
    /// When precision is lost (receiver or argument typed `Object`,
    /// `%dyn`, a union, or a promoted container), silently count an
    /// *implicit cast* instead of reporting an error — this models the cast
    /// a programmer would have to insert and is how the "Casts (RDL)" column
    /// is produced.
    pub count_implicit_casts: bool,
    /// Run the termination checker on every comp type evaluated.
    pub check_termination: bool,
    /// Memoize comp-type evaluations keyed on (method, resolved receiver
    /// type, resolved argument types); see [`crate::cache`].  Disable to get
    /// the paper's re-evaluate-at-every-call-site behaviour (the baseline
    /// the `cached_vs_uncached` bench compares against).
    pub use_eval_cache: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            use_comp_types: true,
            count_implicit_casts: true,
            check_termination: true,
            use_eval_cache: true,
        }
    }
}

/// Results for a single checked method.
#[derive(Debug, Clone)]
pub struct MethodCheckResult {
    /// Owning class.
    pub class: String,
    /// Method name.
    pub method: String,
    /// Whether the method is a class (singleton) method.
    pub singleton: bool,
    /// Errors found.
    pub errors: Vec<TypeErrorInfo>,
    /// Number of explicit `RDL.type_cast` calls in the body.
    pub explicit_casts: usize,
    /// Number of implicit casts that had to be assumed (precision losses).
    pub implicit_casts: usize,
    /// Dynamic checks to insert for this method's call sites.
    pub checks: Vec<InsertedCheck>,
    /// Lines of code of the method body.
    pub loc: usize,
}

/// Results for a whole checking run.
#[derive(Debug)]
pub struct ProgramCheckResult {
    /// Per-method results.
    pub methods: Vec<MethodCheckResult>,
    /// The type store built during checking (needed by the dynamic-check
    /// hook so inserted checks can resolve store-backed types).
    pub store: TypeStore,
    /// Comp-type evaluation cache counters for the run (summed across
    /// workers for a parallel run; all zeros when the cache is disabled).
    pub cache_stats: CacheStats,
}

impl ProgramCheckResult {
    /// All errors across methods.
    pub fn errors(&self) -> Vec<&TypeErrorInfo> {
        self.methods.iter().flat_map(|m| m.errors.iter()).collect()
    }

    /// Total number of explicit casts.
    pub fn explicit_casts(&self) -> usize {
        self.methods.iter().map(|m| m.explicit_casts).sum()
    }

    /// Total number of implicit casts (precision losses).
    pub fn implicit_casts(&self) -> usize {
        self.methods.iter().map(|m| m.implicit_casts).sum()
    }

    /// Total casts a programmer would need (explicit + implicit).
    pub fn total_casts(&self) -> usize {
        self.explicit_casts() + self.implicit_casts()
    }

    /// All dynamic checks to insert.
    pub fn checks(&self) -> Vec<InsertedCheck> {
        self.methods.iter().flat_map(|m| m.checks.iter().cloned()).collect()
    }

    /// Number of methods checked.
    pub fn methods_checked(&self) -> usize {
        self.methods.len()
    }

    /// Total lines of code across checked methods.
    pub fn total_loc(&self) -> usize {
        self.methods.iter().map(|m| m.loc).sum()
    }
}

/// The type checker.
///
/// The environment (`env`) and program are shared, immutable inputs; the
/// store, termination checker and comp-type cache are the run's mutable
/// state.  A parallel run ([`TypeChecker::check_labeled_parallel`]) gives
/// every worker thread its own `TypeChecker` over the same shared inputs
/// and merges the per-worker stores afterwards.
pub struct TypeChecker<'a> {
    env: &'a CompRdl,
    program: &'a Program,
    options: CheckOptions,
    store: TypeStore,
    termination: TerminationChecker,
    cache: CompTypeCache,
    /// Memoized [`crate::semdep::comp_semantic_hash`] per comp-type slot.
    /// The expression and helper registry are immutable for the lifetime of
    /// a run, so the hash is computed once per slot, not once per call site.
    slot_semantics: HashMap<(String, String, CompPosition), u64>,
}

struct MethodCtx {
    class: String,
    method: String,
    singleton: bool,
    locals: HashMap<String, Type>,
    errors: Vec<TypeErrorInfo>,
    explicit_casts: usize,
    implicit_casts: usize,
    checks: Vec<InsertedCheck>,
    return_types: Vec<Type>,
    block_param_types: HashMap<String, Type>,
}

impl<'a> TypeChecker<'a> {
    /// Creates a checker for `program` using the annotations, helpers and
    /// class table in `env`.
    pub fn new(env: &'a CompRdl, program: &'a Program, options: CheckOptions) -> Self {
        let mut termination = TerminationChecker::with_builtins();
        for ((_, _, name), sig) in env.annotations.iter() {
            termination.env_mut().set(name, sig.term, sig.purity);
        }
        for name in env.helpers.names() {
            termination.env_mut().set(
                &name,
                rdl_types::TermEffect::Terminates,
                rdl_types::PurityEffect::Pure,
            );
        }
        TypeChecker {
            env,
            program,
            options,
            store: TypeStore::new(),
            termination,
            cache: CompTypeCache::new(),
            slot_semantics: HashMap::new(),
        }
    }

    /// Installs interprocedural effect summaries (see
    /// `termination::InferredEffect`) below the explicit layer of this
    /// checker's effect environment: annotations, builtins and registered
    /// helpers still win, but un-annotated methods with a summary become
    /// callable from type-level code, and violations on summarized-bad
    /// methods render the inferred blame chain.
    pub fn install_inferred_effects(&mut self, effects: &[InferredEffect]) {
        self.termination.env_mut().install_inferred(effects.iter().cloned());
    }

    /// Compares every explicit `terminates:`/`pure:` annotation in `env`
    /// against the inferred summaries and returns the `TERM0004`
    /// annotation-conflict warnings (annotated strictly stronger than
    /// inferred), each anchored at the annotated method's definition span.
    /// Output is sorted by (class, method) so it is deterministic
    /// regardless of annotation-table iteration order.
    ///
    /// Only annotations whose `(class, kind, name)` the program *defines*
    /// are compared: a core-library annotation (say, a pure `where`) must
    /// not conflict with an unrelated same-named method an app defines on
    /// its own class.  The summary lookup itself stays name-keyed — the
    /// same pessimistic-join approximation the effect environment uses
    /// everywhere else — so a conflict means "some program method by this
    /// name is inferred weaker than this annotation claims".
    pub fn effect_conflicts(
        env: &CompRdl,
        program: &Program,
        effects: &[InferredEffect],
    ) -> Vec<EffectViolation> {
        let mut inferred = crate::termination::EffectEnv::new();
        inferred.install_inferred(effects.iter().cloned());
        let mut annotated: Vec<_> = env.annotations.iter().collect();
        annotated.sort_by_key(|((class, kind, name), _)| {
            (class.clone(), name.clone(), *kind == MethodKind::Singleton)
        });
        let mut out = Vec::new();
        for ((class, kind, name), sig) in annotated {
            let singleton = *kind == MethodKind::Singleton;
            let Some((_, def)) = program.methods().into_iter().find(|(owner, def)| {
                def.name == *name && def.singleton == singleton && owner == class
            }) else {
                continue;
            };
            let Some(inf) = inferred.inferred(name) else { continue };
            out.extend(crate::termination::annotation_conflicts(
                name, sig.term, sig.purity, inf, def.span,
            ));
        }
        out
    }

    fn slot_semantic_hash(
        &mut self,
        owner: &str,
        method: &str,
        position: CompPosition,
        expr: &Expr,
    ) -> u64 {
        let key = (owner.to_string(), method.to_string(), position);
        if let Some(&h) = self.slot_semantics.get(&key) {
            return h;
        }
        let h = crate::semdep::comp_semantic_hash(expr, &self.env.helpers);
        self.slot_semantics.insert(key, h);
        h
    }

    /// The methods `check_labeled` selects, in program order.  Poisoned
    /// methods (parse recovery replaced their body with an error
    /// placeholder) are excluded: their one `PARSE0002` diagnostic already
    /// covers them, and checking a placeholder body would only manufacture
    /// spurious type errors on top of the syntax error.
    fn select_labeled<'p>(
        env: &CompRdl,
        program: &'p Program,
        label: &str,
    ) -> Vec<(String, &'p MethodDef)> {
        program
            .methods()
            .into_iter()
            .filter(|(owner, def)| {
                if def.poisoned {
                    return false;
                }
                let kind = if def.singleton { MethodKind::Singleton } else { MethodKind::Instance };
                env.annotations
                    .lookup(&env.classes, owner, kind, &def.name)
                    .map(|(_, sig)| sig.typecheck_label.as_deref() == Some(label))
                    .unwrap_or(false)
            })
            .collect()
    }

    /// The methods a `check_labeled(label)` run would select, in program
    /// order.  Exposed so incremental drivers (see `corpus::incremental`)
    /// can partition the work list into replayable and must-check subsets
    /// before deciding what to hand to [`TypeChecker::check_methods`].
    pub fn labeled_methods<'p>(
        env: &CompRdl,
        program: &'p Program,
        label: &str,
    ) -> Vec<(String, &'p MethodDef)> {
        Self::select_labeled(env, program, label)
    }

    /// Checks exactly the given `(owner, def)` methods, in the given order.
    ///
    /// This is the incremental entry point: a driver that replays cached
    /// verdicts for unchanged methods calls this with only the methods whose
    /// Merkle hash moved.  Each method is checked exactly as
    /// [`TypeChecker::check_labeled`] would have checked it.
    pub fn check_methods(mut self, selected: &[(String, &MethodDef)]) -> ProgramCheckResult {
        let mut methods = Vec::new();
        for (owner, def) in selected {
            methods.push(self.check_method_def(owner, def));
        }
        ProgramCheckResult { methods, store: self.store, cache_stats: self.cache.stats() }
    }

    /// Checks every method in the program that carries a `typecheck:` label
    /// in its annotation, mirroring `RDL.do_typecheck`.
    pub fn check_labeled(mut self, label: &str) -> ProgramCheckResult {
        let selected = Self::select_labeled(self.env, self.program, label);
        let mut methods = Vec::new();
        for (owner, def) in selected {
            methods.push(self.check_method_def(&owner, def));
        }
        ProgramCheckResult { methods, store: self.store, cache_stats: self.cache.stats() }
    }

    /// Like [`TypeChecker::check_labeled`], but checks methods concurrently:
    /// `threads` scoped workers pull methods off a shared work queue
    /// (work stealing — a worker that finishes a cheap method immediately
    /// grabs the next), each with its own [`TypeStore`] and comp-type cache,
    /// while the class table, annotations and helpers are shared by
    /// reference.  Per-worker stores are merged afterwards (shifting the
    /// store ids referenced by the inserted dynamic checks), and the
    /// per-method results are returned in program order, so the output is
    /// deterministic regardless of how the work was distributed.
    pub fn check_labeled_parallel(
        env: &CompRdl,
        program: &Program,
        options: CheckOptions,
        label: &str,
        threads: usize,
    ) -> ProgramCheckResult {
        Self::check_labeled_parallel_with_effects(env, program, options, label, threads, &[])
    }

    /// Like [`TypeChecker::check_labeled_parallel`], but installs the given
    /// inferred effect summaries into every worker's effect environment
    /// (below the explicit layer) before checking.  `CheckOptions` is a
    /// `Copy` bag of flags, so the summaries travel as a separate argument
    /// shared by reference across the worker threads.
    pub fn check_labeled_parallel_with_effects(
        env: &CompRdl,
        program: &Program,
        options: CheckOptions,
        label: &str,
        threads: usize,
        effects: &[InferredEffect],
    ) -> ProgramCheckResult {
        let selected = Self::select_labeled(env, program, label);
        let workers = threads.clamp(1, selected.len().max(1));
        if workers <= 1 {
            let mut checker = TypeChecker::new(env, program, options);
            checker.install_inferred_effects(effects);
            return checker.check_labeled(label);
        }

        // One worker's output: indexed method results, its private store,
        // and its cache counters.
        type WorkerOutput = (Vec<(usize, MethodCheckResult)>, TypeStore, CacheStats);
        let next = AtomicUsize::new(0);
        let selected_ref = &selected;
        let worker_outputs: Vec<WorkerOutput> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    scope.spawn(move || {
                        let mut checker = TypeChecker::new(env, program, options);
                        checker.install_inferred_effects(effects);
                        let mut out = Vec::new();
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            let Some((owner, def)) = selected_ref.get(idx) else { break };
                            out.push((idx, checker.check_method_def(owner, def)));
                        }
                        (out, checker.store, checker.cache.stats())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("checker worker panicked")).collect()
        });

        let mut store = TypeStore::new();
        let mut cache_stats = CacheStats::default();
        let mut merged: Vec<Option<MethodCheckResult>> =
            (0..selected.len()).map(|_| None).collect();
        for (results, worker_store, worker_stats) in worker_outputs {
            let shift = store.absorb(worker_store);
            cache_stats = cache_stats.merged(worker_stats);
            for (idx, mut result) in results {
                for check in &mut result.checks {
                    check.expected_return = shift.apply(&check.expected_return);
                    if let Some(consistency) = &mut check.consistency {
                        consistency.expected = shift.apply(&consistency.expected);
                    }
                }
                merged[idx] = Some(result);
            }
        }
        ProgramCheckResult { methods: merged.into_iter().flatten().collect(), store, cache_stats }
    }

    /// Checks all annotated methods defined in the program (any label).
    /// Poisoned methods are skipped, as in `check_labeled`.
    pub fn check_all_annotated(mut self) -> ProgramCheckResult {
        let mut methods = Vec::new();
        for (owner, def) in self.program.methods() {
            if def.poisoned {
                continue;
            }
            let kind = if def.singleton { MethodKind::Singleton } else { MethodKind::Instance };
            if self.env.annotations.lookup(&self.env.classes, &owner, kind, &def.name).is_some() {
                methods.push(self.check_method_def(&owner, def));
            }
        }
        ProgramCheckResult { methods, store: self.store, cache_stats: self.cache.stats() }
    }

    /// Checks a single method definition.
    pub fn check_single(mut self, owner: &str, def: &MethodDef) -> ProgramCheckResult {
        let result = self.check_method_def(owner, def);
        ProgramCheckResult {
            methods: vec![result],
            store: self.store,
            cache_stats: self.cache.stats(),
        }
    }

    fn check_method_def(&mut self, owner: &str, def: &MethodDef) -> MethodCheckResult {
        let kind = if def.singleton { MethodKind::Singleton } else { MethodKind::Instance };
        let sig = self
            .env
            .annotations
            .lookup(&self.env.classes, owner, kind, &def.name)
            .map(|(_, sig)| sig.clone());

        let mut ctx = MethodCtx {
            class: owner.to_string(),
            method: def.name.clone(),
            singleton: def.singleton,
            locals: HashMap::new(),
            errors: Vec::new(),
            explicit_casts: 0,
            implicit_casts: 0,
            checks: Vec::new(),
            return_types: Vec::new(),
            block_param_types: HashMap::new(),
        };

        // Bind parameters from the signature (or Dynamic when unannotated).
        let declared_ret = match &sig {
            Some(sig) => {
                for (i, p) in def.params.iter().enumerate() {
                    let ty = sig
                        .params
                        .get(i)
                        .map(|ps| self.instantiate_param(ps))
                        .unwrap_or(Type::Dynamic);
                    ctx.locals.insert(p.name.clone(), ty);
                }
                self.instantiate(&sig.ret)
            }
            None => {
                for p in &def.params {
                    ctx.locals.insert(p.name.clone(), Type::Dynamic);
                }
                Type::Dynamic
            }
        };

        // Check the body.
        let mut body_ty = Type::nil();
        for e in &def.body {
            body_ty = self.infer(&mut ctx, e);
        }

        // The method's result is the join of the final expression and every
        // `return`.
        let sub = Subtyper::new(&self.env.classes);
        let mut result_ty = body_ty;
        for t in ctx.return_types.clone() {
            result_ty = sub.lub(&self.store, &result_ty, &t);
        }
        if !matches!(declared_ret, Type::Dynamic) {
            let ok = sub.is_subtype(&self.store, &result_ty, &declared_ret);
            if !ok && self.is_imprecise(&result_ty) && self.options.count_implicit_casts {
                // A cast on the returned expression would make this check —
                // count it rather than reporting a (false positive) error.
                ctx.implicit_casts += 1;
            } else if !ok {
                ctx.errors.push(TypeErrorInfo {
                    category: ErrorCategory::ReturnType,
                    class: ctx.class.clone(),
                    method: ctx.method.clone(),
                    message: format!(
                        "body has type `{}` but the method is declared to return `{}`",
                        self.store.render(&result_ty),
                        self.store.render(&declared_ret)
                    ),
                    span: def.span,
                });
            }
        }

        MethodCheckResult {
            class: ctx.class,
            method: ctx.method,
            singleton: ctx.singleton,
            errors: ctx.errors,
            explicit_casts: ctx.explicit_casts,
            implicit_casts: ctx.implicit_casts,
            checks: ctx.checks,
            loc: def
                .body
                .iter()
                .map(|e| e.span.line)
                .collect::<std::collections::BTreeSet<_>>()
                .len()
                + 2,
        }
    }

    fn instantiate(&mut self, te: &TypeExpr) -> Type {
        te.instantiate(&mut self.store)
    }

    fn instantiate_param(&mut self, ps: &ParamSig) -> Type {
        match self.instantiate(&ps.ty) {
            Type::Optional(inner) | Type::Vararg(inner) => *inner,
            other => other,
        }
    }

    fn self_type(&self, ctx: &MethodCtx) -> Type {
        if ctx.singleton {
            Type::class_of(ctx.class.clone())
        } else {
            Type::nominal(ctx.class.clone())
        }
    }

    fn error(&self, ctx: &mut MethodCtx, category: ErrorCategory, span: Span, message: String) {
        ctx.errors.push(TypeErrorInfo {
            category,
            class: ctx.class.clone(),
            method: ctx.method.clone(),
            message,
            span,
        });
    }

    /// True when a type is "imprecise" — the situations where plain RDL
    /// loses track and a programmer cast would be required.
    fn is_imprecise(&self, t: &Type) -> bool {
        match self.store.resolve(t) {
            Type::Dynamic | Type::Top | Type::Union(_) => true,
            Type::Nominal(n) => n == "Object" || n == "BasicObject",
            Type::Generic { base, args } => {
                (base == "Hash" || base == "Array")
                    && args.iter().any(|a| self.is_imprecise_shallow(a))
            }
            _ => false,
        }
    }

    fn is_imprecise_shallow(&self, t: &Type) -> bool {
        matches!(self.store.resolve(t), Type::Dynamic | Type::Top | Type::Union(_))
            || matches!(self.store.resolve(t), Type::Nominal(n) if n == "Object")
    }

    fn precision_loss(&self, ctx: &mut MethodCtx, span: Span, what: &str, ty: &Type) -> Type {
        if self.options.count_implicit_casts {
            ctx.implicit_casts += 1;
            Type::Dynamic
        } else {
            self.error(
                ctx,
                ErrorCategory::NoMethod,
                span,
                format!(
                    "{what} has imprecise type `{}`; a type cast is required",
                    self.store.render(ty)
                ),
            );
            Type::Dynamic
        }
    }

    // ------------------------------------------------------------------
    // Inference
    // ------------------------------------------------------------------

    fn infer(&mut self, ctx: &mut MethodCtx, expr: &Expr) -> Type {
        match &expr.kind {
            // Recovery placeholder: poisoned methods are filtered before
            // checking, so this only appears if a caller checks one anyway.
            // Dynamic keeps the degradation silent rather than cascading.
            ExprKind::Error => Type::Dynamic,
            ExprKind::Nil => Type::nil(),
            ExprKind::True => Type::Singleton(SingVal::True),
            ExprKind::False => Type::Singleton(SingVal::False),
            ExprKind::Int(i) => Type::int(*i),
            ExprKind::Float(f) => Type::Singleton(SingVal::float(*f)),
            ExprKind::Str(s) => self.store.new_const_string(s.clone()),
            ExprKind::Sym(s) => Type::sym(s.clone()),
            ExprKind::Array(items) => {
                let elems = items.iter().map(|e| self.infer(ctx, e)).collect();
                self.store.new_tuple(elems)
            }
            ExprKind::Hash(pairs) => self.infer_hash(ctx, pairs),
            ExprKind::SelfExpr => self.self_type(ctx),
            ExprKind::Ident(name) => {
                if let Some(t) = ctx.locals.get(name) {
                    return t.clone();
                }
                if let Some(t) = ctx.block_param_types.get(name) {
                    return t.clone();
                }
                self.infer_call(ctx, expr, None, name, &[], &None)
            }
            ExprKind::IVar(name) => match self.env.annotations.ivar(&ctx.class, name) {
                Some(te) => {
                    let te = te.clone();
                    self.instantiate(&te)
                }
                None => Type::Dynamic,
            },
            ExprKind::GVar(name) => match self.env.annotations.gvar(name) {
                Some(te) => {
                    let te = te.clone();
                    self.instantiate(&te)
                }
                None => Type::Dynamic,
            },
            ExprKind::Const(path) => {
                let joined = path.join("::");
                if self.env.classes.contains(&joined) || self.program_defines_class(&joined) {
                    Type::class_of(joined)
                } else {
                    self.error(
                        ctx,
                        ErrorCategory::UndefinedConstant,
                        expr.span,
                        format!("uninitialized constant {joined}"),
                    );
                    Type::Dynamic
                }
            }
            ExprKind::Assign { target, value } => {
                let value_ty = self.infer(ctx, value);
                self.check_assign(ctx, expr.span, target, value_ty.clone());
                value_ty
            }
            ExprKind::OpAssign { target, op, value } => {
                let value_ty = self.infer(ctx, value);
                let current = self.infer_lvalue_read(ctx, expr.span, target);
                let new_ty = if op == "||" {
                    Type::union([current, value_ty])
                } else {
                    // Numeric / concatenation operators preserve the class.
                    Type::union([current, value_ty])
                };
                self.check_assign(ctx, expr.span, target, new_ty.clone());
                new_ty
            }
            ExprKind::Call { recv, name, args, block } => {
                self.infer_call(ctx, expr, recv.as_deref(), name, args, block)
            }
            ExprKind::BoolOp { op, lhs, rhs } => {
                let l = self.infer(ctx, lhs);
                let r = self.infer(ctx, rhs);
                match op {
                    BinOp::And => Type::union([r, Type::Singleton(SingVal::False), Type::nil()]),
                    BinOp::Or => Type::union([l, r]),
                }
            }
            ExprKind::Not(inner) => {
                self.infer(ctx, inner);
                Type::Bool
            }
            ExprKind::If { arms, else_body } => {
                let mut branch_types = Vec::new();
                for arm in arms {
                    self.infer(ctx, &arm.cond);
                    let mut t = Type::nil();
                    for e in &arm.body {
                        t = self.infer(ctx, e);
                    }
                    branch_types.push(t);
                }
                let mut t = Type::nil();
                for e in else_body {
                    t = self.infer(ctx, e);
                }
                branch_types.push(t);
                let sub = Subtyper::new(&self.env.classes);
                sub.lub_all(&self.store, &branch_types)
            }
            ExprKind::Case { subject, arms, else_body } => {
                self.infer(ctx, subject);
                let mut branch_types = Vec::new();
                for arm in arms {
                    self.infer(ctx, &arm.cond);
                    let mut t = Type::nil();
                    for e in &arm.body {
                        t = self.infer(ctx, e);
                    }
                    branch_types.push(t);
                }
                let mut t = Type::nil();
                for e in else_body {
                    t = self.infer(ctx, e);
                }
                branch_types.push(t);
                let sub = Subtyper::new(&self.env.classes);
                sub.lub_all(&self.store, &branch_types)
            }
            ExprKind::While { cond, body } => {
                self.infer(ctx, cond);
                for e in body {
                    self.infer(ctx, e);
                }
                Type::nil()
            }
            ExprKind::Return(value) => {
                let t = match value {
                    Some(v) => self.infer(ctx, v),
                    None => Type::nil(),
                };
                ctx.return_types.push(t);
                Type::Bot
            }
            ExprKind::Yield(args) => {
                for a in args {
                    self.infer(ctx, a);
                }
                Type::Dynamic
            }
            ExprKind::Break | ExprKind::Next => Type::nil(),
            ExprKind::Lambda(block) => {
                for e in &block.body {
                    self.infer(ctx, e);
                }
                Type::nominal("Proc")
            }
            ExprKind::TypeCast { expr: inner, ty } => {
                self.infer(ctx, inner);
                ctx.explicit_casts += 1;
                match rdl_types::parse_type_expr(ty) {
                    Ok(te) => self.instantiate(&te),
                    Err(e) => {
                        self.error(
                            ctx,
                            ErrorCategory::ArgumentType,
                            expr.span,
                            format!("invalid cast annotation {ty:?}: {e}"),
                        );
                        Type::Dynamic
                    }
                }
            }
        }
    }

    fn infer_hash(&mut self, ctx: &mut MethodCtx, pairs: &[(Expr, Expr)]) -> Type {
        let mut entries = Vec::new();
        let mut literal_keys = true;
        let mut key_types = Vec::new();
        let mut val_types = Vec::new();
        for (k, v) in pairs {
            let vt = self.infer(ctx, v);
            match &k.kind {
                ExprKind::Sym(s) => entries.push((HashKey::Sym(s.clone()), vt.clone())),
                ExprKind::Str(s) => entries.push((HashKey::Str(s.clone()), vt.clone())),
                ExprKind::Int(i) => entries.push((HashKey::Int(*i), vt.clone())),
                _ => {
                    literal_keys = false;
                    key_types.push(self.infer(ctx, k));
                }
            }
            val_types.push(vt);
        }
        if literal_keys {
            self.store.new_finite_hash(entries)
        } else {
            Type::hash(Type::union(key_types), Type::union(val_types))
        }
    }

    fn infer_lvalue_read(&mut self, ctx: &mut MethodCtx, span: Span, target: &LValue) -> Type {
        match target {
            LValue::Local(name) => ctx.locals.get(name).cloned().unwrap_or(Type::nil()),
            LValue::IVar(name) => match self.env.annotations.ivar(&ctx.class, name) {
                Some(te) => {
                    let te = te.clone();
                    self.instantiate(&te)
                }
                None => Type::Dynamic,
            },
            LValue::GVar(name) => match self.env.annotations.gvar(name) {
                Some(te) => {
                    let te = te.clone();
                    self.instantiate(&te)
                }
                None => Type::Dynamic,
            },
            LValue::Const(_) => Type::Dynamic,
            LValue::Index { recv, index } => {
                let r = recv.clone();
                let i = index.clone();
                let call = Expr::new(
                    ExprKind::Call {
                        recv: Some(r),
                        name: "[]".to_string(),
                        args: vec![(*i).clone()],
                        block: None,
                    },
                    span,
                );
                self.infer(ctx, &call)
            }
            LValue::Attr { .. } => Type::Dynamic,
        }
    }

    fn check_assign(&mut self, ctx: &mut MethodCtx, span: Span, target: &LValue, value_ty: Type) {
        match target {
            LValue::Local(name) => {
                ctx.locals.insert(name.clone(), value_ty);
            }
            LValue::IVar(name) => {
                if let Some(te) = self.env.annotations.ivar(&ctx.class, name) {
                    let te = te.clone();
                    let declared = self.instantiate(&te);
                    let sub = Subtyper::new(&self.env.classes);
                    if !sub.constrain(&mut self.store, &value_ty, &declared, "ivar assignment") {
                        self.error(
                            ctx,
                            ErrorCategory::ArgumentType,
                            span,
                            format!(
                                "cannot assign `{}` to @{name} declared as `{}`",
                                self.store.render(&value_ty),
                                self.store.render(&declared)
                            ),
                        );
                    }
                }
            }
            LValue::GVar(name) => {
                if let Some(te) = self.env.annotations.gvar(name) {
                    let te = te.clone();
                    let declared = self.instantiate(&te);
                    let sub = Subtyper::new(&self.env.classes);
                    if !sub.constrain(&mut self.store, &value_ty, &declared, "global assignment") {
                        self.error(
                            ctx,
                            ErrorCategory::ArgumentType,
                            span,
                            format!(
                                "cannot assign `{}` to ${name} declared as `{}`",
                                self.store.render(&value_ty),
                                self.store.render(&declared)
                            ),
                        );
                    }
                }
            }
            LValue::Const(_) => {}
            LValue::Index { recv, index } => {
                let recv_ty = self.infer(ctx, recv);
                let index_ty = self.infer(ctx, index);
                self.weak_update(ctx, span, &recv_ty, &index_ty, value_ty);
            }
            LValue::Attr { recv, .. } => {
                self.infer(ctx, recv);
            }
        }
    }

    /// Performs a weak update on a store-backed receiver type (paper §4) and
    /// replays its recorded constraints, reporting any that no longer hold.
    fn weak_update(
        &mut self,
        ctx: &mut MethodCtx,
        span: Span,
        recv_ty: &Type,
        index_ty: &Type,
        value_ty: Type,
    ) {
        let replay = match (self.store.resolve(recv_ty), index_ty) {
            (Type::Tuple(_), Type::Singleton(SingVal::Int(i))) => {
                let Type::Tuple(id) = recv_ty else { return };
                Some(self.store.weak_update_tuple(*id, (*i).max(0) as usize, value_ty))
            }
            (Type::FiniteHash(_), Type::Singleton(SingVal::Sym(s))) => {
                let Type::FiniteHash(id) = recv_ty else { return };
                Some(self.store.weak_update_hash(*id, HashKey::Sym(s.clone()), value_ty))
            }
            (Type::FiniteHash(_), Type::Singleton(SingVal::Int(i))) => {
                let Type::FiniteHash(id) = recv_ty else { return };
                Some(self.store.weak_update_hash(*id, HashKey::Int(*i), value_ty))
            }
            _ => None,
        };
        if let Some(constraints) = replay {
            let sub = Subtyper::new(&self.env.classes);
            for violated in sub.replay(&self.store, &constraints) {
                self.error(
                    ctx,
                    ErrorCategory::WeakUpdate,
                    span,
                    format!(
                        "weak update invalidates earlier constraint `{} <= {}` (from {})",
                        self.store.render(&violated.lhs),
                        self.store.render(&violated.rhs),
                        violated.origin
                    ),
                );
            }
        }
    }

    fn program_defines_class(&self, name: &str) -> bool {
        self.program.classes().iter().any(|c| c.name == name)
    }

    // ------------------------------------------------------------------
    // Method calls
    // ------------------------------------------------------------------

    /// Maps a receiver type to the (class, method kind) used for signature
    /// lookup.
    fn receiver_class(&mut self, recv_ty: &Type) -> Option<(String, MethodKind)> {
        match self.store.resolve(recv_ty) {
            Type::Singleton(SingVal::Class(c)) => Some((c, MethodKind::Singleton)),
            Type::Singleton(v) => Some((v.class_of().to_string(), MethodKind::Instance)),
            Type::Nominal(n) => Some((n, MethodKind::Instance)),
            Type::Generic { base, .. } => Some((base, MethodKind::Instance)),
            Type::Tuple(_) => Some(("Array".to_string(), MethodKind::Instance)),
            Type::FiniteHash(_) => Some(("Hash".to_string(), MethodKind::Instance)),
            Type::ConstString(_) => Some(("String".to_string(), MethodKind::Instance)),
            Type::Bool => Some(("Boolean".to_string(), MethodKind::Instance)),
            _ => None,
        }
    }

    fn lookup_signature(
        &mut self,
        recv_ty: &Type,
        name: &str,
    ) -> Option<(String, MethodKind, MethodSig)> {
        let (class, kind) = self.receiver_class(recv_ty)?;
        if let Some((owner, sig)) =
            self.env.annotations.lookup(&self.env.classes, &class, kind, name)
        {
            return Some((owner, kind, sig.clone()));
        }
        // DB query methods: a model class's singleton methods and a
        // `Table<T>` relation's instance methods are both typed via the
        // `Table` annotations (paper §2.1: `tself` may be a class singleton
        // or a Table type).
        let is_model_class = kind == MethodKind::Singleton && self.env.classes.is_model(&class);
        let is_table = class == "Table" || class == "Sequel::Dataset";
        if is_model_class || is_table {
            for dsl in ["Table", "Sequel::Dataset"] {
                if let Some((owner, sig)) =
                    self.env.annotations.lookup(&self.env.classes, dsl, MethodKind::Instance, name)
                {
                    return Some((owner, MethodKind::Instance, sig.clone()));
                }
            }
        }
        None
    }

    fn infer_call(
        &mut self,
        ctx: &mut MethodCtx,
        expr: &Expr,
        recv: Option<&Expr>,
        name: &str,
        args: &[Expr],
        block: &Option<ruby_syntax::Block>,
    ) -> Type {
        // `Klass.new` constructs an instance.
        let recv_ty = match recv {
            Some(r) => self.infer(ctx, r),
            None => self.self_type(ctx),
        };
        let arg_types: Vec<Type> = args.iter().map(|a| self.infer(ctx, a)).collect();

        if name == "new" {
            if let Type::Singleton(SingVal::Class(c)) = self.store.resolve(&recv_ty) {
                self.infer_block_body(ctx, block, &Type::Dynamic);
                return Type::nominal(c);
            }
        }

        let resolved_recv = self.store.resolve(&recv_ty);

        // Look up a signature.
        let sig = self.lookup_signature(&recv_ty, name);

        let result = match sig {
            Some((owner, kind, sig)) => self.check_against_signature(
                ctx, expr, &owner, kind, name, &sig, &recv_ty, args, &arg_types, block,
            ),
            None => {
                // Unannotated method: if the program defines it, treat the
                // call as unchecked (Dynamic); if the receiver is imprecise,
                // count the cast a programmer would need; otherwise, when
                // the receiver type is a structural type without that
                // method, report an error.
                let defined_in_program = self.call_target_defined(&recv_ty, name);
                if defined_in_program
                    || matches!(resolved_recv, Type::Dynamic | Type::Var(_))
                    || matches!(&resolved_recv, Type::Singleton(SingVal::Nil))
                {
                    self.infer_block_body(ctx, block, &Type::Dynamic);
                    Type::Dynamic
                } else if self.is_imprecise(&recv_ty) {
                    self.infer_block_body(ctx, block, &Type::Dynamic);
                    self.precision_loss(ctx, expr.span, &format!("receiver of `{name}`"), &recv_ty)
                } else if KERNEL_METHODS.contains(&name) {
                    self.infer_block_body(ctx, block, &Type::Dynamic);
                    Type::Dynamic
                } else if self.known_structural_miss(&resolved_recv, name) {
                    self.error(
                        ctx,
                        ErrorCategory::NoMethod,
                        expr.span,
                        format!(
                            "undefined method `{name}` for type `{}`",
                            self.store.render(&resolved_recv)
                        ),
                    );
                    Type::Dynamic
                } else {
                    // Unknown method on a user class without annotations —
                    // assume it exists but is untyped.
                    self.infer_block_body(ctx, block, &Type::Dynamic);
                    Type::Dynamic
                }
            }
        };
        result
    }

    /// True if the receiver's class (or the program) defines the method as
    /// ordinary user code.
    fn call_target_defined(&mut self, recv_ty: &Type, name: &str) -> bool {
        let Some((class, kind)) = self.receiver_class(recv_ty) else { return false };
        let singleton = kind == MethodKind::Singleton;
        // Walk program classes and their superclasses.
        let mut current = Some(class);
        let mut fuel = 16;
        while let Some(c) = current {
            if fuel == 0 {
                break;
            }
            fuel -= 1;
            if self.program.find_method(&c, name).map(|m| m.singleton == singleton).unwrap_or(false)
            {
                return true;
            }
            current = self
                .program
                .classes()
                .iter()
                .find(|cd| cd.name == c)
                .and_then(|cd| cd.superclass.clone());
        }
        false
    }

    /// True when the receiver is a core structural type (tuple, finite hash,
    /// const string, Array/Hash/String/Integer generic) for which we have a
    /// full annotation set, so a missing method is a genuine error.
    fn known_structural_miss(&self, recv: &Type, _name: &str) -> bool {
        matches!(
            recv,
            Type::Tuple(_) | Type::FiniteHash(_) | Type::ConstString(_) | Type::Generic { .. }
        ) || matches!(recv, Type::Nominal(n) if ["String", "Integer", "Float", "Symbol", "Array", "Hash"].contains(&n.as_str()))
    }

    /// Evaluates a comp-type expression, answering from the evaluation cache
    /// when an identical evaluation (same method slot, same resolved
    /// receiver / argument types) was already performed.  See
    /// [`crate::cache`] for the key and invalidation rules.
    fn eval_comp_cached(
        &mut self,
        owner: &str,
        method: &str,
        position: CompPosition,
        bindings: &HashMap<String, TlcValue>,
        expr: &Expr,
    ) -> Result<Type, TlcError> {
        if !self.options.use_eval_cache || !self.cache.note_evaluation(owner, method, position) {
            return eval_comp_type(
                &mut self.store,
                &self.env.classes,
                &self.env.helpers,
                bindings.clone(),
                expr,
            );
        }
        let semantic = self.slot_semantic_hash(owner, method, position, expr);
        let key = CacheKey::build(owner, method, position, semantic, bindings, &self.store);
        if let Some(key) = &key {
            if let Some(cached) = self.cache.lookup(key, &self.store) {
                // Store-backed parts of a cached result are re-interned into
                // fresh ids: handing out the original ids would alias
                // mutable state across call sites, so a weak update at one
                // site would silently change another site's type.  The
                // copies start constraint-free, exactly like the ids a
                // fresh evaluation would have allocated.
                return cached.map(|t| {
                    if t.contains_store_backed() {
                        self.store.deep_copy(&t)
                    } else {
                        t
                    }
                });
            }
        }
        let result = eval_comp_type(
            &mut self.store,
            &self.env.classes,
            &self.env.helpers,
            bindings.clone(),
            expr,
        );
        if let Some(key) = key {
            self.cache.insert(key, result.clone(), &self.store);
        }
        result
    }

    /// The source span to report a failed comp-type evaluation at.  SQL
    /// fragment errors carry a span relative to the raw fragment string;
    /// map it through the string-literal argument that supplied the
    /// fragment so the diagnostic points at the offending SQL inside the
    /// original Ruby literal.  Everything else points at the call.
    fn comp_error_span(&self, e: &TlcError, call_span: Span, args: &[Expr]) -> Span {
        let Some(frag) = e.sql_span else { return call_span };
        let Some(lit) = args.iter().find(|a| matches!(a.kind, ExprKind::Str(_))) else {
            return call_span;
        };
        // The literal's span covers the quotes; its content starts one byte
        // in.  (Escape sequences would shift content offsets, but raw SQL
        // fragments do not use them.)
        let content_start = lit.span.start + 1;
        let start = content_start + frag.start;
        let end = (content_start + frag.end).min(lit.span.end.saturating_sub(1).max(start));
        // The mapped span stays in the literal's source file.
        Span::in_file(
            lit.span.file,
            start,
            end.max(start + 1),
            lit.span.line + frag.line.saturating_sub(1),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn check_against_signature(
        &mut self,
        ctx: &mut MethodCtx,
        expr: &Expr,
        owner: &str,
        _kind: MethodKind,
        name: &str,
        sig: &MethodSig,
        recv_ty: &Type,
        args: &[Expr],
        arg_types: &[Type],
        block: &Option<ruby_syntax::Block>,
    ) -> Type {
        // Arity.
        if !sig.accepts_arity(args.len()) {
            self.error(
                ctx,
                ErrorCategory::Arity,
                expr.span,
                format!(
                    "wrong number of arguments to `{name}` (given {}, expected {})",
                    args.len(),
                    sig.params.len()
                ),
            );
        }

        // Build the generic substitution from the receiver (e.g. `Hash<k,v>`).
        let substitution = self.generic_substitution(recv_ty);

        let use_comp = self.options.use_comp_types && sig.is_comp();

        // Bindings available to comp types: tself plus each binder.
        let mut bindings: HashMap<String, TlcValue> = HashMap::new();
        bindings.insert("tself".to_string(), TlcValue::Type(self.store.resolve(recv_ty)));
        for (i, p) in sig.params.iter().enumerate() {
            if let Some(binder) = &p.binder {
                let at = arg_types.get(i).cloned().unwrap_or_else(Type::nil);
                bindings.insert(binder.clone(), TlcValue::Type(self.store.resolve(&at)));
            }
        }

        // Parameter types.
        let mut param_types = Vec::with_capacity(sig.params.len());
        for p in &sig.params {
            // Optional / vararg wrappers are transparent for comp evaluation.
            let inner_ty = match &p.ty {
                TypeExpr::Optional(t) | TypeExpr::Vararg(t) => t.as_ref(),
                other => other,
            };
            let t = match (inner_ty, use_comp) {
                (TypeExpr::Comp(spec), true) => {
                    self.run_termination_check(ctx, expr.span, &spec.expr);
                    let i = param_types.len();
                    match self.eval_comp_cached(
                        owner,
                        name,
                        CompPosition::Param(i.min(u8::MAX as usize) as u8),
                        &bindings,
                        &spec.expr,
                    ) {
                        Ok(t) => t,
                        Err(e) => {
                            let category = if e.message.contains("SQL") {
                                ErrorCategory::Sql
                            } else {
                                ErrorCategory::CompType
                            };
                            let span = self.comp_error_span(&e, expr.span, args);
                            self.error(ctx, category, span, e.message.clone());
                            Type::Dynamic
                        }
                    }
                }
                _ => {
                    let t = self.instantiate_param(p);
                    t.subst(&|v| substitution.get(v).cloned())
                }
            };
            param_types.push(t);
        }

        // Check arguments against parameters.
        let sub = Subtyper::new(&self.env.classes);
        for (i, at) in arg_types.iter().enumerate() {
            let Some(pt) = param_types.get(i).or_else(|| param_types.last()) else { continue };
            if pt.free_vars().is_empty() {
                let ok = {
                    let sub = Subtyper::new(&self.env.classes);
                    sub.constrain(&mut self.store, at, pt, &format!("argument {i} of {name}"))
                };
                if !ok {
                    if self.is_imprecise(at) && self.options.count_implicit_casts {
                        ctx.implicit_casts += 1;
                    } else {
                        self.error(
                            ctx,
                            ErrorCategory::ArgumentType,
                            args.get(i).map(|a| a.span).unwrap_or(expr.span),
                            format!(
                                "argument {} of `{}` has type `{}` but `{}` is expected",
                                i + 1,
                                name,
                                self.store.render(at),
                                self.store.render(pt)
                            ),
                        );
                    }
                }
            }
        }
        let _ = sub;

        // Block body.
        let block_elem = self.block_element_type(recv_ty);
        self.infer_block_body(ctx, block, &block_elem);

        // Return type.
        let (ret_ty, consistency) = match (&sig.ret, use_comp) {
            (TypeExpr::Comp(spec), true) => {
                self.run_termination_check(ctx, expr.span, &spec.expr);
                match self.eval_comp_cached(owner, name, CompPosition::Ret, &bindings, &spec.expr) {
                    Ok(t) => {
                        let consistency = ConsistencyCheck {
                            ret_expr: spec.expr.clone(),
                            binders: sig.params.iter().map(|p| p.binder.clone()).collect(),
                            expected: t.clone(),
                        };
                        (t, Some(consistency))
                    }
                    Err(e) => {
                        let category = if e.message.contains("SQL") {
                            ErrorCategory::Sql
                        } else {
                            ErrorCategory::CompType
                        };
                        let span = self.comp_error_span(&e, expr.span, args);
                        self.error(ctx, category, span, e.message.clone());
                        (Type::Dynamic, None)
                    }
                }
            }
            _ => {
                let t = self.instantiate(&sig.ret);
                let t = t.subst(&|v| {
                    if v == "self" {
                        Some(self.store.resolve(recv_ty))
                    } else {
                        substitution.get(v).cloned()
                    }
                });
                let t = if t.is_ground() { t } else { Type::Dynamic };
                (t, None)
            }
        };

        // Calls to library (non-type-checked) methods get a dynamic check
        // (λC rules C-AppLib / C-App-Comp); statically checked user methods
        // do not (C-AppUD).
        let callee_is_checked_user_method = sig.typecheck_label.is_some();
        if !callee_is_checked_user_method && !matches!(ret_ty, Type::Dynamic) {
            ctx.checks.push(InsertedCheck {
                site: expr.span,
                description: format!("{owner}#{name}"),
                expected_return: ret_ty.clone(),
                consistency,
            });
        }

        ret_ty
    }

    fn run_termination_check(&mut self, ctx: &mut MethodCtx, span: Span, expr: &Expr) {
        if !self.options.check_termination {
            return;
        }
        for violation in self.termination.check_expr(expr) {
            self.error(
                ctx,
                ErrorCategory::Termination,
                span,
                format!("type-level code may not terminate: {violation}"),
            );
        }
    }

    fn generic_substitution(&mut self, recv_ty: &Type) -> HashMap<String, Type> {
        let mut map = HashMap::new();
        if let Type::Generic { base, args } = self.store.resolve(recv_ty) {
            if let Some(info) = self.env.classes.get(&base) {
                for (param, arg) in info.type_params.iter().zip(args.iter()) {
                    map.insert(param.clone(), arg.clone());
                }
            }
        }
        // Tuples and finite hashes behave as Array/Hash for type variables.
        match self.store.resolve(recv_ty) {
            Type::Tuple(id) => {
                let elem = Type::union(self.store.tuple(id).elems.iter().cloned());
                map.insert("a".to_string(), if elem == Type::Bot { Type::object() } else { elem });
            }
            Type::FiniteHash(id) => {
                let data = self.store.finite_hash(id).clone();
                map.insert("k".to_string(), Type::nominal("Symbol"));
                let vals = Type::union(data.entries.iter().map(|(_, v)| v.clone()));
                map.insert("v".to_string(), if vals == Type::Bot { Type::object() } else { vals });
            }
            Type::ConstString(_) | Type::Nominal(_) => {}
            _ => {}
        }
        map
    }

    fn block_element_type(&mut self, recv_ty: &Type) -> Type {
        match self.store.resolve(recv_ty) {
            Type::Generic { base, args } if base == "Array" && args.len() == 1 => args[0].clone(),
            Type::Tuple(id) => {
                let elem = Type::union(self.store.tuple(id).elems.iter().cloned());
                if elem == Type::Bot {
                    Type::Dynamic
                } else {
                    elem
                }
            }
            _ => Type::Dynamic,
        }
    }

    fn infer_block_body(
        &mut self,
        ctx: &mut MethodCtx,
        block: &Option<ruby_syntax::Block>,
        elem_ty: &Type,
    ) {
        if let Some(b) = block {
            let saved: Vec<(String, Option<Type>)> = b
                .params
                .iter()
                .map(|p| (p.clone(), ctx.block_param_types.get(p).cloned()))
                .collect();
            for p in &b.params {
                ctx.block_param_types.insert(p.clone(), elem_ty.clone());
            }
            for e in &b.body {
                self.infer(ctx, e);
            }
            for (p, old) in saved {
                match old {
                    Some(t) => ctx.block_param_types.insert(p, t),
                    None => ctx.block_param_types.remove(&p),
                };
            }
        }
    }
}

/// Kernel-level methods that never produce "no method" errors.
const KERNEL_METHODS: &[&str] = &[
    "puts",
    "print",
    "p",
    "raise",
    "require",
    "require_relative",
    "lambda",
    "proc",
    "rand",
    "assert",
    "assert_equal",
    "refute",
    "attr_accessor",
    "attr_reader",
    "attr_writer",
    "loop",
    "freeze",
    "format",
    "sleep",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::CompRdl;

    fn env_with_stdlib() -> CompRdl {
        let mut env = CompRdl::new();
        crate::stdlib::register_all(&mut env);
        env
    }

    fn check_src(env: &CompRdl, src: &str, options: CheckOptions) -> ProgramCheckResult {
        let program = ruby_syntax::parse_program_strict(src).expect("parse");
        TypeChecker::new(env, &program, options).check_all_annotated()
    }

    #[test]
    fn simple_method_checks() {
        let mut env = env_with_stdlib();
        env.type_sig_singleton("Object", "double", "(Integer) -> Integer", Some("app"));
        let res = check_src(&env, "def self.double(x)\n  x * 2\nend\n", CheckOptions::default());
        assert_eq!(res.methods_checked(), 1);
        assert!(res.errors().is_empty(), "{:?}", res.errors());
    }

    #[test]
    fn return_type_mismatch_is_reported() {
        let mut env = env_with_stdlib();
        env.type_sig_singleton("Object", "answer", "() -> String", Some("app"));
        let res = check_src(&env, "def self.answer()\n  42\nend\n", CheckOptions::default());
        assert_eq!(res.errors().len(), 1);
        assert_eq!(res.errors()[0].category, ErrorCategory::ReturnType);
    }

    #[test]
    fn undefined_constant_is_reported() {
        let mut env = env_with_stdlib();
        env.type_sig_singleton("Object", "broken", "() -> Object", Some("app"));
        let res = check_src(
            &env,
            "def self.broken()\n  TotallyMissingConst\nend\n",
            CheckOptions::default(),
        );
        assert!(res.errors().iter().any(|e| e.category == ErrorCategory::UndefinedConstant));
    }

    #[test]
    fn annotation_conflicts_are_found_and_anchored_at_the_definition() {
        use rdl_types::{PurityEffect, TermEffect};
        let mut env = env_with_stdlib();
        env.type_sig_with_effects(
            "Object",
            "fast",
            "() -> Integer",
            TermEffect::Terminates,
            PurityEffect::Pure,
        );
        // `fast` actually loops and writes an ivar; inference disagrees
        // with the annotation on both effects.
        let program = ruby_syntax::parse_program_strict(
            "def fast()\n  while true\n    @n = 1\n  end\n  0\nend\n",
        )
        .expect("parse");
        let effects = [InferredEffect {
            name: "fast".into(),
            term: rdl_types::TermEffect::MayDiverge,
            purity: rdl_types::PurityEffect::Impure,
            term_blame: vec!["fast".into(), "while loop".into()],
            purity_blame: vec!["fast".into(), "@n=".into()],
        }];
        let conflicts = TypeChecker::effect_conflicts(&env, &program, &effects);
        assert_eq!(conflicts.len(), 2, "{conflicts:?}");
        assert!(conflicts.iter().all(|v| v.kind == crate::ViolationKind::AnnotationConflict));
        let def_span = program.methods()[0].1.span;
        assert!(conflicts.iter().all(|v| v.span == def_span), "anchored at the definition");
        assert!(conflicts[0].message.contains("inferred non-terminating via fast \u{2192} while"));

        // Annotations whose claims inference agrees with stay silent, as do
        // annotated methods with no summary at all.
        let agreeing = [InferredEffect {
            name: "fast".into(),
            term: rdl_types::TermEffect::Terminates,
            purity: rdl_types::PurityEffect::Pure,
            term_blame: Vec::new(),
            purity_blame: Vec::new(),
        }];
        assert!(TypeChecker::effect_conflicts(&env, &program, &agreeing).is_empty());
        assert!(TypeChecker::effect_conflicts(&env, &program, &[]).is_empty());
    }

    #[test]
    fn figure2_needs_no_cast_with_comp_types_but_one_without() {
        // Figure 2: page[:info].first
        let mut env = env_with_stdlib();
        env.type_sig("Object", "page", "() -> { info: Array<String>, title: String }", None);
        env.type_sig_singleton("Object", "noop", "() -> Object", None);
        env.type_sig("Object", "image_url", "() -> String", Some("app"));
        let src = "def image_url()\n  page()[:info].first\nend\n";

        // With comp types: no errors, no casts needed.
        let res = check_src(&env, src, CheckOptions::default());
        assert!(res.errors().is_empty(), "{:?}", res.errors());
        assert_eq!(res.total_casts(), 0);
        assert!(!res.checks().is_empty());

        // Without comp types (plain RDL): the finite hash is accessed via
        // `Hash#[] : (k) -> v`, so `first` is called on `Array<String> or
        // String` and a cast is required.
        let res =
            check_src(&env, src, CheckOptions { use_comp_types: false, ..CheckOptions::default() });
        assert!(res.total_casts() >= 1, "expected an implicit cast, got {res:?}");
    }

    #[test]
    fn explicit_cast_is_counted_and_silences_imprecision() {
        let mut env = env_with_stdlib();
        env.type_sig("Object", "page", "() -> { info: Array<String>, title: String }", None);
        env.type_sig("Object", "image_url", "() -> String", Some("app"));
        let src = "def image_url()\n  RDL.type_cast(page()[:info], \"Array<String>\").first\nend\n";
        let res =
            check_src(&env, src, CheckOptions { use_comp_types: false, ..CheckOptions::default() });
        assert_eq!(res.explicit_casts(), 1);
        assert!(res.errors().is_empty(), "{:?}", res.errors());
    }

    #[test]
    fn weak_update_reports_violated_constraints() {
        let mut env = env_with_stdlib();
        env.type_sig("Object", "mutate", "() -> Object", Some("app"));
        env.type_sig("Object", "use_strings", "(Array<String>) -> Object", None);
        // `a` is a [Integer, String] tuple constrained to Array<Integer or
        // String> by the call; the weak update a[0] = 1.5 widens element 0
        // to include Float which violates the recorded constraint.
        let src = "def mutate()\n  a = [1, 'foo']\n  use_strings(a)\n  a[0] = 1.5\n  a\nend\n";
        let mut env2 = env;
        env2.type_sig("Object", "use_strings", "(Array<Integer or String>) -> Object", None);
        let res = check_src(&env2, src, CheckOptions::default());
        assert!(
            res.errors().iter().any(|e| e.category == ErrorCategory::WeakUpdate),
            "{:?}",
            res.errors()
        );
    }

    #[test]
    fn arity_errors_are_reported() {
        let mut env = env_with_stdlib();
        env.type_sig_singleton("Object", "caller", "() -> Object", Some("app"));
        env.type_sig_singleton("Object", "helper", "(Integer, Integer) -> Integer", None);
        let res = check_src(&env, "def self.caller()\n  helper(1)\nend\n", CheckOptions::default());
        assert!(res.errors().iter().any(|e| e.category == ErrorCategory::Arity));
    }

    #[test]
    fn argument_type_errors_are_reported() {
        let mut env = env_with_stdlib();
        env.type_sig_singleton("Object", "caller", "() -> Object", Some("app"));
        env.type_sig_singleton("Object", "wants_string", "(String) -> String", None);
        let res = check_src(
            &env,
            "def self.caller()\n  wants_string(42)\nend\n",
            CheckOptions::default(),
        );
        assert!(res.errors().iter().any(|e| e.category == ErrorCategory::ArgumentType));
    }

    #[test]
    fn comp_eval_cache_hits_and_matches_uncached() {
        let mut env = env_with_stdlib();
        env.type_sig("Object", "page", "() -> { info: Array<String>, title: String }", None);
        env.type_sig("Object", "image_url", "() -> String", Some("app"));
        env.type_sig("Object", "other_url", "() -> String", Some("app"));
        env.type_sig("Object", "third_url", "() -> String", Some("app"));
        // Three methods performing the same finite-hash lookup: the keyed
        // cache engages from the slot's second evaluation, so the third
        // must come from the cache.
        let src = "def image_url()\n  page()[:info].first\nend\n\
                   def other_url()\n  page()[:info].first\nend\n\
                   def third_url()\n  page()[:info].first\nend\n";
        let program = ruby_syntax::parse_program_strict(src).expect("parse");

        let cached = TypeChecker::new(&env, &program, CheckOptions::default()).check_labeled("app");
        assert!(cached.cache_stats.hits > 0, "expected cache hits, got {:?}", cached.cache_stats);

        let uncached = TypeChecker::new(
            &env,
            &program,
            CheckOptions { use_eval_cache: false, ..CheckOptions::default() },
        )
        .check_labeled("app");
        assert_eq!(uncached.cache_stats, crate::cache::CacheStats::default());

        // Same verdicts either way.
        let render = |r: &ProgramCheckResult| {
            r.methods
                .iter()
                .map(|m| {
                    let errs: Vec<String> = m.errors.iter().map(|e| e.to_string()).collect();
                    format!(
                        "{}#{} errs={errs:?} casts={}/{} checks={}",
                        m.class,
                        m.method,
                        m.explicit_casts,
                        m.implicit_casts,
                        m.checks.len()
                    )
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(render(&cached), render(&uncached));
    }

    #[test]
    fn cache_hits_do_not_alias_mutable_results_across_sites() {
        // Three call sites evaluate the same comp type to a store-backed
        // finite hash; the third site then weakly updates its result.  With
        // naive result sharing the update would mutate the id the second
        // site's dynamic check references; re-interning on hit keeps every
        // site's types independent, so cached and uncached runs agree.
        let mut env = env_with_stdlib();
        env.type_sig("Object", "page", "() -> { info: Integer }", None);
        for m in ["a", "b", "c"] {
            env.type_sig("Object", m, "() -> Object", Some("app"));
        }
        let src = "def a()\n  page().merge({ b: 1 })\nend\n\
                   def b()\n  page().merge({ b: 1 })\nend\n\
                   def c()\n  h = page().merge({ b: 1 })\n  h[:b] = 'x'\n  h\nend\n";
        let program = ruby_syntax::parse_program_strict(src).expect("parse");
        let render = |r: &ProgramCheckResult| {
            let mut out: Vec<String> = r
                .methods
                .iter()
                .flat_map(|m| {
                    m.checks.iter().map(|c| {
                        format!(
                            "{}/{} -> {}",
                            m.method,
                            c.description,
                            r.store.render(&c.expected_return)
                        )
                    })
                })
                .collect();
            out.extend(r.errors().iter().map(|e| e.to_string()));
            out
        };
        let cached = TypeChecker::new(&env, &program, CheckOptions::default()).check_labeled("app");
        let uncached = TypeChecker::new(
            &env,
            &program,
            CheckOptions { use_eval_cache: false, ..CheckOptions::default() },
        )
        .check_labeled("app");
        assert!(cached.cache_stats.hits > 0, "{:?}", cached.cache_stats);
        assert_eq!(render(&cached), render(&uncached));
    }

    #[test]
    fn parallel_checking_matches_sequential() {
        let mut env = env_with_stdlib();
        env.type_sig("Object", "page", "() -> { info: Array<String>, title: String }", None);
        for m in ["a", "b", "c", "d", "e"] {
            env.type_sig_singleton("Object", m, "() -> String", Some("app"));
        }
        let src = (b'a'..=b'e')
            .map(|c| format!("def self.{}()\n  page()[:info].first\nend\n", c as char))
            .collect::<String>();
        let program = ruby_syntax::parse_program_strict(&src).expect("parse");

        let sequential =
            TypeChecker::new(&env, &program, CheckOptions::default()).check_labeled("app");
        let parallel =
            TypeChecker::check_labeled_parallel(&env, &program, CheckOptions::default(), "app", 4);

        assert_eq!(sequential.methods_checked(), parallel.methods_checked());
        let names =
            |r: &ProgramCheckResult| r.methods.iter().map(|m| m.method.clone()).collect::<Vec<_>>();
        assert_eq!(names(&sequential), names(&parallel), "method order must be program order");
        assert_eq!(sequential.total_casts(), parallel.total_casts());
        assert_eq!(sequential.errors().len(), parallel.errors().len());
        // The merged store must resolve every inserted check's types: a
        // store-backed expected-return type resolving without panicking and
        // matching the sequential rendering is the merge invariant.
        let seq_checks: Vec<String> = sequential
            .checks()
            .iter()
            .map(|c| {
                format!("{} -> {}", c.description, sequential.store.render(&c.expected_return))
            })
            .collect();
        let par_checks: Vec<String> = parallel
            .checks()
            .iter()
            .map(|c| format!("{} -> {}", c.description, parallel.store.render(&c.expected_return)))
            .collect();
        assert_eq!(seq_checks, par_checks);
    }

    #[test]
    fn checks_are_inserted_for_library_calls_only() {
        let mut env = env_with_stdlib();
        env.type_sig_singleton("Object", "top", "() -> Integer", Some("app"));
        // `checked_helper` is itself statically checked, so calls to it need
        // no dynamic check; Array#first is a library method, so it does.
        env.type_sig_singleton("Object", "checked_helper", "() -> Integer", Some("app"));
        let src = "def self.top()\n  xs = [1, 2, 3]\n  xs.first + checked_helper()\nend\n\
                   def self.checked_helper()\n  7\nend\n";
        let res = check_src(&env, src, CheckOptions::default());
        assert!(res.errors().is_empty(), "{:?}", res.errors());
        let descriptions: Vec<String> =
            res.checks().iter().map(|c| c.description.clone()).collect();
        assert!(descriptions.iter().any(|d| d.contains("first")));
        assert!(!descriptions.iter().any(|d| d.contains("checked_helper")));
    }
}
