//! Shared helpers for the benchmark harness.
//!
//! The actual benchmarks live under `benches/`; each one regenerates a
//! table or an ablation from the paper's evaluation (see DESIGN.md §3 for
//! the experiment index and EXPERIMENTS.md for measured results).

#![warn(missing_docs)]

use comprdl::{CheckConfig, CheckOptions, TypeChecker};
use ruby_interp::Interpreter;

/// Type checks one corpus app with the given options and returns the result.
pub fn check_app(app: &corpus::App, options: CheckOptions) -> comprdl::ProgramCheckResult {
    let env = app.build_env();
    let program = ruby_syntax::parse_program(&app.full_source()).expect("app parses");
    TypeChecker::new(&env, &program, options).check_labeled("app")
}

/// Runs one corpus app's test suite under the given dynamic-check
/// configuration (or completely unchecked when `config` is `None`),
/// returning the number of dynamic checks executed.
pub fn run_app_suite(app: &corpus::App, config: Option<CheckConfig>) -> u64 {
    let env = app.build_env();
    let program = ruby_syntax::parse_program(&app.full_source()).expect("app parses");
    let mut interp = Interpreter::new(program.clone());
    if let Some(config) = config {
        let result = TypeChecker::new(&env, &program, CheckOptions::default()).check_labeled("app");
        let hook = comprdl::make_hook(
            result.checks(),
            result.store.clone(),
            env.classes.clone(),
            env.helpers.clone(),
            config,
        );
        interp.set_hook(hook);
    }
    interp.eval_program().expect("suite passes");
    interp.checks_performed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_drive_the_corpus() {
        let app = &corpus::apps::all()[0];
        let result = check_app(app, CheckOptions::default());
        assert!(result.methods_checked() > 0);
        assert_eq!(run_app_suite(app, None), 0);
        assert!(run_app_suite(app, Some(CheckConfig::default())) > 0);
    }
}
