//! Shared helpers for the benchmark harness.
//!
//! The actual benchmarks live under `benches/`; each one regenerates a
//! table or an ablation from the paper's evaluation (see DESIGN.md §3 for
//! the experiment index and EXPERIMENTS.md for measured results).

#![warn(missing_docs)]

pub mod results;

use comprdl::{CheckConfig, CheckOptions, TypeChecker};
use ruby_interp::Interpreter;

/// Type checks one corpus app with the given options and returns the result.
pub fn check_app(app: &corpus::App, options: CheckOptions) -> comprdl::ProgramCheckResult {
    let (env, program) = prepare_app(app);
    check_prepared(&env, &program, options)
}

/// Type checks one corpus app with the comp-type evaluation cache disabled
/// (the paper's re-evaluate-at-every-call-site baseline).
pub fn check_app_uncached(app: &corpus::App) -> comprdl::ProgramCheckResult {
    check_app(app, CheckOptions { use_eval_cache: false, ..CheckOptions::default() })
}

/// Type checks one corpus app with `threads` per-method worker threads.
pub fn check_app_parallel(app: &corpus::App, threads: usize) -> comprdl::ProgramCheckResult {
    let (env, program) = prepare_app(app);
    TypeChecker::check_labeled_parallel(&env, &program, CheckOptions::default(), "app", threads)
}

/// Builds an app's environment and parses its source once, so benches can
/// time the *checking* phase alone (environment assembly re-parses hundreds
/// of annotation strings and would otherwise dominate the measurement).
/// Parsing uses the two-file view ([`corpus::App::parse`]), matching the
/// harness.
pub fn prepare_app(app: &corpus::App) -> (comprdl::CompRdl, ruby_syntax::Program) {
    let env = app.build_env();
    let (program, _sources, _diags) = app.parse();
    (env, program)
}

/// Type checks a prepared app (see [`prepare_app`]) sequentially.
pub fn check_prepared(
    env: &comprdl::CompRdl,
    program: &ruby_syntax::Program,
    options: CheckOptions,
) -> comprdl::ProgramCheckResult {
    TypeChecker::new(env, program, options).check_labeled("app")
}

/// Type checks a prepared app (see [`prepare_app`]) with `threads` workers.
pub fn check_prepared_parallel(
    env: &comprdl::CompRdl,
    program: &ruby_syntax::Program,
    threads: usize,
) -> comprdl::ProgramCheckResult {
    TypeChecker::check_labeled_parallel(env, program, CheckOptions::default(), "app", threads)
}

/// Number of timed samples per benchmark: 2 when `BENCH_SMOKE` is set in
/// the environment (CI runs the benches as a correctness smoke test), the
/// given default otherwise.
pub fn sample_size(default: usize) -> usize {
    if std::env::var_os("BENCH_SMOKE").is_some() {
        2
    } else {
        default
    }
}

/// Builds a Discourse-schema workload with `methods` checked methods, each
/// performing several DB query calls whose comp types evaluate over a small
/// set of distinct query shapes.  The six paper apps are deliberately tiny
/// (a handful of call sites each); this models the density of a real Rails
/// app, where the same `where` / `exists?` comp types are evaluated at
/// hundreds of call sites — the workload both the evaluation cache and the
/// per-method threading are for.
pub fn scale_workload(methods: usize) -> (comprdl::CompRdl, ruby_syntax::Program) {
    use db_types::{ColumnType, DbRegistry};

    let mut db = DbRegistry::new();
    db.add_table(
        "users",
        &[
            ("id", ColumnType::Integer),
            ("username", ColumnType::String),
            ("staged", ColumnType::Boolean),
        ],
    );
    db.add_table(
        "emails",
        &[
            ("id", ColumnType::Integer),
            ("email", ColumnType::String),
            ("user_id", ColumnType::Integer),
        ],
    );
    db.add_model("User", "users");
    db.add_model("Email", "emails");
    db.add_association("User", "emails", "emails");

    let mut env = comprdl::CompRdl::new();
    comprdl::stdlib::register_all(&mut env);
    db_types::register_all(&mut env, std::sync::Arc::new(db));

    let mut src = String::from("class User < ActiveRecord::Base\n");
    for i in 0..methods {
        env.type_sig_singleton("User", &format!("m{i}"), "(String) -> %bool", Some("app"));
        // Four query call sites per method, including a raw-SQL `where`
        // whose comp type runs the embedded SQL type checker — the
        // expensive evaluation the cache is most valuable for.
        src.push_str(&format!(
            "  def self.m{i}(name)\n    \
             a = User.exists?({{ username: name }})\n    \
             b = User.where({{ staged: true }}).exists?({{ username: name }})\n    \
             c = User.joins(:emails).exists?({{ username: name, emails: {{ email: name }} }})\n    \
             d = User.where('username = ? AND id IN (SELECT user_id FROM emails WHERE email = ?)', name, name).exists?()\n    \
             a || b || c || d\n  end\n"
        ));
    }
    src.push_str("end\n");
    let program = ruby_syntax::parse_program_strict(&src).expect("generated workload parses");
    (env, program)
}

/// Runs one corpus app's test suite under the given dynamic-check
/// configuration (or completely unchecked when `config` is `None`),
/// returning the number of dynamic checks executed.
///
/// The `None` path deliberately skips static checking entirely: it is the
/// "no checks" baseline the overhead benches compare against, so it must
/// not pay for the checker inside a timed iteration.
pub fn run_app_suite(app: &corpus::App, config: Option<CheckConfig>) -> u64 {
    if config.is_some() {
        let (env, program) = prepare_app(app);
        let result = check_prepared(&env, &program, CheckOptions::default());
        run_prepared_suite(&env, &program, &result, config)
    } else {
        // No environment assembly either: `build_env` re-parses hundreds of
        // annotation strings, which the unchecked run never consumes.
        let (program, _sources, _diags) = app.parse();
        let interp = Interpreter::new(program);
        interp.eval_program().expect("suite passes");
        interp.checks_performed()
    }
}

/// Runs a prepared app's test suite (environment, program and checking
/// result built once via [`prepare_app`] + the checker), so benches can time
/// the suite run alone.  Returns the number of dynamic checks executed.
pub fn run_prepared_suite(
    env: &comprdl::CompRdl,
    program: &ruby_syntax::Program,
    checked: &comprdl::ProgramCheckResult,
    config: Option<CheckConfig>,
) -> u64 {
    match config {
        Some(config) => run_prepared_suite_shared(
            env,
            program,
            checked,
            config,
            &std::sync::Arc::new(comprdl::SharedMemo::new()),
            0,
        ),
        None => {
            let interp = Interpreter::new(program.clone());
            interp.eval_program().expect("suite passes");
            interp.checks_performed()
        }
    }
}

/// Like [`run_prepared_suite`], but the hook records into the given
/// [`comprdl::SharedMemo`] under `namespace` — so repeated iterations (and
/// other apps' runs) replay from one warm memo, the configuration the
/// `checked_vs_unchecked` bench measures and CI smoke-tests.
pub fn run_prepared_suite_shared(
    env: &comprdl::CompRdl,
    program: &ruby_syntax::Program,
    checked: &comprdl::ProgramCheckResult,
    config: CheckConfig,
    memo: &std::sync::Arc<comprdl::SharedMemo>,
    namespace: u64,
) -> u64 {
    let mut interp = Interpreter::new(program.clone());
    let hook = comprdl::make_hook_shared(
        checked.checks(),
        checked.store.clone(),
        env.classes.clone(),
        env.helpers.clone(),
        config,
        memo.clone(),
        namespace,
    );
    interp.set_hook(hook);
    interp.eval_program().expect("suite passes");
    interp.checks_performed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_drive_the_corpus() {
        let app = &corpus::apps::all()[0];
        let result = check_app(app, CheckOptions::default());
        assert!(result.methods_checked() > 0);
        assert_eq!(run_app_suite(app, None), 0);
        assert!(run_app_suite(app, Some(CheckConfig::default())) > 0);
    }
}
