//! Machine-readable bench results, persisted to `BENCH_SHARED_MEMO.json`
//! at the repository root so future PRs can diff performance numbers
//! instead of re-reading CI logs.
//!
//! The file is one JSON object with a top-level key per bench (e.g.
//! `memo_churn`, `checked_vs_unchecked`); [`record`] read-modify-writes it
//! so each bench replaces only its own section.  The container has no
//! crates.io access, so the (tiny) JSON reader/writer lives here — it
//! supports exactly the JSON this module emits plus tolerant parsing of
//! hand edits.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Version of the per-bench section layout this module writes.  Bumped
/// whenever a field is added, removed or re-interpreted, so downstream
/// tooling (and CI's "persisted and parseable" gate) can tell a stale file
/// from a current one instead of guessing from the field set.
///
/// History: 1 = the original `smoke` + `scenarios` layout; 2 = sections
/// carry `schema_version` and the `type_core` scenarios exist; 3 = the
/// `recheck_latency` section (incremental re-checking cold/warm medians)
/// exists and the file is written atomically (temp + rename); 4 = the
/// `lint_latency` section (dataflow lint suite cold/warm medians) exists;
/// 5 = the `effect_latency` section (interprocedural effect inference
/// cold/warm medians) exists and `lint_latency` is Merkle-keyed and
/// summaries-aware; 6 = the `recheck_latency` section carries the
/// `parse/recovering` and `parse/strict` rows (the error-recovering front
/// end vs its strict fail-stop wrapper over the clean corpus, feeding the
/// 5%-regression gate).
pub const SCHEMA_VERSION: u32 = 6;

/// One measured scenario: a stable name, the median wall-clock per
/// operation, and the memo counters the run ended with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Stable scenario id, e.g. `warm_read/seqlock` or `churn/m25`.
    pub name: String,
    /// Median nanoseconds per measured operation.
    pub median_ns: u128,
    /// Memo hits over the recorded run.
    pub hits: u64,
    /// Memo misses over the recorded run.
    pub misses: u64,
    /// Stamp invalidations over the recorded run.
    pub invalidations: u64,
    /// Capacity evictions over the recorded run.
    pub evictions: u64,
}

impl Scenario {
    /// Builds a scenario row from a memo's counter snapshot, so benches
    /// never transcribe the four counters by hand.
    pub fn from_stats(name: &str, median_ns: u128, stats: comprdl::MemoStats) -> Self {
        Scenario {
            name: name.to_string(),
            median_ns,
            hits: stats.hits,
            misses: stats.misses,
            invalidations: stats.invalidations,
            evictions: stats.evictions,
        }
    }

    /// Hit rate of the recorded run, in percent.
    pub fn hit_rate_pct(&self) -> f64 {
        comprdl::MemoStats {
            hits: self.hits,
            misses: self.misses,
            invalidations: self.invalidations,
            evictions: self.evictions,
        }
        .hit_rate()
            * 100.0
    }
}

/// Median of per-operation timings in nanoseconds (consumes and sorts the
/// samples).  One definition shared by every bench so the statistic cannot
/// drift between them.
///
/// # Panics
///
/// Panics on an empty sample set — a bench that measured nothing is a bug.
pub fn median_ns(mut samples: Vec<u128>) -> u128 {
    assert!(!samples.is_empty(), "median of zero samples");
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// A parsed JSON value.  Numbers keep their source text so foreign
/// sections round-trip byte-exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` so serialization is deterministic.
    Obj(BTreeMap<String, Json>),
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a byte offset + message on malformed input.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", ch as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            *pos += 1;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            Ok(Json::Num(text_slice(bytes, start, *pos)))
        }
        _ => Err(format!("unexpected input at byte {pos}")),
    }
}

fn text_slice(bytes: &[u8], start: usize, end: usize) -> String {
    String::from_utf8_lossy(&bytes[start..end]).into_owned()
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    // Collect raw bytes (escapes decoded to their UTF-8 encodings) and
    // validate once at the end: pushing bytes >= 0x80 through `as char`
    // would reinterpret multi-byte UTF-8 sequences as Latin-1.
    let mut out: Vec<u8> = Vec::new();
    while let Some(&c) = bytes.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(String::from_utf8_lossy(&out).into_owned()),
            b'\\' => {
                let esc = bytes.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                let decoded = match esc {
                    b'"' => '"',
                    b'\\' => '\\',
                    b'/' => '/',
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    b'b' => '\u{8}',
                    b'f' => '\u{c}',
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        *pos += 4;
                        let code = u32::from_str_radix(&String::from_utf8_lossy(hex), 16)
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                        char::from_u32(code).unwrap_or('\u{fffd}')
                    }
                    other => return Err(format!("unknown escape `\\{}`", other as char)),
                };
                let mut buf = [0u8; 4];
                out.extend_from_slice(decoded.encode_utf8(&mut buf).as_bytes());
            }
            _ => out.push(c),
        }
    }
    Err("unterminated string".to_string())
}

/// Serializes a JSON value with stable key order and 2-space indentation.
pub fn serialize(value: &Json) -> String {
    let mut out = String::new();
    write_value(&mut out, value, 0);
    out.push('\n');
    out
}

fn write_value(out: &mut String, value: &Json, indent: usize) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Json::Num(n) => out.push_str(n),
        Json::Str(s) => write_string(out, s),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent + 1));
                write_value(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Json::Obj(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent + 1));
                write_string(out, key);
                out.push_str(": ");
                write_value(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The canonical results file: `BENCH_SHARED_MEMO.json` at the repo root.
pub fn results_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_SHARED_MEMO.json")
}

/// Replaces `bench`'s section of the results file at `path` with the given
/// scenarios (read-modify-write: other benches' sections are preserved).
/// The section also records whether the run was a `BENCH_SMOKE` smoke run,
/// since smoke timings are not comparable to full ones.
///
/// # Errors
///
/// Propagates filesystem errors.  A missing file is fine (first write),
/// but an existing file that fails to parse is an **error**: silently
/// rewriting it would drop the other benches' sections and hide the
/// broken write from CI's "persisted and parseable" gate.
pub fn record_at(path: &Path, bench: &str, scenarios: &[Scenario]) -> std::io::Result<()> {
    let mut root = match std::fs::read_to_string(path) {
        Ok(text) => match parse(&text) {
            Ok(Json::Obj(map)) => map,
            Ok(_) | Err(_) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "existing results file {} is not a JSON object; refusing to overwrite \
                         (delete it to start fresh)",
                        path.display()
                    ),
                ));
            }
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => BTreeMap::new(),
        Err(e) => return Err(e),
    };
    let rows = scenarios
        .iter()
        .map(|s| {
            let mut row = BTreeMap::new();
            row.insert("name".to_string(), Json::Str(s.name.clone()));
            row.insert("median_ns".to_string(), Json::Num(s.median_ns.to_string()));
            row.insert("hits".to_string(), Json::Num(s.hits.to_string()));
            row.insert("misses".to_string(), Json::Num(s.misses.to_string()));
            row.insert("invalidations".to_string(), Json::Num(s.invalidations.to_string()));
            row.insert("evictions".to_string(), Json::Num(s.evictions.to_string()));
            row.insert("hit_rate_pct".to_string(), Json::Num(format!("{:.2}", s.hit_rate_pct())));
            Json::Obj(row)
        })
        .collect();
    let mut section = BTreeMap::new();
    section.insert("schema_version".to_string(), Json::Num(SCHEMA_VERSION.to_string()));
    section.insert("smoke".to_string(), Json::Bool(std::env::var_os("BENCH_SMOKE").is_some()));
    section.insert("scenarios".to_string(), Json::Arr(rows));
    root.insert(bench.to_string(), Json::Obj(section));
    // Atomic replace: a crash mid-write must never leave a truncated file
    // that the next run's read-modify-write would then refuse to touch.
    comprdl::persist::atomic_write(path, serialize(&Json::Obj(root)).as_bytes())
}

/// [`record_at`] against the canonical [`results_path`].  Returns the path
/// written, so benches can print it.
///
/// # Errors
///
/// See [`record_at`].
pub fn record(bench: &str, scenarios: &[Scenario]) -> std::io::Result<PathBuf> {
    let path = results_path();
    record_at(&path, bench, scenarios)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(name: &str) -> Scenario {
        Scenario {
            name: name.to_string(),
            median_ns: 1234,
            hits: 90,
            misses: 10,
            invalidations: 1,
            evictions: 2,
        }
    }

    #[test]
    fn parse_serialize_roundtrip() {
        let text = r#"{"a": [1, 2.5, -3e2], "b": {"nested": true, "s": "x\ny"}, "c": null}"#;
        let parsed = parse(text).expect("parses");
        let rendered = serialize(&parsed);
        assert_eq!(parse(&rendered).expect("re-parses"), parsed);
        assert!(rendered.contains("\"s\": \"x\\ny\""));
    }

    #[test]
    fn non_ascii_strings_roundtrip_byte_exactly() {
        // Multi-byte UTF-8 must survive the read-modify-write cycle: a
        // byte-at-a-time `as char` parse would turn "café" into "cafÃ©"
        // and corrupt preserved sections on every subsequent run.
        let text = "{\"name\": \"café — наука\", \"u\": \"\\u00e9\"}";
        let parsed = parse(text).expect("parses");
        let Json::Obj(map) = &parsed else { panic!("not an object") };
        assert_eq!(map["name"], Json::Str("café — наука".to_string()));
        assert_eq!(map["u"], Json::Str("é".to_string()));
        let rendered = serialize(&parsed);
        assert_eq!(parse(&rendered).expect("re-parses"), parsed);
        assert!(rendered.contains("café — наука"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn record_preserves_other_sections() {
        let dir = std::env::temp_dir().join(format!("bench-results-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("results.json");
        record_at(&path, "memo_churn", &[scenario("warm_read/seqlock")]).expect("first write");
        record_at(&path, "checked_vs_unchecked", &[scenario("Redmine/memoized")])
            .expect("second write");
        // Overwrite the first section; the second must survive.
        record_at(&path, "memo_churn", &[scenario("warm_read/mutex")]).expect("third write");
        let text = std::fs::read_to_string(&path).expect("readable");
        let Json::Obj(root) = parse(&text).expect("parses") else { panic!("not an object") };
        assert!(root.contains_key("memo_churn"));
        assert!(root.contains_key("checked_vs_unchecked"));
        let Json::Obj(section) = &root["memo_churn"] else { panic!("section not an object") };
        assert_eq!(
            section["schema_version"],
            Json::Num(SCHEMA_VERSION.to_string()),
            "every section must carry the schema version"
        );
        assert!(text.contains("warm_read/mutex"));
        assert!(!text.contains("warm_read/seqlock"), "replaced section must not linger");
        assert!(text.contains("Redmine/memoized"));
        assert!(text.contains("\"hit_rate_pct\": 90.00"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_refuses_to_clobber_an_unparseable_file() {
        let dir = std::env::temp_dir().join(format!("bench-results-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("results.json");
        std::fs::write(&path, "{ truncated").expect("write garbage");
        let err = record_at(&path, "memo_churn", &[scenario("s")]).expect_err("must refuse");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert_eq!(
            std::fs::read_to_string(&path).expect("still readable"),
            "{ truncated",
            "the corrupt file must be left for inspection, not clobbered"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scenario_hit_rate() {
        assert_eq!(scenario("s").hit_rate_pct(), 90.0);
        let empty = Scenario {
            name: "e".into(),
            median_ns: 0,
            hits: 0,
            misses: 0,
            invalidations: 0,
            evictions: 0,
        };
        assert_eq!(empty.hit_rate_pct(), 0.0);
    }
}
