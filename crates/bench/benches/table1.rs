//! Regenerates **Table 1** (library methods with comp type definitions) and
//! benchmarks how long registering the full annotation set takes.
//!
//! The table itself is printed to stdout when the benchmark runs, so
//! `cargo bench --bench table1` both reproduces the paper's rows and
//! measures annotation-registration cost.

use criterion::{criterion_group, criterion_main, Criterion};

fn table1_benchmark(c: &mut Criterion) {
    // Print the reproduced table once.
    let (rows, helpers) = corpus::table1();
    println!("\n{}", corpus::format_table1(&rows, helpers));

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);

    group.bench_function("register_core_library_annotations", |b| {
        b.iter(|| {
            let mut env = comprdl::CompRdl::new();
            comprdl::stdlib::register_all(&mut env);
            std::hint::black_box(env.annotation_count("Array"))
        })
    });

    group.bench_function("register_all_annotations_with_db_dsls", |b| {
        b.iter(|| {
            let env = corpus::harness::table1_env();
            std::hint::black_box(env.annotation_count("Table"))
        })
    });

    group.bench_function("compute_table1_rows", |b| {
        b.iter(|| std::hint::black_box(corpus::table1()))
    });

    group.finish();
}

criterion_group!(benches, table1_benchmark);
criterion_main!(benches);
