//! Effect-inference latency: a cold interprocedural inference pass
//! (termination / purity / taint, bottom-up over the condensed call
//! graph) over the whole corpus against a warm run that replays every
//! summary from the on-disk [`comprdl::CheckCache`] (Merkle-keyed, see
//! `CheckCache::replay_effects`).
//!
//! Each sample summarizes **every** method of all eight corpus apps — the
//! same work the Table 2 harness does per row.  The warm sample re-loads
//! the cache file from disk every time, so it pays deserialization like a
//! fresh process would.
//!
//! Besides timing, this bench is a correctness gate (smoke mode included):
//!
//! * the warm run must replay **every** summary (zero re-summarizes), and
//! * the warm summaries must **render byte-identically** to the cold ones
//!   (SCC ids are recomputed from the current program either way);
//! * in full mode the warm median must beat the cold median.
//!
//! Scenario medians land in `BENCH_SHARED_MEMO.json` under
//! `effect_latency` (`hits` = summaries replayed, `misses` = methods
//! summarized for real), where CI's parse gate asserts their presence.

use analysis::ProgramSummaries;
use bench::results::Scenario;
use comprdl::semdep::DepGraph;
use comprdl::{CheckCache, CompRdl};
use criterion::{criterion_group, criterion_main, Criterion};
use ruby_syntax::Program;
use std::path::PathBuf;
use std::time::Instant;

/// One corpus app, parsed once so the timed loops measure inference and
/// replay, not parsing or graph building.
struct AppCtx {
    name: String,
    program: Program,
    seed: analysis::SeedMap,
    graph: DepGraph,
}

fn contexts() -> Vec<AppCtx> {
    corpus::apps::all()
        .iter()
        .map(|app| {
            let env: CompRdl = app.build_env();
            let (program, _sources, diags) = app.parse();
            assert!(diags.is_empty(), "{}: corpus app must parse cleanly: {diags:?}", app.name);
            let graph = DepGraph::build(&env, &program);
            AppCtx { name: app.name.to_string(), seed: corpus::seed_map(&env), program, graph }
        })
        .collect()
}

/// Infers every app's summaries from scratch; returns the per-app rendered
/// summaries and the number of methods summarized.
fn effects_cold(ctxs: &[AppCtx]) -> (Vec<String>, u64) {
    let mut rendered = Vec::with_capacity(ctxs.len());
    let mut summarized = 0u64;
    for ctx in ctxs {
        let sums = ProgramSummaries::infer(&ctx.program, &ctx.seed);
        summarized += sums.len() as u64;
        rendered.push(sums.render());
    }
    (rendered, summarized)
}

/// Replays every app's summaries from `cache` as the baseline for
/// incremental inference; returns the per-app rendered summaries and the
/// `(replayed, resummarized)` counters.
fn effects_warm(ctxs: &[AppCtx], cache: &CheckCache) -> (Vec<String>, u64, u64) {
    let mut rendered = Vec::with_capacity(ctxs.len());
    let (mut replayed, mut resummarized) = (0u64, 0u64);
    for ctx in ctxs {
        let fixed = corpus::replay_baseline(cache, &ctx.name, &ctx.program, &ctx.graph);
        replayed += fixed.len() as u64;
        let (sums, miss) = ProgramSummaries::infer_with_baseline(&ctx.program, &ctx.seed, &fixed);
        resummarized += miss as u64;
        rendered.push(sums.render());
    }
    (rendered, replayed, resummarized)
}

fn effect_latency(_c: &mut Criterion) {
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();
    let ctxs = contexts();

    // Cold: every method summarized from scratch.  One untimed warm-up
    // iteration first, so neither median pays allocator or page-cache
    // cold-start (the margin between the two paths is small enough for
    // first-iteration noise to matter).
    let samples = bench::sample_size(10);
    let _ = effects_cold(&ctxs);
    let mut cold_timings = Vec::with_capacity(samples);
    let mut cold_rendered = Vec::new();
    let mut cold_summarized = 0u64;
    for _ in 0..samples {
        let started = Instant::now();
        let (rendered, summarized) = effects_cold(&ctxs);
        cold_timings.push(started.elapsed().as_nanos());
        cold_rendered = rendered;
        cold_summarized = summarized;
    }
    let cold_ns = bench::results::median_ns(cold_timings);
    assert!(cold_summarized > 0, "the corpus must have methods to summarize");

    // Persist the summaries the way the incremental harness does.
    let path: PathBuf =
        std::env::temp_dir().join(format!("effect-latency-{}.bin", std::process::id()));
    let mut cache = CheckCache::new();
    for ctx in &ctxs {
        let sums = ProgramSummaries::infer(&ctx.program, &ctx.seed);
        cache.record_effects(&ctx.name, corpus::summaries_to_records(&sums, &ctx.graph));
    }
    cache.save(&path).expect("save effect cache");

    // Warm: everything replays; a fresh load from disk every sample.
    let _ = effects_warm(&ctxs, &CheckCache::load(&path));
    let mut warm_timings = Vec::with_capacity(samples);
    let mut warm_hits = 0u64;
    for _ in 0..samples {
        let started = Instant::now();
        let cache = CheckCache::load(&path);
        let (rendered, replayed, resummarized) = effects_warm(&ctxs, &cache);
        warm_timings.push(started.elapsed().as_nanos());
        assert_eq!(resummarized, 0, "the warm run must re-summarize zero methods");
        warm_hits = replayed;
        assert_eq!(
            rendered, cold_rendered,
            "replayed summaries must render byte-identically to the cold run"
        );
    }
    let warm_ns = bench::results::median_ns(warm_timings);
    let _ = std::fs::remove_file(&path);

    println!(
        "effect latency (8 apps, {cold_summarized} methods): cold {cold_ns} ns, warm {warm_ns} \
         ns ({:.2}x)",
        cold_ns as f64 / warm_ns.max(1) as f64
    );
    if !smoke {
        assert!(
            warm_ns < cold_ns,
            "replaying summaries must beat re-inferring (warm {warm_ns} ns vs cold {cold_ns} ns)"
        );
    }

    let scenarios = vec![
        Scenario {
            name: "effects/cold".to_string(),
            median_ns: cold_ns,
            hits: 0,
            misses: cold_summarized,
            invalidations: 0,
            evictions: 0,
        },
        Scenario {
            name: "effects/warm".to_string(),
            median_ns: warm_ns,
            hits: warm_hits,
            misses: 0,
            invalidations: 0,
            evictions: 0,
        },
    ];
    let path = bench::results::record("effect_latency", &scenarios).expect("persist results");
    println!("results written to {}", path.display());
}

criterion_group!(benches, effect_latency);
criterion_main!(benches);
