//! The migration-churn workload for the shared run-time check memo
//! ([`comprdl::SharedMemo`]): generated migration *sequences* — many
//! epochs per run — measuring how warm hit rate degrades with mutation
//! frequency, for the lock-free seqlock read path against the mutex
//! baseline (`SharedMemo::with_settings(.., locked_reads = true)`).
//!
//! Besides timing, this bench is a correctness/regression gate:
//!
//! * **Namespace isolation** — under a one-app migration sequence, the
//!   *other* namespaces' hit/miss counters must be *exactly* those of the
//!   no-migration run (per-namespace epochs; the emulated global-epoch
//!   scenario shows the hit rate they would have lost under PR 4's global
//!   counter).
//! * **Bounded shards** — the eviction-pressure scenario must actually
//!   evict (and never grow past capacity).
//! * **Uncontended warm reads** — the seqlock path must beat the mutex
//!   path (asserted in full mode only; two-sample smoke timings on a
//!   shared CI runner would flake).
//! * **The type core** — the hash-consed subtype / fingerprint / render
//!   fast paths must produce outputs identical to the structural-walk
//!   oracles, beat them on the warm path (full mode only), and leave the
//!   full eight-app corpus evaluation byte-identical with the verdict
//!   cache on and off.
//!
//! Every scenario's median ns + hit/miss/invalidation/eviction counts are
//! persisted to `BENCH_SHARED_MEMO.json` at the repo root
//! ([`bench::results`]), so future PRs diff perf instead of re-reading CI
//! logs.  CI runs this bench with `BENCH_SMOKE=1` and then fails if the
//! file is missing or unparseable.

use bench::results::Scenario;
use comprdl::{
    memo_namespace, CheckConfig, CompRdlHook, HelperRegistry, InsertedCheck, MemoKey, MemoStats,
    MemoTable, SharedMemo,
};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rdl_types::{verdict_cache, ClassTable, HashKey, Subtyper, Type, TypeStore};
use ruby_interp::{DynamicCheckHook, Value};
use ruby_syntax::Span;
use std::sync::Arc;
use std::time::Instant;

/// Namespaces ("apps") sharing the memo in the churn scenarios.
const APPS: usize = 4;
/// Checked calls per app per churn sample.
const CALLS: usize = 3_000;
/// Warm lookups per timed warm-read sample.
const WARM_PASS: usize = 10_000;
/// The named type-level slot the generated migrations flip.
const MODE_SLOT: &str = "bench.mode";

fn site(n: usize) -> Span {
    Span::new(n * 10, n * 10 + 5, n as u32 + 1)
}

/// Two return-checked sites; the value schedule cycles three shapes per
/// site, one of which blames — so warm replays cover both the inline `Ok`
/// fast path and the per-slot blame payload path.
fn checks() -> Vec<InsertedCheck> {
    vec![
        InsertedCheck {
            site: site(1),
            description: "Array#map".to_string(),
            expected_return: Type::array(Type::nominal("Integer")),
            consistency: None,
        },
        InsertedCheck {
            site: site(2),
            description: "Hash#[]".to_string(),
            expected_return: Type::union([Type::nominal("String"), Type::nominal("Symbol")]),
            consistency: None,
        },
    ]
}

/// The deterministic call schedule: site alternates per step, the value
/// index cycles.  Index 2 at site 2 (`Int`) fails the union check and
/// records a blame.
fn schedule_values() -> [Vec<Value>; 2] {
    [
        vec![
            Value::array(vec![Value::Int(1)]),
            Value::array(vec![Value::Int(1), Value::Int(2)]),
            Value::array(vec![]),
        ],
        vec![Value::str("a"), Value::Sym("id".into()), Value::Int(7)],
    ]
}

fn hook_on(memo: &Arc<SharedMemo>, namespace: u64) -> CompRdlHook {
    CompRdlHook::with_shared_memo(
        checks(),
        TypeStore::new(),
        ClassTable::with_builtins(),
        HelperRegistry::new(),
        CheckConfig { raise_blame: false, ..CheckConfig::default() },
        memo.clone(),
        namespace,
    )
}

/// One churn run: `APPS` hooks interleaved round-robin over the schedule;
/// app 0 migrates (a `mutate_store` flipping [`MODE_SLOT`]) every
/// `migrate_every` steps (0 = never).  With `global_bump`, every other
/// namespace's epoch is bumped alongside — emulating PR 4's global epoch
/// so its cross-app flush cost is measurable against the per-namespace
/// behaviour.
struct ChurnOutcome {
    ns_per_call: u128,
    per_app: Vec<comprdl::CacheStats>,
    memo: MemoStats,
}

fn run_churn(migrate_every: usize, locked_reads: bool, global_bump: bool) -> ChurnOutcome {
    let samples = bench::sample_size(7);
    let mut timings = Vec::with_capacity(samples);
    let mut last: Option<ChurnOutcome> = None;
    for _ in 0..samples {
        let memo = Arc::new(SharedMemo::with_settings(
            SharedMemo::DEFAULT_SHARDS,
            SharedMemo::DEFAULT_CAPACITY,
            locked_reads,
        ));
        let namespaces: Vec<u64> =
            (0..APPS).map(|i| memo.register_namespace(&format!("app-{i}"))).collect();
        let hooks: Vec<CompRdlHook> = namespaces.iter().map(|ns| hook_on(&memo, *ns)).collect();
        let values = schedule_values();
        let started = Instant::now();
        for i in 0..CALLS {
            if migrate_every != 0 && i > 0 && i.is_multiple_of(migrate_every) {
                let ty = if (i / migrate_every).is_multiple_of(2) {
                    Type::nominal("String")
                } else {
                    Type::nominal("Float")
                };
                hooks[0].mutate_store(|s| s.set_named(MODE_SLOT, ty));
                if global_bump {
                    for ns in &namespaces[1..] {
                        memo.bump_namespace_epoch(*ns);
                    }
                }
            }
            let which = i % 2;
            let value = &values[which][(i / 2) % 3];
            for hook in &hooks {
                let _ = hook.after_call(site(which + 1), value);
            }
        }
        let elapsed = started.elapsed();
        timings.push(elapsed.as_nanos() / (CALLS as u128 * APPS as u128));
        last = Some(ChurnOutcome {
            ns_per_call: 0,
            per_app: hooks.iter().map(CompRdlHook::memo_stats).collect(),
            memo: memo.stats(),
        });
    }
    let mut outcome = last.expect("at least one sample");
    outcome.ns_per_call = bench::results::median_ns(timings);
    outcome
}

/// Median ns per fully-warm lookup (single namespace, memo pre-populated,
/// every call a hit) on the seqlock or mutex path.
fn run_warm_read(locked_reads: bool) -> (u128, MemoStats) {
    let memo = Arc::new(SharedMemo::with_settings(
        SharedMemo::DEFAULT_SHARDS,
        SharedMemo::DEFAULT_CAPACITY,
        locked_reads,
    ));
    let hook = hook_on(&memo, memo.register_namespace("warm"));
    let values = schedule_values();
    // Populate: one pass over every (site, value) pair.
    for i in 0..6 {
        let which = i % 2;
        let _ = hook.after_call(site(which + 1), &values[which][(i / 2) % 3]);
    }
    let samples = bench::sample_size(30);
    let mut timings = Vec::with_capacity(samples);
    for _ in 0..samples {
        let started = Instant::now();
        for i in 0..WARM_PASS {
            let which = i % 2;
            let _ = hook.after_call(site(which + 1), &values[which][(i / 2) % 3]);
        }
        timings.push(started.elapsed().as_nanos() / WARM_PASS as u128);
        // The blame list grows by one per replayed blame; drain it so the
        // timed loop measures the memo, not a growing Vec reallocation.
        let _ = hook.take_blames();
    }
    (bench::results::median_ns(timings), memo.stats())
}

/// Median ns per bare memo lookup (no hook, no value fingerprinting): the
/// isolated read-path cost the seqlock rework targets.  The hook-level
/// warm-read scenario above it measures the end-to-end call, where
/// fingerprinting and check dispatch dilute the lock's share.
fn run_memo_read(locked_reads: bool) -> (u128, MemoStats) {
    let memo = SharedMemo::with_settings(
        SharedMemo::DEFAULT_SHARDS,
        SharedMemo::DEFAULT_CAPACITY,
        locked_reads,
    );
    let ns_id = memo.register_namespace("probe");
    let ns = memo.namespace_state(ns_id);
    let keys: Vec<MemoKey> =
        (0..8u64).map(|i| (ns_id, site(1), 0x9E37_79B9 ^ (i * 0x10001))).collect();
    for key in &keys {
        memo.insert(MemoTable::After, key, 0, 0, &Ok(()));
    }
    let samples = bench::sample_size(30);
    let mut timings = Vec::with_capacity(samples);
    for _ in 0..samples {
        let started = Instant::now();
        for i in 0..WARM_PASS {
            black_box(memo.lookup(MemoTable::After, &keys[i % keys.len()], 0, &ns));
        }
        timings.push(started.elapsed().as_nanos() / WARM_PASS as u128);
    }
    (bench::results::median_ns(timings), memo.stats())
}

/// Eviction pressure: a one-shard, minimum-capacity memo driven over many
/// more distinct value shapes than it can hold.
fn run_eviction_pressure() -> MemoStats {
    let memo = Arc::new(SharedMemo::with_settings(1, 8, false));
    let check = InsertedCheck {
        site: site(9),
        description: "Integer#succ".to_string(),
        expected_return: Type::nominal("Integer"),
        consistency: None,
    };
    let hook = CompRdlHook::with_shared_memo(
        vec![check],
        TypeStore::new(),
        ClassTable::with_builtins(),
        HelperRegistry::new(),
        CheckConfig { raise_blame: false, ..CheckConfig::default() },
        memo.clone(),
        memo.register_namespace("pressure"),
    );
    for _pass in 0..3 {
        for i in 0..32i64 {
            let _ = hook.after_call(site(9), &Value::Int(i));
        }
    }
    assert!(memo.len() <= memo.capacity(), "capacity is a hard bound");
    memo.stats()
}

/// The type-core working set: signature-shaped store-free types (the kind
/// the checker compares thousands of times per run) plus store-backed
/// schema hashes, tuples and const strings, which bypass the interner and
/// exercise the per-store caches instead.
fn type_core_workload(store: &mut TypeStore) -> Vec<Type> {
    let string = Type::nominal("String");
    let integer = Type::nominal("Integer");
    let symbol = Type::nominal("Symbol");
    let mut set = vec![
        string.clone(),
        integer.clone(),
        symbol.clone(),
        Type::nominal("Numeric"),
        Type::nominal("Object"),
        Type::Bool,
        Type::nil(),
        Type::sym("emails"),
        Type::int(42),
        Type::array(integer.clone()),
        Type::array(Type::union([string.clone(), symbol.clone()])),
        Type::hash(symbol.clone(), string.clone()),
        Type::union([string.clone(), symbol.clone()]),
        Type::union([integer.clone(), Type::nominal("Float"), Type::nil()]),
        Type::Optional(Box::new(integer.clone())),
        Type::Vararg(Box::new(string.clone())),
        Type::class_of("User"),
        Type::array(Type::array(Type::union([integer.clone(), Type::nil()]))),
    ];
    // The shapes the checker actually spends its time on: wide unions
    // (structural subtyping scans all × any members) and deep generic
    // nests, where one warm verdict-cache probe replaces a quadratic walk.
    let row = |name: &str| {
        Type::union([
            Type::hash(symbol.clone(), Type::union([string.clone(), integer.clone(), Type::nil()])),
            Type::array(Type::nominal(name)),
            Type::nominal(name),
            Type::nil(),
        ])
    };
    let wide_a = Type::union([
        row("User"),
        row("Post"),
        row("Topic"),
        Type::array(Type::hash(symbol.clone(), string.clone())),
        integer.clone(),
    ]);
    let wide_b = Type::union([
        row("User"),
        row("Post"),
        row("Topic"),
        row("Badge"),
        Type::array(Type::hash(symbol.clone(), Type::union([string.clone(), symbol.clone()]))),
        Type::union([integer.clone(), Type::nominal("Float")]),
    ]);
    let mut deep = Type::hash(symbol.clone(), wide_a.clone());
    for _ in 0..4 {
        deep = Type::array(Type::hash(symbol.clone(), Type::union([deep, Type::nil()])));
    }
    set.extend([wide_a, wide_b, deep]);
    set.push(store.new_finite_hash(vec![
        (HashKey::Sym("id".into()), integer.clone()),
        (HashKey::Sym("name".into()), string.clone()),
    ]));
    set.push(store.new_finite_hash(vec![
        (HashKey::Sym("id".into()), integer.clone()),
        (HashKey::Sym("email".into()), string.clone()),
        (HashKey::Sym("age".into()), Type::union([integer, Type::nil()])),
    ]));
    set.push(store.new_tuple(vec![string.clone(), Type::Bool]));
    set.push(store.new_const_string("SELECT 1"));
    set
}

/// One full pass over the working set on either the structural (`uncached`
/// oracle APIs) or the cached path: every pairwise subtype query plus a
/// fingerprint and a render per type.  Returns the observable outputs so
/// the two paths can be gated byte-identical before they are timed.
fn type_core_pass(
    sub: &Subtyper<'_>,
    store: &TypeStore,
    set: &[Type],
    structural: bool,
) -> (Vec<bool>, Vec<u64>, Vec<String>) {
    let mut verdicts = Vec::with_capacity(set.len() * set.len());
    for a in set {
        for b in set {
            verdicts.push(if structural {
                sub.is_subtype_uncached(store, a, b)
            } else {
                sub.is_subtype(store, a, b)
            });
        }
    }
    let digests = set
        .iter()
        .map(|t| if structural { store.fingerprint_uncached(t) } else { store.fingerprint(t) })
        .collect();
    let renders = set
        .iter()
        .map(|t| if structural { store.render_uncached(t) } else { store.render(t) })
        .collect();
    (verdicts, digests, renders)
}

/// Times the type-core workload on both paths (median ns per operation,
/// warm) and returns the two scenario rows.  The interned row carries the
/// verdict-cache counter deltas of its timed passes.
fn run_type_core(smoke: bool) -> (Scenario, Scenario) {
    let classes = ClassTable::with_builtins();
    let sub = Subtyper::new(&classes);
    let mut store = TypeStore::new();
    let set = type_core_workload(&mut store);
    let ops = (set.len() * set.len() + 2 * set.len()) as u128;

    // The observational gate: before timing anything, both paths must
    // agree on every verdict, digest and rendering.
    let structural_out = type_core_pass(&sub, &store, &set, true);
    let cached_out = type_core_pass(&sub, &store, &set, false);
    assert_eq!(structural_out, cached_out, "cached type-core outputs diverged from structural");

    let samples = bench::sample_size(30);
    let time_path = |structural: bool| {
        let mut timings = Vec::with_capacity(samples);
        for _ in 0..samples {
            let started = Instant::now();
            black_box(type_core_pass(&sub, &store, &set, structural));
            timings.push(started.elapsed().as_nanos() / ops);
        }
        bench::results::median_ns(timings)
    };
    // Structural first; the gate pass above already warmed the interner and
    // the verdict cache, so the cached timings measure the warm path.
    let structural_ns = time_path(true);
    let before = verdict_cache::stats();
    let interned_ns = time_path(false);
    let after = verdict_cache::stats();

    println!(
        "type core (pairwise subtype + fingerprint + render): structural {structural_ns} ns/op, \
         interned {interned_ns} ns/op ({:.2}x)",
        structural_ns as f64 / interned_ns.max(1) as f64
    );
    if !smoke {
        assert!(
            interned_ns < structural_ns,
            "the warm interned path must beat the structural walk (interned {interned_ns} ns/op \
             vs structural {structural_ns} ns/op)"
        );
    }
    let structural_row = Scenario {
        name: "type_core/structural".to_string(),
        median_ns: structural_ns,
        hits: 0,
        misses: 0,
        invalidations: 0,
        evictions: 0,
    };
    let interned_row = Scenario {
        name: "type_core/interned".to_string(),
        median_ns: interned_ns,
        hits: after.hits - before.hits,
        misses: after.misses - before.misses,
        invalidations: 0,
        evictions: after.evictions - before.evictions,
    };
    (structural_row, interned_row)
}

/// The corpus-level gate from the issue: the verdict cache (and with it the
/// id fast path) must not change a byte of the full eight-app evaluation's
/// deterministic output — diagnostics, blame renderings, cast counts.
fn assert_type_core_invisible_at_corpus_scale() {
    let rendered = |rows: &[corpus::Table2Row]| -> String {
        let mut out = corpus::stable_report(rows);
        for (app, row) in corpus::apps::all().iter().zip(rows) {
            out.push_str(&corpus::render_runtime_blames(app, row));
        }
        out
    };
    let was = verdict_cache::set_enabled(false);
    let uncached = corpus::table2().expect("uncached corpus run");
    verdict_cache::set_enabled(true);
    let cached = corpus::table2().expect("cached corpus run");
    verdict_cache::set_enabled(was);
    assert_eq!(
        rendered(&cached),
        rendered(&uncached),
        "the verdict cache changed observable corpus output"
    );
}

fn memo_churn(_c: &mut Criterion) {
    let mut scenarios = Vec::new();
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();

    // Uncontended warm reads, measured twice (acceptance (a)):
    //
    // * bare memo lookups, where the lock cost is undiluted — the strict
    //   seqlock-beats-mutex assertion runs here, and
    // * full hook calls, where value fingerprinting and check dispatch
    //   surround the lookup — reported for the end-to-end view.
    let (probe_seqlock_ns, probe_seqlock_stats) = run_memo_read(false);
    let (probe_mutex_ns, probe_mutex_stats) = run_memo_read(true);
    println!(
        "memo read (bare lookup, all hits): seqlock {probe_seqlock_ns} ns, mutex \
         {probe_mutex_ns} ns ({:.2}x)",
        probe_mutex_ns as f64 / probe_seqlock_ns.max(1) as f64
    );
    if !smoke {
        assert!(
            probe_seqlock_ns < probe_mutex_ns,
            "lock-free warm reads must beat the mutex path (seqlock {probe_seqlock_ns} ns vs \
             mutex {probe_mutex_ns} ns)"
        );
    }
    scenarios.push(Scenario::from_stats(
        "memo_read/seqlock",
        probe_seqlock_ns,
        probe_seqlock_stats,
    ));
    scenarios.push(Scenario::from_stats("memo_read/mutex", probe_mutex_ns, probe_mutex_stats));

    let (seqlock_ns, seqlock_stats) = run_warm_read(false);
    let (mutex_ns, mutex_stats) = run_warm_read(true);
    println!(
        "warm read (full hook call, all hits): seqlock {seqlock_ns} ns/call, mutex {mutex_ns} \
         ns/call ({:.2}x)",
        mutex_ns as f64 / seqlock_ns.max(1) as f64
    );
    assert!(
        seqlock_stats.hits >= WARM_PASS as u64,
        "warm-read runs must be all hits: {seqlock_stats:?}"
    );
    scenarios.push(Scenario::from_stats("warm_read/seqlock", seqlock_ns, seqlock_stats));
    scenarios.push(Scenario::from_stats("warm_read/mutex", mutex_ns, mutex_stats));

    // Hit rate vs mutation frequency: app 0 migrates every m steps; apps
    // 1..3 never do.  Per-namespace epochs mean their counters must be
    // *identical* to the no-migration run (acceptance (b)).
    let baseline = run_churn(0, false, false);
    let others_baseline: Vec<comprdl::CacheStats> = baseline.per_app[1..].to_vec();
    println!("churn m=0: {} ns/call, memo {:?}", baseline.ns_per_call, baseline.memo);
    scenarios.push(Scenario::from_stats("churn/m0", baseline.ns_per_call, baseline.memo));
    let mut m25_other_hits = 0u64;
    for migrate_every in [100, 25, 8] {
        let outcome = run_churn(migrate_every, false, false);
        if migrate_every == 25 {
            m25_other_hits = outcome.per_app[1..].iter().map(|s| s.hits).sum();
        }
        println!(
            "churn m={migrate_every}: {} ns/call, memo {:?} (app-0 {:?})",
            outcome.ns_per_call, outcome.memo, outcome.per_app[0]
        );
        assert!(
            outcome.per_app[0].invalidations > 0,
            "the migrating app must churn its own entries: {:?}",
            outcome.per_app[0]
        );
        assert_eq!(
            &outcome.per_app[1..],
            others_baseline.as_slice(),
            "m={migrate_every}: app 0's migrations changed another namespace's hit/miss \
             counters (per-namespace epoch isolation broken)"
        );
        scenarios.push(Scenario::from_stats(
            &format!("churn/m{migrate_every}"),
            outcome.ns_per_call,
            outcome.memo,
        ));
    }

    // The same one-app churn under an emulated global epoch (PR 4
    // semantics): every migration flushes all four namespaces, so the
    // non-migrating apps must lose hits — the cost per-namespace epochs
    // remove.
    let global = run_churn(25, false, true);
    let per_ns_hits = m25_other_hits;
    let global_hits: u64 = global.per_app[1..].iter().map(|s| s.hits).sum();
    println!(
        "churn m=25 global epoch: {} ns/call, other-app hits {global_hits} (vs {per_ns_hits} \
         with per-namespace epochs)",
        global.ns_per_call
    );
    assert!(
        global_hits < per_ns_hits,
        "the emulated global epoch must cost the non-migrating apps hits \
         ({global_hits} vs {per_ns_hits})"
    );
    scenarios.push(Scenario::from_stats("churn/m25_global_epoch", global.ns_per_call, global.memo));

    // The mutex baseline under churn, for the timing comparison.
    let mutex_churn = run_churn(25, true, false);
    println!("churn m=25 mutex reads: {} ns/call", mutex_churn.ns_per_call);
    scenarios.push(Scenario::from_stats(
        "churn/m25_mutex",
        mutex_churn.ns_per_call,
        mutex_churn.memo,
    ));

    // Bounded shards: overflow must evict, not grow.
    let pressure = run_eviction_pressure();
    println!("eviction pressure: {pressure:?}");
    assert!(pressure.evictions > 0, "the tiny table must evict: {pressure:?}");
    scenarios.push(Scenario::from_stats("eviction_pressure", 0, pressure));

    // Sanity: registration hands back the same id the hooks derive, so the
    // churn scenarios really recorded under the labeled namespaces.
    assert_eq!(SharedMemo::new().register_namespace("app-0"), memo_namespace("app-0"));

    // The type-core rows: the hash-consed fast paths (id short-circuit +
    // verdict cache + precomputed digests + cached renders) against the
    // structural-walk oracles on a signature-shaped working set, gated on
    // identical outputs and on the full corpus being byte-identical with
    // the cache on and off.
    let (type_core_structural, type_core_interned) = run_type_core(smoke);
    scenarios.push(type_core_structural);
    scenarios.push(type_core_interned);
    assert_type_core_invisible_at_corpus_scale();

    let path = bench::results::record("memo_churn", &scenarios).expect("persist bench results");
    println!("results written to {}", path.display());
}

criterion_group!(benches, memo_churn);
criterion_main!(benches);
