//! Lint-suite latency: a cold from-scratch lint pass over the whole corpus
//! against a warm run that replays every verdict from the on-disk
//! [`comprdl::CheckCache`] (Merkle-keyed, see `CheckCache::replay_lints` —
//! `LINT0105` follows taint through calls, so a verdict depends on the
//! method's transitive callees).
//!
//! Each sample lints **every** method of all eight corpus apps — the same
//! work the Table 2 harness does per row.  The warm sample re-loads the
//! cache file from disk every time, so it pays deserialization like a
//! fresh process would.
//!
//! Besides timing, this bench is a correctness gate (smoke mode included):
//!
//! * the warm run must replay **every** lint verdict (zero re-lints), and
//! * the warm run's rendered warnings must be **byte-identical** to the
//!   cold run's (replayed records render through the same code-derived
//!   notes as fresh findings);
//! * in full mode the warm median must beat the cold median.
//!
//! Scenario medians land in `BENCH_SHARED_MEMO.json` under `lint_latency`
//! (`hits` = verdicts replayed, `misses` = methods linted for real), where
//! CI's parse gate asserts their presence.

use bench::results::Scenario;
use comprdl::persist::content_hash;
use comprdl::semdep::DepGraph;
use comprdl::CheckCache;
use criterion::{criterion_group, criterion_main, Criterion};
use diagnostics::DiagnosticBag;
use ruby_syntax::Program;
use std::path::PathBuf;
use std::time::Instant;

/// One corpus app, parsed once (with its dependency graph and effect
/// summaries prebuilt) so the timed loops measure linting and replay, not
/// parsing or inference.
struct AppCtx {
    name: String,
    program: Program,
    files: Vec<u64>,
    graph: DepGraph,
    summaries: analysis::ProgramSummaries,
}

fn contexts() -> Vec<AppCtx> {
    corpus::apps::all()
        .iter()
        .map(|app| {
            let env = app.build_env();
            let (program, _sources, diags) = app.parse();
            assert!(diags.is_empty(), "{}: corpus app must parse cleanly: {diags:?}", app.name);
            let graph = DepGraph::build(&env, &program);
            let summaries = corpus::effects_pass(&program, &corpus::seed_map(&env), 1);
            AppCtx {
                name: app.name.to_string(),
                program,
                files: vec![content_hash(app.source), content_hash(app.test_suite)],
                graph,
                summaries,
            }
        })
        .collect()
}

fn render(bag: &DiagnosticBag) -> String {
    bag.iter().map(|d| format!("{d}\n")).collect()
}

fn merkle_of(ctx: &AppCtx, owner: &str, def: &ruby_syntax::ast::MethodDef) -> u64 {
    ctx.graph
        .merkle(owner, &def.name, def.singleton)
        .unwrap_or_else(|| ruby_syntax::method_hash(def))
}

/// Lints every app from scratch (summaries-aware, like the harness);
/// returns the per-app rendered warnings and the number of methods linted.
fn lint_cold(ctxs: &[AppCtx]) -> (Vec<String>, u64) {
    let mut rendered = Vec::with_capacity(ctxs.len());
    let mut linted = 0u64;
    for ctx in ctxs {
        let methods = corpus::lint_pass_with_summaries(&ctx.program, Some(&ctx.summaries), 1);
        linted += methods.len() as u64;
        rendered.push(render(&corpus::lint_bag(&methods)));
    }
    (rendered, linted)
}

/// Replays every app's lint verdicts from `cache` (Merkle-keyed); returns
/// the per-app rendered warnings and the `(replayed, missed)` counters.
fn lint_warm(ctxs: &[AppCtx], cache: &CheckCache) -> (Vec<String>, u64, u64) {
    let mut rendered = Vec::with_capacity(ctxs.len());
    let (mut replayed, mut missed) = (0u64, 0u64);
    for ctx in ctxs {
        let mut bag = DiagnosticBag::new();
        for (owner, def) in &ctx.program.methods() {
            let merkle = merkle_of(ctx, owner, def);
            match cache.replay_lints(&ctx.name, &ctx.files, owner, def, merkle) {
                Some(records) => {
                    replayed += 1;
                    bag.extend(records.iter().map(corpus::record_to_diagnostic));
                }
                None => {
                    missed += 1;
                    let fresh =
                        analysis::lint_method_with_summaries(owner, def, Some(&ctx.summaries));
                    bag.extend(fresh.findings.iter().map(diagnostics::Diagnostic::from));
                }
            }
        }
        bag.sort_by_span_then_code();
        rendered.push(render(&bag));
    }
    (rendered, replayed, missed)
}

fn lint_latency(_c: &mut Criterion) {
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();
    let ctxs = contexts();

    // Cold: every method linted from scratch.
    let samples = bench::sample_size(10);
    let mut cold_timings = Vec::with_capacity(samples);
    let mut cold_rendered = Vec::new();
    let mut cold_linted = 0u64;
    for _ in 0..samples {
        let started = Instant::now();
        let (rendered, linted) = lint_cold(&ctxs);
        cold_timings.push(started.elapsed().as_nanos());
        cold_rendered = rendered;
        cold_linted = linted;
    }
    let cold_ns = bench::results::median_ns(cold_timings);
    assert!(cold_linted > 0, "the corpus must have methods to lint");

    // Persist the verdicts the way the harness does, through the disk.
    let path: PathBuf =
        std::env::temp_dir().join(format!("lint-latency-{}.bin", std::process::id()));
    let mut cache = CheckCache::new();
    for ctx in &ctxs {
        let records: Vec<_> = ctx
            .program
            .methods()
            .iter()
            .map(|(owner, def)| {
                let fresh = analysis::lint_method_with_summaries(owner, def, Some(&ctx.summaries));
                (
                    owner.clone(),
                    *def,
                    merkle_of(ctx, owner, def),
                    corpus::findings_to_records(&fresh),
                )
            })
            .collect();
        cache.record_lints(&ctx.name, ctx.files.clone(), &records);
    }
    cache.save(&path).expect("save lint cache");

    // Warm: everything replays; a fresh load from disk every sample.
    let mut warm_timings = Vec::with_capacity(samples);
    let mut warm_hits = 0u64;
    for _ in 0..samples {
        let started = Instant::now();
        let cache = CheckCache::load(&path);
        let (rendered, replayed, missed) = lint_warm(&ctxs, &cache);
        warm_timings.push(started.elapsed().as_nanos());
        assert_eq!(missed, 0, "the warm run must re-lint zero methods");
        warm_hits = replayed;
        assert_eq!(
            rendered, cold_rendered,
            "replayed lint warnings must render byte-identically to the cold run"
        );
    }
    let warm_ns = bench::results::median_ns(warm_timings);
    let _ = std::fs::remove_file(&path);

    println!(
        "lint latency (8 apps, {cold_linted} methods): cold {cold_ns} ns, warm {warm_ns} ns \
         ({:.2}x)",
        cold_ns as f64 / warm_ns.max(1) as f64
    );
    if !smoke {
        assert!(
            warm_ns < cold_ns,
            "replaying lint verdicts must beat re-linting (warm {warm_ns} ns vs cold {cold_ns} \
             ns)"
        );
    }

    let scenarios = vec![
        Scenario {
            name: "lint/cold".to_string(),
            median_ns: cold_ns,
            hits: 0,
            misses: cold_linted,
            invalidations: 0,
            evictions: 0,
        },
        Scenario {
            name: "lint/warm".to_string(),
            median_ns: warm_ns,
            hits: warm_hits,
            misses: 0,
            invalidations: 0,
            evictions: 0,
        },
    ];
    let path = bench::results::record("lint_latency", &scenarios).expect("persist results");
    println!("results written to {}", path.display());
}

criterion_group!(benches, lint_latency);
criterion_main!(benches);
