//! Ablation: cost of the two categories of dynamic checks (DESIGN.md §4.2).
//!
//! The paper inserts (a) return-type checks at every comp-typed library call
//! and (b) a consistency re-evaluation of the comp type on the call's actual
//! inputs (§4, "Heap Mutation").  This benchmark runs the Discourse
//! analogue's test suite under: no checks, return checks only, and
//! return + consistency checks, quantifying what each layer costs.

use comprdl::CheckConfig;
use criterion::{criterion_group, criterion_main, Criterion};

fn ablation_checks(c: &mut Criterion) {
    let apps = corpus::apps::all();
    let discourse = apps.iter().find(|a| a.name == "Discourse").expect("discourse app");

    let mut group = c.benchmark_group("check_ablation");
    group.sample_size(10);

    group.bench_function("no_checks", |b| {
        b.iter(|| std::hint::black_box(bench::run_app_suite(discourse, None)))
    });
    group.bench_function("return_checks_only", |b| {
        b.iter(|| {
            std::hint::black_box(bench::run_app_suite(
                discourse,
                Some(CheckConfig {
                    return_checks: true,
                    consistency_checks: false,
                    ..CheckConfig::default()
                }),
            ))
        })
    });
    group.bench_function("return_and_consistency_checks", |b| {
        b.iter(|| {
            std::hint::black_box(bench::run_app_suite(
                discourse,
                Some(CheckConfig {
                    return_checks: true,
                    consistency_checks: true,
                    ..CheckConfig::default()
                }),
            ))
        })
    });

    group.finish();
}

criterion_group!(benches, ablation_checks);
criterion_main!(benches);
