//! Regenerates **Table 2** (type checking results per subject program) and
//! benchmarks the two quantities the paper times: type checking each subject
//! program, and running its test suite with and without the inserted dynamic
//! checks (the ~1.6% overhead claim of §5.3).

use comprdl::{CheckConfig, CheckOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn table2_benchmark(c: &mut Criterion) {
    // Print the reproduced table (per-run timings measured by the harness).
    match corpus::table2() {
        Ok(rows) => println!("\n{}", corpus::format_table2(&rows)),
        Err(e) => panic!("harness failed: {e}"),
    }

    let apps = corpus::apps::all();

    let mut group = c.benchmark_group("type_check");
    group.sample_size(10);
    for app in &apps {
        group.bench_with_input(BenchmarkId::new("comp_types", app.name), app, |b, app| {
            b.iter(|| std::hint::black_box(bench::check_app(app, CheckOptions::default())))
        });
        group.bench_with_input(BenchmarkId::new("plain_rdl", app.name), app, |b, app| {
            b.iter(|| {
                std::hint::black_box(bench::check_app(
                    app,
                    CheckOptions { use_comp_types: false, ..CheckOptions::default() },
                ))
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("test_suite");
    group.sample_size(10);
    for app in &apps {
        group.bench_with_input(BenchmarkId::new("no_checks", app.name), app, |b, app| {
            b.iter(|| std::hint::black_box(bench::run_app_suite(app, None)))
        });
        group.bench_with_input(BenchmarkId::new("with_checks", app.name), app, |b, app| {
            // Blame is collected, not raised: the Sequel app's suite blames
            // by design after its mid-suite migration.
            let config = CheckConfig { raise_blame: false, ..CheckConfig::default() };
            b.iter(|| std::hint::black_box(bench::run_app_suite(app, Some(config))))
        });
    }
    group.finish();
}

criterion_group!(benches, table2_benchmark);
criterion_main!(benches);
