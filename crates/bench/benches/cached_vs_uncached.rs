//! Measures the comp-type evaluation cache: type checking every corpus app
//! with the cache enabled (the default) against the paper's
//! re-evaluate-at-every-call-site baseline.
//!
//! Besides timing, this bench is a correctness gate: for every app the
//! cached and uncached runs must agree on error count, cast counts and the
//! rendered diagnostics, and the cached run must actually hit the cache.
//! CI runs it with `BENCH_SMOKE=1` (two samples) and fails on divergence.

use comprdl::CheckOptions;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::{Duration, Instant};

fn errors_rendered(result: &comprdl::ProgramCheckResult) -> Vec<String> {
    result.errors().iter().map(|e| e.to_string()).collect()
}

fn cached_vs_uncached(c: &mut Criterion) {
    let apps = corpus::apps::all();

    // Correctness gate first: identical verdicts with and without the cache.
    let mut total_hits = 0u64;
    for app in &apps {
        let cached = bench::check_app(app, CheckOptions::default());
        let uncached = bench::check_app_uncached(app);
        assert_eq!(
            errors_rendered(&cached),
            errors_rendered(&uncached),
            "{}: cached and uncached checking disagree on diagnostics",
            app.name
        );
        assert_eq!(
            (cached.total_casts(), cached.methods_checked()),
            (uncached.total_casts(), uncached.methods_checked()),
            "{}: cached and uncached checking disagree on casts/methods",
            app.name
        );
        total_hits += cached.cache_stats.hits;
        println!(
            "{:<12} cache stats: {} hits, {} misses, {} invalidations",
            app.name,
            cached.cache_stats.hits,
            cached.cache_stats.misses,
            cached.cache_stats.invalidations
        );
    }
    assert!(total_hits > 0, "the cache never hit across the whole corpus");

    // Time the checking phase alone: environment assembly and parsing are
    // hoisted out of the measured iterations.
    let prepared: Vec<_> = apps.iter().map(|app| (app.name, bench::prepare_app(app))).collect();
    let uncached_options = CheckOptions { use_eval_cache: false, ..CheckOptions::default() };

    let samples = bench::sample_size(30);
    let mut group = c.benchmark_group("comp_type_cache");
    group.sample_size(samples);
    let mut cached_total = Duration::ZERO;
    let mut uncached_total = Duration::ZERO;
    for (name, (env, program)) in &prepared {
        group.bench_with_input(BenchmarkId::new("cached", name), &(env, program), |b, (e, p)| {
            b.iter(|| std::hint::black_box(bench::check_prepared(e, p, CheckOptions::default())))
        });
        group.bench_with_input(BenchmarkId::new("uncached", name), &(env, program), |b, (e, p)| {
            b.iter(|| std::hint::black_box(bench::check_prepared(e, p, uncached_options)))
        });
        // Aggregate wall-clock comparison over a fixed number of runs.
        let started = Instant::now();
        for _ in 0..samples {
            std::hint::black_box(bench::check_prepared(env, program, CheckOptions::default()));
        }
        cached_total += started.elapsed();
        let started = Instant::now();
        for _ in 0..samples {
            std::hint::black_box(bench::check_prepared(env, program, uncached_options));
        }
        uncached_total += started.elapsed();
    }
    group.finish();

    let speedup = uncached_total.as_secs_f64() / cached_total.as_secs_f64().max(f64::EPSILON);
    println!(
        "\ncorpus checking total over {samples} runs: cached {cached_total:?}, \
         uncached {uncached_total:?} ({speedup:.2}x)"
    );

    // Call-site density of a real Rails app: the same query comp types
    // evaluated at many call sites.  This is the workload the cache is for.
    let scale_methods = if std::env::var_os("BENCH_SMOKE").is_some() { 40 } else { 120 };
    let (env, program) = bench::scale_workload(scale_methods);
    let cached = bench::check_prepared(&env, &program, CheckOptions::default());
    let uncached = bench::check_prepared(&env, &program, uncached_options);
    assert_eq!(errors_rendered(&cached), errors_rendered(&uncached), "scale workload diverged");
    assert!(cached.cache_stats.hits > cached.cache_stats.misses, "{:?}", cached.cache_stats);

    let mut group = c.benchmark_group("comp_type_cache_scale");
    group.sample_size(bench::sample_size(10));
    group.bench_function(format!("cached/{scale_methods}_methods"), |b| {
        b.iter(|| {
            std::hint::black_box(bench::check_prepared(&env, &program, CheckOptions::default()))
        })
    });
    group.bench_function(format!("uncached/{scale_methods}_methods"), |b| {
        b.iter(|| std::hint::black_box(bench::check_prepared(&env, &program, uncached_options)))
    });
    group.finish();

    let runs = bench::sample_size(10);
    let started = Instant::now();
    for _ in 0..runs {
        std::hint::black_box(bench::check_prepared(&env, &program, CheckOptions::default()));
    }
    let cached_scale = started.elapsed();
    let started = Instant::now();
    for _ in 0..runs {
        std::hint::black_box(bench::check_prepared(&env, &program, uncached_options));
    }
    let uncached_scale = started.elapsed();
    let speedup = uncached_scale.as_secs_f64() / cached_scale.as_secs_f64().max(f64::EPSILON);
    println!(
        "scale workload ({scale_methods} methods) over {runs} runs: cached {cached_scale:?}, \
         uncached {uncached_scale:?} ({speedup:.2}x)"
    );
    // The strict timing assertion only runs in full mode: the smoke-mode CI
    // gate is the byte-identical-diagnostics checks above — two-sample
    // wall-clock comparisons on a shared single-core runner would flake.
    if std::env::var_os("BENCH_SMOKE").is_none() {
        assert!(
            cached_scale < uncached_scale,
            "cached checking must be strictly faster on the call-site-dense workload \
             (cached {cached_scale:?} vs uncached {uncached_scale:?})"
        );
    }
}

criterion_group!(benches, cached_vs_uncached);
criterion_main!(benches);
