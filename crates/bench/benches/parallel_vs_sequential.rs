//! Measures the threaded corpus harness: per-app parallel checking (scoped
//! worker threads with per-method work stealing) against the sequential
//! checker, plus the whole-corpus `table2` run in both modes.
//!
//! Besides timing, this bench is a correctness gate: the sequential and
//! parallel corpus runs must produce byte-identical deterministic output
//! (`corpus::stable_report`, i.e. everything except wall-clock timings) and
//! identical per-app error counts.  CI runs it with `BENCH_SMOKE=1` and
//! fails on divergence.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const CHECK_THREADS: usize = 4;

fn parallel_vs_sequential(c: &mut Criterion) {
    let apps = corpus::apps::all();

    // Correctness gate: identical diagnostics and byte-identical stable
    // output between the sequential and parallel harnesses.
    let sequential = corpus::table2().expect("sequential harness");
    let parallel = corpus::table2_parallel().expect("parallel harness");
    for (s, p) in sequential.iter().zip(parallel.iter()) {
        assert_eq!(
            (s.program.as_str(), s.errors()),
            (p.program.as_str(), p.errors()),
            "parallel harness changed an app's error count"
        );
    }
    let seq_report = corpus::stable_report(&sequential);
    let par_report = corpus::stable_report(&parallel);
    assert_eq!(seq_report, par_report, "sequential / parallel table2 output diverged");
    println!("{seq_report}");

    // Time the checking phase alone (environment assembly and parsing
    // hoisted out of the iterations).  On a single-core host the threaded
    // runs mostly measure their own coordination overhead; the correctness
    // gates above are host-independent.
    let prepared: Vec<_> = apps.iter().map(|app| (app.name, bench::prepare_app(app))).collect();
    let samples = bench::sample_size(10);
    let mut group = c.benchmark_group("check_threading");
    group.sample_size(samples);
    for (name, (env, program)) in &prepared {
        group.bench_with_input(
            BenchmarkId::new("sequential", name),
            &(env, program),
            |b, (e, p)| {
                b.iter(|| {
                    std::hint::black_box(bench::check_prepared(
                        e,
                        p,
                        comprdl::CheckOptions::default(),
                    ))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("parallel_x{CHECK_THREADS}"), name),
            &(env, program),
            |b, (e, p)| {
                b.iter(|| std::hint::black_box(bench::check_prepared_parallel(e, p, CHECK_THREADS)))
            },
        );
    }
    group.finish();

    // A call-site-dense program with enough methods for work stealing to
    // have something to steal.
    let scale_methods = if std::env::var_os("BENCH_SMOKE").is_some() { 40 } else { 120 };
    let (env, program) = bench::scale_workload(scale_methods);
    let sequential_run = bench::check_prepared(&env, &program, comprdl::CheckOptions::default());
    let parallel_run = bench::check_prepared_parallel(&env, &program, CHECK_THREADS);
    let rendered = |r: &comprdl::ProgramCheckResult| {
        r.errors().iter().map(|e| e.to_string()).collect::<Vec<_>>()
    };
    assert_eq!(
        rendered(&sequential_run),
        rendered(&parallel_run),
        "parallel checking changed the scale workload's diagnostics"
    );
    let mut group = c.benchmark_group("check_threading_scale");
    group.sample_size(bench::sample_size(10));
    group.bench_function(format!("sequential/{scale_methods}_methods"), |b| {
        b.iter(|| {
            std::hint::black_box(bench::check_prepared(
                &env,
                &program,
                comprdl::CheckOptions::default(),
            ))
        })
    });
    group.bench_function(format!("parallel_x{CHECK_THREADS}/{scale_methods}_methods"), |b| {
        b.iter(|| {
            std::hint::black_box(bench::check_prepared_parallel(&env, &program, CHECK_THREADS))
        })
    });
    group.finish();

    let mut group = c.benchmark_group("table2_harness");
    group.sample_size(bench::sample_size(3));
    group.bench_function("sequential", |b| {
        b.iter(|| std::hint::black_box(corpus::table2().expect("harness")))
    });
    group.bench_function("parallel", |b| {
        b.iter(|| std::hint::black_box(corpus::table2_parallel().expect("harness")))
    });
    group.finish();
}

criterion_group!(benches, parallel_vs_sequential);
criterion_main!(benches);
