//! Ablation: native (Rust) vs interpreted (Ruby-subset) type-level helper
//! methods (DESIGN.md §4.1), plus the cost of a single comp-type evaluation
//! of the Figure 1 `joins` computation.

use comprdl::{CompRdl, TlcValue};
use criterion::{criterion_group, criterion_main, Criterion};
use db_types::{ColumnType, DbRegistry};
use rdl_types::{ClassTable, Type, TypeStore};
use std::sync::Arc;

fn env_with_db() -> CompRdl {
    let mut db = DbRegistry::new();
    db.add_table(
        "users",
        &[
            ("id", ColumnType::Integer),
            ("username", ColumnType::String),
            ("staged", ColumnType::Boolean),
        ],
    );
    db.add_table(
        "emails",
        &[
            ("id", ColumnType::Integer),
            ("email", ColumnType::String),
            ("user_id", ColumnType::Integer),
        ],
    );
    db.add_model("User", "users");
    db.add_association("User", "emails", "emails");
    let mut env = CompRdl::new();
    comprdl::stdlib::register_all(&mut env);
    db_types::register_all(&mut env, Arc::new(db));
    env
}

fn eval_helper(
    env: &CompRdl,
    classes: &ClassTable,
    src: &str,
    bindings: Vec<(&str, Type)>,
) -> Type {
    let expr = ruby_syntax::parse_expr(src).expect("parses");
    let mut store = TypeStore::new();
    let bindings = bindings.into_iter().map(|(k, v)| (k.to_string(), TlcValue::Type(v))).collect();
    comprdl::eval_comp_type(&mut store, classes, &env.helpers, bindings, &expr).expect("evaluates")
}

fn ablation_helpers(c: &mut Criterion) {
    let env = env_with_db();
    let classes = env.classes.clone();

    let mut group = c.benchmark_group("helper_dispatch");
    group.sample_size(20);

    // Native helper: schema_type is implemented in Rust.
    group.bench_function("native_schema_type", |b| {
        b.iter(|| {
            std::hint::black_box(eval_helper(
                &env,
                &classes,
                "schema_type(tself)",
                vec![("tself", Type::class_of("User"))],
            ))
        })
    });

    // Interpreted helper: `idx` (Hash#[]'s logic) is written in the Ruby
    // subset and interpreted by the type-level evaluator.
    group.bench_function("interpreted_idx_helper", |b| {
        b.iter(|| {
            let mut store = TypeStore::new();
            let page = store.new_finite_hash(vec![
                (rdl_types::HashKey::Sym("info".into()), Type::array(Type::nominal("String"))),
                (rdl_types::HashKey::Sym("title".into()), Type::nominal("String")),
            ]);
            let expr = ruby_syntax::parse_expr("idx(tself, t)").expect("parses");
            let bindings = vec![
                ("tself".to_string(), TlcValue::Type(page)),
                ("t".to_string(), TlcValue::Type(Type::sym("info"))),
            ]
            .into_iter()
            .collect();
            std::hint::black_box(
                comprdl::eval_comp_type(&mut store, &classes, &env.helpers, bindings, &expr)
                    .expect("evaluates"),
            )
        })
    });

    // The full Figure 1 joins computation (native + merge).
    group.bench_function("figure1_joins_computation", |b| {
        b.iter(|| {
            std::hint::black_box(eval_helper(
                &env,
                &classes,
                "joins_type(tself, t)",
                vec![("tself", Type::class_of("User")), ("t", Type::sym("emails"))],
            ))
        })
    });

    group.finish();
}

criterion_group!(benches, ablation_helpers);
criterion_main!(benches);
