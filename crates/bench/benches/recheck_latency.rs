//! Incremental re-checking latency: a cold from-scratch corpus check
//! against a warm run that replays every verdict from the on-disk
//! [`comprdl::CheckCache`], plus the single-method-edit case in between.
//!
//! Each sample covers **both** checking passes (comp types on, plain RDL)
//! for all eight corpus apps — the same work `corpus::table2_incremental`
//! does, minus the test suites, so the cold/warm gap measures the checker,
//! not the interpreter.  The warm sample re-loads the cache file from disk
//! every time: a fresh process pays deserialization, so the bench does too.
//!
//! Besides timing, this bench is a correctness gate (smoke mode included):
//!
//! * the warm run must replay **every** verdict (zero re-checks), and every
//!   replayed verdict must agree with the cold run on error count, casts
//!   and inserted checks;
//! * the single-method edit must invalidate *some but not all* methods of
//!   the edited app and leave every other app fully replayed;
//! * in full mode the warm median must beat the cold median.
//!
//! Scenario medians land in `BENCH_SHARED_MEMO.json` under
//! `recheck_latency` (`hits` = verdicts replayed, `misses` = verdicts
//! re-checked), where CI's parse gate asserts their presence.  The section
//! also carries the `parse/recovering` vs `parse/strict` rows: the
//! error-recovering front end must not tax clean-file parsing by more than
//! 5% over its strict fail-stop wrapper (full mode gates the ratio).

use bench::results::Scenario;
use comprdl::persist::content_hash;
use comprdl::semdep::{env_hash, DepGraph};
use comprdl::{CheckCache, CheckOptions, CompRdl, MethodCheckResult, TypeChecker};
use criterion::{criterion_group, criterion_main, Criterion};
use rdl_types::TypeStore;
use ruby_syntax::Program;
use std::path::PathBuf;
use std::time::Instant;

/// One corpus app, parsed and hashed once so the timed loops measure
/// checking and replay, not environment assembly.
struct AppCtx {
    name: String,
    plain_key: String,
    env: CompRdl,
    program: Program,
    files: Vec<u64>,
    graph: DepGraph,
    env_h: u64,
}

fn contexts() -> Vec<AppCtx> {
    corpus::apps::all()
        .iter()
        .map(|app| {
            let env = app.build_env();
            let (program, _sources, diags) = app.parse();
            assert!(diags.is_empty(), "{}: corpus app must parse clean", app.name);
            let graph = DepGraph::build(&env, &program);
            let env_h = env_hash(&env);
            AppCtx {
                name: app.name.to_string(),
                plain_key: format!("{}::plain", app.name),
                env,
                program,
                files: vec![content_hash(app.source), content_hash(app.test_suite)],
                graph,
                env_h,
            }
        })
        .collect()
}

fn plain_options() -> CheckOptions {
    CheckOptions { use_comp_types: false, ..CheckOptions::default() }
}

/// The observable shape of one method's verdict, for the replay-fidelity
/// gate (the corpus tests assert full byte-identity; here the cheap
/// summary keeps the gate inside the timed bench's budget).
fn verdict_shape(m: &MethodCheckResult) -> (usize, usize, usize, usize) {
    (m.errors.len(), m.explicit_casts, m.implicit_casts, m.checks.len())
}

/// One incremental checking pass over one app: replay what the cache
/// validates, re-check the rest.  Returns `(verdicts, replayed, checked)`.
fn check_pass(
    ctx: &AppCtx,
    cache_key: &str,
    options: CheckOptions,
    cache: &CheckCache,
) -> (Vec<MethodCheckResult>, usize, usize) {
    let selected = TypeChecker::labeled_methods(&ctx.env, &ctx.program, "app");
    let mut store = TypeStore::new();
    let mut out: Vec<Option<MethodCheckResult>> = Vec::with_capacity(selected.len());
    let mut misses = Vec::new();
    for (idx, (owner, def)) in selected.iter().enumerate() {
        let replayed = ctx.graph.merkle(owner, &def.name, def.singleton).and_then(|merkle| {
            cache.replay(cache_key, &ctx.env, ctx.env_h, &ctx.files, owner, def, merkle, &mut store)
        });
        match replayed {
            Some(result) => out.push(Some(result)),
            None => {
                out.push(None);
                misses.push((idx, (owner.clone(), *def)));
            }
        }
    }
    let replayed = selected.len() - misses.len();
    let checked = misses.len();
    if !misses.is_empty() {
        let subset: Vec<_> = misses.iter().map(|(_, pair)| pair.clone()).collect();
        let fresh = TypeChecker::new(&ctx.env, &ctx.program, options).check_methods(&subset);
        for ((idx, _), result) in misses.into_iter().zip(fresh.methods) {
            out[idx] = Some(result);
        }
    }
    (out.into_iter().flatten().collect(), replayed, checked)
}

/// Runs both checking passes over every app against `cache`, returning the
/// per-app comp verdicts plus total (replayed, checked) counters.
fn run_corpus(ctxs: &[AppCtx], cache: &CheckCache) -> (Vec<Vec<MethodCheckResult>>, u64, u64) {
    let mut verdicts = Vec::with_capacity(ctxs.len());
    let (mut replayed, mut checked) = (0u64, 0u64);
    for ctx in ctxs {
        let (comp, r1, c1) = check_pass(ctx, &ctx.name, CheckOptions::default(), cache);
        let (_, r2, c2) = check_pass(ctx, &ctx.plain_key, plain_options(), cache);
        replayed += (r1 + r2) as u64;
        checked += (c1 + c2) as u64;
        verdicts.push(comp);
    }
    (verdicts, replayed, checked)
}

/// Records one app's two passes into `cache` (what the harness does after
/// checking), so the warm scenarios have something to replay.
fn populate(ctxs: &[AppCtx], cache: &mut CheckCache) {
    for ctx in ctxs {
        let selected = TypeChecker::labeled_methods(&ctx.env, &ctx.program, "app");
        for (key, options) in
            [(&ctx.name, CheckOptions::default()), (&ctx.plain_key, plain_options())]
        {
            let result = TypeChecker::new(&ctx.env, &ctx.program, options).check_labeled("app");
            let frozen: Vec<_> = selected
                .iter()
                .zip(&result.methods)
                .map(|((owner, def), verdict)| {
                    let merkle = ctx.graph.merkle(owner, &def.name, def.singleton).unwrap_or(0);
                    (owner.clone(), *def, merkle, verdict)
                })
                .collect();
            cache.record_app(key, ctx.env_h, ctx.files.clone(), &frozen, &result.store);
        }
    }
}

fn recheck_latency(_c: &mut Criterion) {
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();
    let ctxs = contexts();
    let empty = CheckCache::new();

    // Cold: every verdict checked from scratch (the empty cache misses).
    let samples = bench::sample_size(10);
    let mut cold_timings = Vec::with_capacity(samples);
    let mut cold_verdicts = Vec::new();
    let mut cold_misses = 0u64;
    for _ in 0..samples {
        let started = Instant::now();
        let (verdicts, replayed, checked) = run_corpus(&ctxs, &empty);
        cold_timings.push(started.elapsed().as_nanos());
        assert_eq!(replayed, 0, "an empty cache must replay nothing");
        cold_verdicts = verdicts;
        cold_misses = checked;
    }
    let cold_ns = bench::results::median_ns(cold_timings);

    // Persist the verdicts the way the harness does, through the disk.
    let path: PathBuf =
        std::env::temp_dir().join(format!("recheck-latency-{}.bin", std::process::id()));
    let mut cache = CheckCache::new();
    populate(&ctxs, &mut cache);
    cache.save(&path).expect("save check cache");

    // Warm: everything replays; a fresh load from disk every sample.
    let mut warm_timings = Vec::with_capacity(samples);
    let mut warm_hits = 0u64;
    for _ in 0..samples {
        let started = Instant::now();
        let cache = CheckCache::load(&path);
        let (verdicts, replayed, checked) = run_corpus(&ctxs, &cache);
        warm_timings.push(started.elapsed().as_nanos());
        assert_eq!(checked, 0, "the warm run must replay every verdict");
        warm_hits = replayed;
        for (cold_app, warm_app) in cold_verdicts.iter().zip(&verdicts) {
            for (cold_m, warm_m) in cold_app.iter().zip(warm_app) {
                assert_eq!(
                    verdict_shape(cold_m),
                    verdict_shape(warm_m),
                    "a replayed verdict diverged from the from-scratch check"
                );
            }
        }
    }
    let warm_ns = bench::results::median_ns(warm_timings);

    // Edit one method of one app: its merkle (and its dependents') moves,
    // everything else replays.  The edited app is re-parsed; the others
    // reuse their contexts untouched.
    let apps = corpus::apps::all();
    let edited_app = &apps[0];
    let edited_name = {
        let ctx = &ctxs[0];
        TypeChecker::labeled_methods(&ctx.env, &ctx.program, "app")[0].1.name.clone()
    };
    let edited_src = corpus::with_method_edit(edited_app.source, &edited_name)
        .expect("labeled method has a def line");
    let edited_ctx = {
        let env = edited_app.build_env();
        let (program, _sources, _diags) = edited_app.parse_with_source(&edited_src);
        let graph = DepGraph::build(&env, &program);
        let env_h = env_hash(&env);
        AppCtx {
            name: edited_app.name.to_string(),
            plain_key: format!("{}::plain", edited_app.name),
            env,
            program,
            files: vec![content_hash(&edited_src), content_hash(edited_app.test_suite)],
            graph,
            env_h,
        }
    };
    let mut edit_ctxs = ctxs;
    edit_ctxs[0] = edited_ctx;
    let mut edit_timings = Vec::with_capacity(samples);
    let (mut edit_hits, mut edit_misses) = (0u64, 0u64);
    for _ in 0..samples {
        let started = Instant::now();
        let cache = CheckCache::load(&path);
        let (_, replayed, checked) = run_corpus(&edit_ctxs, &cache);
        edit_timings.push(started.elapsed().as_nanos());
        assert!(checked >= 2, "the edit must invalidate the method in both passes");
        assert!(
            checked < cold_misses,
            "a one-method edit must not invalidate the whole corpus ({checked} re-checked)"
        );
        edit_hits = replayed;
        edit_misses = checked;
    }
    let edit_ns = bench::results::median_ns(edit_timings);
    let _ = std::fs::remove_file(&path);

    // Parse latency over the clean corpus: the recovering front end
    // (diagnostics threaded everywhere) against its strict fail-stop
    // wrapper.  The recovery machinery must be free on clean files — the
    // full-mode gate allows it at most 5% over the wrapper.
    let sources: Vec<String> = apps.iter().map(|a| a.full_source()).collect();
    let parse_samples = bench::sample_size(30);
    let mut recovering_timings = Vec::with_capacity(parse_samples);
    let mut strict_timings = Vec::with_capacity(parse_samples);
    for _ in 0..parse_samples {
        let started = Instant::now();
        for src in &sources {
            let (program, diags) = ruby_syntax::parse_program(src);
            assert!(diags.is_empty(), "clean corpus source produced recovery diagnostics");
            std::hint::black_box(program);
        }
        recovering_timings.push(started.elapsed().as_nanos());

        let started = Instant::now();
        for src in &sources {
            let program = ruby_syntax::parse_program_strict(src).expect("clean corpus source");
            std::hint::black_box(program);
        }
        strict_timings.push(started.elapsed().as_nanos());
    }
    let parse_recovering_ns = bench::results::median_ns(recovering_timings);
    let parse_strict_ns = bench::results::median_ns(strict_timings);
    // Correctness side of the same gate (smoke mode included): recovery is
    // actually live on broken input, not just unpaid-for on clean input.
    let (_, broken_diags) = ruby_syntax::parse_program("def m()\n  )\nend\n");
    assert_eq!(broken_diags.len(), 1, "the recovering parser must diagnose broken input");

    println!(
        "recheck latency (both passes, 8 apps): cold {cold_ns} ns, warm {warm_ns} ns \
         ({:.2}x), one edit {edit_ns} ns ({edit_misses} verdicts re-checked)",
        cold_ns as f64 / warm_ns.max(1) as f64
    );
    println!(
        "parse latency (8 clean apps): recovering {parse_recovering_ns} ns, strict wrapper \
         {parse_strict_ns} ns"
    );
    if !smoke {
        assert!(
            warm_ns < cold_ns,
            "replaying from the cache must beat re-checking (warm {warm_ns} ns vs cold \
             {cold_ns} ns)"
        );
        assert!(
            parse_recovering_ns as f64 <= parse_strict_ns as f64 * 1.05,
            "error recovery must not tax clean-file parsing by more than 5% (recovering \
             {parse_recovering_ns} ns vs strict {parse_strict_ns} ns)"
        );
    }

    let scenarios = vec![
        Scenario {
            name: "recheck/cold".to_string(),
            median_ns: cold_ns,
            hits: 0,
            misses: cold_misses,
            invalidations: 0,
            evictions: 0,
        },
        Scenario {
            name: "recheck/warm".to_string(),
            median_ns: warm_ns,
            hits: warm_hits,
            misses: 0,
            invalidations: 0,
            evictions: 0,
        },
        Scenario {
            name: "recheck/edit_one".to_string(),
            median_ns: edit_ns,
            hits: edit_hits,
            misses: edit_misses,
            invalidations: 0,
            evictions: 0,
        },
        // Parse rows carry no memo counters; the medians alone feed the
        // 5%-regression gate above and the CI presence check.
        Scenario {
            name: "parse/recovering".to_string(),
            median_ns: parse_recovering_ns,
            hits: 0,
            misses: 0,
            invalidations: 0,
            evictions: 0,
        },
        Scenario {
            name: "parse/strict".to_string(),
            median_ns: parse_strict_ns,
            hits: 0,
            misses: 0,
            invalidations: 0,
            evictions: 0,
        },
    ];
    let path = bench::results::record("recheck_latency", &scenarios).expect("persist results");
    println!("results written to {}", path.display());
}

criterion_group!(benches, recheck_latency);
criterion_main!(benches);
