//! The Table 2 overhead experiment: each corpus app's test suite under no
//! dynamic checks, the paper's pay-at-every-hit checks (`CompRdlHook` with
//! memoization off), and the memoized fast path.
//!
//! Besides timing, this bench is a correctness gate: `table2_overhead`
//! fails any app whose memoized and unmemoized runs disagree on executed
//! check counts or produce non-byte-identical blame sets, and this bench
//! additionally requires the memo to actually hit (and the memoized store
//! to stay smaller) on the call-site-dense Redmine workload.  CI runs it
//! with `BENCH_SMOKE=1` (two samples) and fails on divergence.

use comprdl::CheckConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::{Duration, Instant};

fn checked_vs_unchecked(c: &mut Criterion) {
    // Correctness gate first: the harness enforces identical check counts
    // and byte-identical blame sets per app, erroring out otherwise.
    let rows = corpus::table2_overhead().expect("overhead harness correctness gate");
    println!("{}", corpus::format_overhead(&rows));
    assert_eq!(rows.len(), 7, "the grown corpus has seven apps");
    let redmine = rows.iter().find(|r| r.program == "Redmine").expect("dense app present");
    assert!(
        redmine.memo_stats.hits > redmine.memo_stats.misses,
        "the memo must mostly hit on the dense workload: {:?}",
        redmine.memo_stats
    );
    assert!(
        redmine.store_memoized < redmine.store_unmemoized,
        "memoized interning must not amplify the store ({} vs {})",
        redmine.store_memoized,
        redmine.store_unmemoized
    );

    let unmemoized_config = CheckConfig { memoize: false, ..CheckConfig::default() };

    // Time the suite runs alone: environment assembly, parsing and type
    // checking are hoisted out of the measured iterations.
    let apps = corpus::apps::all();
    let prepared: Vec<_> = apps
        .iter()
        .map(|app| {
            let (env, program) = bench::prepare_app(app);
            let checked = bench::check_prepared(&env, &program, comprdl::CheckOptions::default());
            (app.name, env, program, checked)
        })
        .collect();

    let mut group = c.benchmark_group("dynamic_check_overhead");
    group.sample_size(bench::sample_size(20));
    for (name, env, program, checked) in &prepared {
        group.bench_with_input(BenchmarkId::new("no_hook", name), &(), |b, ()| {
            b.iter(|| std::hint::black_box(bench::run_prepared_suite(env, program, checked, None)))
        });
        group.bench_with_input(BenchmarkId::new("unmemoized", name), &(), |b, ()| {
            b.iter(|| {
                std::hint::black_box(bench::run_prepared_suite(
                    env,
                    program,
                    checked,
                    Some(unmemoized_config),
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("memoized", name), &(), |b, ()| {
            b.iter(|| {
                std::hint::black_box(bench::run_prepared_suite(
                    env,
                    program,
                    checked,
                    Some(CheckConfig::default()),
                ))
            })
        });
    }
    group.finish();

    // Aggregate wall-clock comparison on the dense app, the workload the
    // memo exists for.
    let (_, env, program, checked) =
        prepared.iter().find(|(name, ..)| *name == "Redmine").expect("redmine prepared");
    let runs = bench::sample_size(10);
    let timed = |config: Option<CheckConfig>| {
        let started = Instant::now();
        for _ in 0..runs {
            std::hint::black_box(bench::run_prepared_suite(env, program, checked, config));
        }
        started.elapsed()
    };
    let no_hook: Duration = timed(None);
    let unmemoized = timed(Some(unmemoized_config));
    let memoized = timed(Some(CheckConfig::default()));
    let pct = |with: Duration| {
        (with.as_secs_f64() - no_hook.as_secs_f64()) / no_hook.as_secs_f64().max(f64::EPSILON)
            * 100.0
    };
    println!(
        "Redmine suite over {runs} runs: no hook {no_hook:?}, unmemoized {unmemoized:?} \
         (+{:.1}%), memoized {memoized:?} (+{:.1}%)",
        pct(unmemoized),
        pct(memoized)
    );
    // The strict timing assertion only runs in full mode: smoke-mode CI
    // gates on the behavioural checks above — two-sample wall-clock
    // comparisons on a shared single-core runner would flake.
    if std::env::var_os("BENCH_SMOKE").is_none() {
        assert!(
            memoized < unmemoized,
            "the memoized hook must be strictly faster on the call-site-dense workload \
             (memoized {memoized:?} vs unmemoized {unmemoized:?})"
        );
    }
}

criterion_group!(benches, checked_vs_unchecked);
criterion_main!(benches);
