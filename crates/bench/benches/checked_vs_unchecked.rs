//! The Table 2 overhead experiment: each corpus app's test suite under no
//! dynamic checks, the paper's pay-at-every-hit checks (`CompRdlHook` with
//! memoization off), the memoized fast path against a cold shared memo, and
//! a warm re-run against the same memo.
//!
//! Besides timing, this bench is a correctness gate: `table2_overhead`
//! fails any app whose memoized, unmemoized or warm runs disagree on
//! executed check counts or produce non-byte-identical blame *sequences*
//! (the warm comparison catches shared-memo cross-talk), and this bench
//! additionally requires the memo to actually hit (and the memoized store
//! to stay smaller) on the call-site-dense Redmine workload, the Sequel
//! app's mid-suite migration to blame exactly as the baseline does, and the
//! parallel corpus harness to sustain a non-trivial hit count on one shared
//! memo.  CI runs it with `BENCH_SMOKE=1` (two samples) and fails on
//! divergence; the shared memo's shard hit/miss statistics are printed so
//! regressions in cross-thread hit rate show up in CI logs.

use bench::results::Scenario;
use comprdl::{CheckConfig, SharedMemo};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn checked_vs_unchecked(c: &mut Criterion) {
    // Correctness gate first: the harness enforces identical check counts
    // and byte-identical blame sequences per app — including between the
    // cold and warm shared-memo runs — erroring out otherwise.
    let overhead_memo = Arc::new(SharedMemo::new());
    let rows =
        corpus::table2_overhead_shared(&overhead_memo).expect("overhead harness correctness gate");
    println!("{}", corpus::format_overhead(&rows));
    println!("{}", corpus::format_memo_stats(&overhead_memo));
    assert_eq!(rows.len(), 8, "the grown corpus has eight apps");
    let redmine = rows.iter().find(|r| r.program == "Redmine").expect("dense app present");
    assert!(
        redmine.memo_stats.hits > redmine.memo_stats.misses,
        "the memo must mostly hit on the dense workload: {:?}",
        redmine.memo_stats
    );
    assert!(
        redmine.store_memoized < redmine.store_unmemoized,
        "memoized interning must not amplify the store ({} vs {})",
        redmine.store_memoized,
        redmine.store_unmemoized
    );
    assert!(
        redmine.warm_memo_stats.hits >= redmine.memo_stats.hits,
        "a warm run against the shared memo must hit at least as often as the cold one: \
         {:?} vs {:?}",
        redmine.warm_memo_stats,
        redmine.memo_stats
    );
    let sequel = rows.iter().find(|r| r.program == "Sequel").expect("migrating app present");
    assert_eq!(sequel.blames, 3, "the mid-suite migration must blame exactly as the baseline");
    let memo_stats = overhead_memo.stats();
    assert!(
        memo_stats.invalidations > 0,
        "the Sequel migration must invalidate shared entries: {memo_stats:?}"
    );

    // The parallel corpus harness over one shared memo: eight app threads,
    // one table.  Correctness (byte-identical stable_report) is enforced by
    // the test suite; here we surface the shared table's hit rate under
    // concurrent recording.  (Each app keys under its own namespace, so
    // these hits are apps replaying their own sites through the shared
    // table while other threads record into it; *cross-hook* replay proper
    // is what the warm overhead runs above and tests/shared_memo.rs
    // exercise.)
    let parallel_memo = Arc::new(SharedMemo::new());
    let parallel_rows = corpus::table2_parallel_shared(&parallel_memo).expect("parallel harness");
    assert_eq!(parallel_rows.len(), 8);
    println!("Parallel harness over one shared memo:");
    println!("{}", corpus::format_memo_stats(&parallel_memo));
    assert!(
        parallel_memo.stats().hits > 0,
        "the parallel harness must hit the shared memo: {:?}",
        parallel_memo.stats()
    );

    let collect_config = CheckConfig { raise_blame: false, ..CheckConfig::default() };
    let unmemoized_config = CheckConfig { memoize: false, ..collect_config };

    // Time the suite runs alone: environment assembly, parsing and type
    // checking are hoisted out of the measured iterations.
    let apps = corpus::apps::all();
    let prepared: Vec<_> = apps
        .iter()
        .map(|app| {
            let (env, program) = bench::prepare_app(app);
            let checked = bench::check_prepared(&env, &program, comprdl::CheckOptions::default());
            (app.name, env, program, checked)
        })
        .collect();

    let mut group = c.benchmark_group("dynamic_check_overhead");
    group.sample_size(bench::sample_size(20));
    for (name, env, program, checked) in &prepared {
        let namespace = comprdl::memo_namespace(name);
        group.bench_with_input(BenchmarkId::new("no_hook", name), &(), |b, ()| {
            b.iter(|| std::hint::black_box(bench::run_prepared_suite(env, program, checked, None)))
        });
        group.bench_with_input(BenchmarkId::new("unmemoized", name), &(), |b, ()| {
            b.iter(|| {
                std::hint::black_box(bench::run_prepared_suite(
                    env,
                    program,
                    checked,
                    Some(unmemoized_config),
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("memoized", name), &(), |b, ()| {
            b.iter(|| {
                std::hint::black_box(bench::run_prepared_suite(
                    env,
                    program,
                    checked,
                    Some(collect_config),
                ))
            })
        });
        // The shared-memo path: one memo across iterations, so everything
        // after the first iteration measures warm replays.
        let shared = Arc::new(SharedMemo::new());
        group.bench_with_input(BenchmarkId::new("memoized_shared_warm", name), &(), |b, ()| {
            b.iter(|| {
                std::hint::black_box(bench::run_prepared_suite_shared(
                    env,
                    program,
                    checked,
                    collect_config,
                    &shared,
                    namespace,
                ))
            })
        });
    }
    group.finish();

    // Aggregate wall-clock comparison on the dense app, the workload the
    // memo exists for.  Per-run durations are kept so the persisted
    // results carry medians (comparable across PRs) rather than totals.
    let (_, env, program, checked) =
        prepared.iter().find(|(name, ..)| *name == "Redmine").expect("redmine prepared");
    let runs = bench::sample_size(10);
    let timed = |config: Option<CheckConfig>| {
        let mut samples = Vec::with_capacity(runs);
        let started = Instant::now();
        for _ in 0..runs {
            let run_started = Instant::now();
            std::hint::black_box(bench::run_prepared_suite(env, program, checked, config));
            samples.push(run_started.elapsed());
        }
        (started.elapsed(), suite_median(samples))
    };
    let (no_hook, no_hook_median) = timed(None);
    let (unmemoized, unmemoized_median) = timed(Some(unmemoized_config));
    let (memoized, memoized_median) = timed(Some(collect_config));
    // The same runs against one warm shared memo.
    let shared = Arc::new(SharedMemo::new());
    let namespace = shared.register_namespace("Redmine");
    let mut warm_samples = Vec::with_capacity(runs);
    let started = Instant::now();
    for _ in 0..runs {
        let run_started = Instant::now();
        std::hint::black_box(bench::run_prepared_suite_shared(
            env,
            program,
            checked,
            collect_config,
            &shared,
            namespace,
        ));
        warm_samples.push(run_started.elapsed());
    }
    let memoized_warm = started.elapsed();
    let warm_median = suite_median(warm_samples);
    let pct = |with: Duration| {
        (with.as_secs_f64() - no_hook.as_secs_f64()) / no_hook.as_secs_f64().max(f64::EPSILON)
            * 100.0
    };
    println!(
        "Redmine suite over {runs} runs: no hook {no_hook:?}, unmemoized {unmemoized:?} \
         (+{:.1}%), memoized {memoized:?} (+{:.1}%), shared+warm {memoized_warm:?} (+{:.1}%)",
        pct(unmemoized),
        pct(memoized),
        pct(memoized_warm)
    );
    println!("{}", corpus::format_memo_stats(&shared));
    let warm_stats = shared.stats();
    assert!(
        warm_stats.hits > warm_stats.misses,
        "warm shared-memo runs must be dominated by hits: {warm_stats:?}"
    );
    // The strict timing assertion only runs in full mode: smoke-mode CI
    // gates on the behavioural checks above — two-sample wall-clock
    // comparisons on a shared single-core runner would flake.
    if std::env::var_os("BENCH_SMOKE").is_none() {
        assert!(
            memoized < unmemoized,
            "the memoized hook must be strictly faster on the call-site-dense workload \
             (memoized {memoized:?} vs unmemoized {unmemoized:?})"
        );
    }

    // Persist the Redmine suite medians (the warm scenario also carries
    // the shared memo's counters) so future PRs diff perf from
    // BENCH_SHARED_MEMO.json instead of CI logs.
    let warm_stats = shared.stats();
    let scenarios = vec![
        Scenario::from_stats(
            "redmine_suite/no_hook",
            no_hook_median,
            comprdl::MemoStats::default(),
        ),
        Scenario::from_stats(
            "redmine_suite/unmemoized",
            unmemoized_median,
            comprdl::MemoStats::default(),
        ),
        Scenario::from_stats(
            "redmine_suite/memoized",
            memoized_median,
            comprdl::MemoStats::default(),
        ),
        Scenario::from_stats("redmine_suite/shared_warm", warm_median, warm_stats),
        Scenario::from_stats("corpus/overhead_harness", 0, overhead_memo.stats()),
        Scenario::from_stats("corpus/parallel_shared", 0, parallel_memo.stats()),
    ];
    let path =
        bench::results::record("checked_vs_unchecked", &scenarios).expect("persist bench results");
    println!("results written to {}", path.display());
}

/// Median of the given per-run durations, in nanoseconds (shared median
/// definition: `bench::results::median_ns`).
fn suite_median(samples: Vec<Duration>) -> u128 {
    bench::results::median_ns(samples.into_iter().map(|d| d.as_nanos()).collect())
}

criterion_group!(benches, checked_vs_unchecked);
criterion_main!(benches);
