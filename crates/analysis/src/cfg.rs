//! Per-method control-flow graphs over the Ruby subset AST.
//!
//! A [`Cfg`] lowers one method body into basic blocks at *statement*
//! granularity: each block holds references to the straight-line
//! expressions executed in order, and edges model the statement-position
//! control flow of the subset — `if`/`elsif`/`else` and `case` chains,
//! `while` loops (with `break`/`next`), early exits (`return` and bare
//! `raise`), and short-circuit boolean operators in statement position
//! (`found || raise("...")`, `cond and return`).
//!
//! Control flow *inside* an expression (a block argument, a nested
//! `&&` in a condition) is not split further; dataflow transfer functions
//! walk those sub-trees themselves (see [`crate::lints`]).  Statements
//! that syntactically follow an early exit land in a fresh block with no
//! incoming edge, which is how [`Cfg::reachable`] exposes unreachable
//! code to the lint pass.

use ruby_syntax::{CondArm, Expr, ExprKind};

/// Index of a basic block within its [`Cfg`].
pub type BlockId = usize;

/// One straight-line run of statements plus its CFG edges.
#[derive(Debug, Default)]
pub struct BasicBlock<'a> {
    /// Statements executed in order.  These borrow the method body; a
    /// "statement" may be a sub-expression of a source statement (e.g. an
    /// `if` condition is a statement of its test block).
    pub stmts: Vec<&'a Expr>,
    /// Blocks that can flow into this one.
    pub preds: Vec<BlockId>,
    /// Blocks this one can flow into.
    pub succs: Vec<BlockId>,
}

/// A per-method control-flow graph.
#[derive(Debug)]
pub struct Cfg<'a> {
    /// All blocks; [`Cfg::entry`] and [`Cfg::exit`] index into this.
    pub blocks: Vec<BasicBlock<'a>>,
    /// The entry block (holds the first statements of the body).
    pub entry: BlockId,
    /// The exit block (always empty; every `return` edges here).
    pub exit: BlockId,
}

const ENTRY: BlockId = 0;
const EXIT: BlockId = 1;

impl<'a> Cfg<'a> {
    /// Lowers a method body into a CFG.
    pub fn build(body: &'a [Expr]) -> Cfg<'a> {
        let mut b = Builder {
            blocks: vec![BasicBlock::default(), BasicBlock::default()],
            loops: Vec::new(),
        };
        let end = b.lower_body(ENTRY, body);
        b.edge(end, EXIT);
        Cfg { blocks: b.blocks, entry: ENTRY, exit: EXIT }
    }

    /// Which blocks are reachable from the entry block.
    ///
    /// Statements lowered after an unconditional `return`/`raise`/`break`/
    /// `next` live in blocks with no reachable predecessor; the lint pass
    /// reports the head of each such region as `LINT0104`.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![self.entry];
        while let Some(b) = stack.pop() {
            if std::mem::replace(&mut seen[b], true) {
                continue;
            }
            for &s in &self.blocks[b].succs {
                if !seen[s] {
                    stack.push(s);
                }
            }
        }
        seen
    }
}

struct LoopCtx {
    head: BlockId,
    join: BlockId,
}

struct Builder<'a> {
    blocks: Vec<BasicBlock<'a>>,
    loops: Vec<LoopCtx>,
}

impl<'a> Builder<'a> {
    fn new_block(&mut self) -> BlockId {
        self.blocks.push(BasicBlock::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: BlockId, to: BlockId) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
            self.blocks[to].preds.push(from);
        }
    }

    fn lower_body(&mut self, mut cur: BlockId, body: &'a [Expr]) -> BlockId {
        for stmt in body {
            cur = self.lower_stmt(cur, stmt);
        }
        cur
    }

    /// Lowers one statement, returning the block where control continues.
    fn lower_stmt(&mut self, cur: BlockId, stmt: &'a Expr) -> BlockId {
        match &stmt.kind {
            ExprKind::If { arms, else_body } => self.lower_arms(cur, arms, else_body),
            ExprKind::Case { subject, arms, else_body } => {
                // The scrutinee is evaluated once, then the arm tests run in
                // order exactly like an `if`/`elsif` chain.
                self.blocks[cur].stmts.push(subject);
                self.lower_arms(cur, arms, else_body)
            }
            ExprKind::While { cond, body } => {
                let head = self.new_block();
                self.edge(cur, head);
                self.blocks[head].stmts.push(cond);
                let body_entry = self.new_block();
                self.edge(head, body_entry);
                let join = self.new_block();
                self.edge(head, join);
                self.loops.push(LoopCtx { head, join });
                let body_end = self.lower_body(body_entry, body);
                self.loops.pop();
                self.edge(body_end, head);
                join
            }
            ExprKind::Return(_) => {
                self.blocks[cur].stmts.push(stmt);
                self.edge(cur, EXIT);
                self.new_block()
            }
            // A bare `raise` aborts the method just like `return` for the
            // purposes of intraprocedural flow.
            ExprKind::Call { recv: None, name, .. } if name == "raise" => {
                self.blocks[cur].stmts.push(stmt);
                self.edge(cur, EXIT);
                self.new_block()
            }
            ExprKind::Break => {
                self.blocks[cur].stmts.push(stmt);
                let to = self.loops.last().map_or(EXIT, |l| l.join);
                self.edge(cur, to);
                self.new_block()
            }
            ExprKind::Next => {
                self.blocks[cur].stmts.push(stmt);
                let to = self.loops.last().map_or(EXIT, |l| l.head);
                self.edge(cur, to);
                self.new_block()
            }
            // Statement-position short circuit: the right-hand side may not
            // execute (and may itself be a `return`/`raise`).
            ExprKind::BoolOp { lhs, rhs, .. } => {
                let after_lhs = self.lower_stmt(cur, lhs);
                let rhs_entry = self.new_block();
                self.edge(after_lhs, rhs_entry);
                let rhs_end = self.lower_stmt(rhs_entry, rhs);
                let join = self.new_block();
                self.edge(after_lhs, join);
                self.edge(rhs_end, join);
                join
            }
            _ => {
                self.blocks[cur].stmts.push(stmt);
                cur
            }
        }
    }

    /// Lowers an `if`/`elsif`/`case` arm chain; each arm condition becomes
    /// a statement of its test block so dataflow sees its uses.
    fn lower_arms(&mut self, cur: BlockId, arms: &'a [CondArm], else_body: &'a [Expr]) -> BlockId {
        let Some((first, rest)) = arms.split_first() else {
            return self.lower_body(cur, else_body);
        };
        self.blocks[cur].stmts.push(&first.cond);
        let then_entry = self.new_block();
        self.edge(cur, then_entry);
        let then_end = self.lower_body(then_entry, &first.body);
        let else_entry = self.new_block();
        self.edge(cur, else_entry);
        let else_end = self.lower_arms(else_entry, rest, else_body);
        let join = self.new_block();
        self.edge(then_end, join);
        self.edge(else_end, join);
        join
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruby_syntax::parse_program_strict;

    fn body_of(src: &str) -> Vec<Expr> {
        let p = parse_program_strict(src).expect("parse");
        p.methods()[0].1.body.clone()
    }

    fn stmt_count(cfg: &Cfg<'_>) -> usize {
        cfg.blocks.iter().map(|b| b.stmts.len()).sum()
    }

    #[test]
    fn straight_line_is_one_block() {
        let body = body_of("def m(x)\n  a = 1\n  b = a\n  b\nend\n");
        let cfg = Cfg::build(&body);
        assert_eq!(cfg.blocks[cfg.entry].stmts.len(), 3);
        assert_eq!(cfg.blocks[cfg.entry].succs, vec![cfg.exit]);
        assert!(cfg.reachable().iter().all(|&r| r));
    }

    #[test]
    fn if_produces_diamond() {
        let body = body_of("def m(c)\n  if c\n    x = 1\n  else\n    x = 2\n  end\n  x\nend\n");
        let cfg = Cfg::build(&body);
        // entry (cond) branches to the then and else blocks, which join.
        assert_eq!(cfg.blocks[cfg.entry].succs.len(), 2);
        assert_eq!(stmt_count(&cfg), 4, "cond + two assigns + tail read");
        assert!(cfg.reachable().iter().all(|&r| r));
    }

    #[test]
    fn while_loops_back_to_head() {
        let body = body_of("def m(n)\n  i = 0\n  while i < n\n    i = i + 1\n  end\n  i\nend\n");
        let cfg = Cfg::build(&body);
        let head =
            (0..cfg.blocks.len()).find(|&b| cfg.blocks[b].succs.len() == 2).expect("loop head");
        assert!(
            cfg.blocks[head].preds.len() >= 2,
            "head has the entry edge and the back edge: {:?}",
            cfg.blocks[head].preds
        );
        assert!(cfg.reachable().iter().all(|&r| r));
    }

    #[test]
    fn code_after_return_is_unreachable() {
        let body = body_of("def m()\n  return 1\n  x = 2\n  x\nend\n");
        let cfg = Cfg::build(&body);
        let reach = cfg.reachable();
        let dead: Vec<_> = (0..cfg.blocks.len())
            .filter(|&b| !reach[b] && !cfg.blocks[b].stmts.is_empty())
            .collect();
        assert_eq!(dead.len(), 1, "both trailing statements share one dead block");
        assert_eq!(cfg.blocks[dead[0]].stmts.len(), 2);
    }

    #[test]
    fn raise_terminates_like_return() {
        let body = body_of("def m()\n  raise('boom')\n  1\nend\n");
        let cfg = Cfg::build(&body);
        let reach = cfg.reachable();
        assert!(
            (0..cfg.blocks.len()).any(|b| !reach[b] && !cfg.blocks[b].stmts.is_empty()),
            "the trailing literal is unreachable"
        );
    }

    #[test]
    fn break_exits_the_loop_not_the_method() {
        let body = body_of("def m(n)\n  while true\n    break\n  end\n  n\nend\n");
        let cfg = Cfg::build(&body);
        // Every non-empty block stays reachable: `break` jumps to the loop
        // join, where the tail read of `n` lives.
        let reach = cfg.reachable();
        for (b, block) in cfg.blocks.iter().enumerate() {
            if !block.stmts.is_empty() {
                assert!(reach[b], "block {b} with {} stmts unreachable", block.stmts.len());
            }
        }
    }

    #[test]
    fn statement_boolop_splits_the_rhs() {
        let body = body_of("def m(c)\n  c || raise('no')\n  1\nend\n");
        let cfg = Cfg::build(&body);
        // The raise must sit in its own conditionally-executed block, so the
        // trailing `1` stays reachable.
        let reach = cfg.reachable();
        for (b, block) in cfg.blocks.iter().enumerate() {
            if !block.stmts.is_empty() {
                assert!(reach[b], "block {b} should be reachable");
            }
        }
        assert!(stmt_count(&cfg) >= 3, "lhs, raise and tail are all statements");
    }

    /// `break` as the short-circuited rhs of `&&` inside a loop: the break
    /// must edge to the *loop join*, not the method exit, and every
    /// non-empty block stays reachable.
    #[test]
    fn break_inside_short_circuit_condition_targets_the_loop_join() {
        let body =
            body_of("def m(n)\n  while n > 0\n    done && break\n    n = n - 1\n  end\n  n\nend\n");
        let cfg = Cfg::build(&body);
        let head = (0..cfg.blocks.len())
            .find(|&b| cfg.blocks[b].succs.len() == 2 && cfg.blocks[b].preds.len() >= 2)
            .expect("loop head has the entry edge and a back edge");
        let join = cfg.blocks[head].succs[1];
        let brk = cfg
            .blocks
            .iter()
            .position(|b| b.stmts.iter().any(|s| matches!(s.kind, ExprKind::Break)))
            .expect("a block holds the break");
        assert!(
            cfg.blocks[brk].succs.contains(&join),
            "break edges to the loop join {join}, got {:?}",
            cfg.blocks[brk].succs
        );
        assert!(!cfg.blocks[brk].succs.contains(&head), "break must not re-enter the loop");
        let reach = cfg.reachable();
        for (b, block) in cfg.blocks.iter().enumerate() {
            if !block.stmts.is_empty() {
                assert!(reach[b], "block {b} unreachable");
            }
        }
    }

    /// `next` as the short-circuited rhs of `||` inside a loop: the next
    /// must edge back to the *loop head*, and the decrement after it stays
    /// reachable via the short-circuit skip edge.
    #[test]
    fn next_inside_short_circuit_condition_targets_the_loop_head() {
        let body =
            body_of("def m(n)\n  while n > 0\n    skip || next\n    n = n - 1\n  end\n  n\nend\n");
        let cfg = Cfg::build(&body);
        let head = (0..cfg.blocks.len())
            .find(|&b| cfg.blocks[b].succs.len() == 2 && cfg.blocks[b].preds.len() >= 2)
            .expect("loop head");
        let nxt = cfg
            .blocks
            .iter()
            .position(|b| b.stmts.iter().any(|s| matches!(s.kind, ExprKind::Next)))
            .expect("a block holds the next");
        assert!(
            cfg.blocks[nxt].succs.contains(&head),
            "next edges back to the head {head}, got {:?}",
            cfg.blocks[nxt].succs
        );
        let reach = cfg.reachable();
        for (b, block) in cfg.blocks.iter().enumerate() {
            if !block.stmts.is_empty() {
                assert!(reach[b], "block {b} unreachable (the decrement must survive)");
            }
        }
    }

    /// `return` from an `elsif` arm: that arm edges straight to the exit,
    /// the other arms still join, and the tail read stays reachable.
    #[test]
    fn return_from_an_elsif_arm_edges_to_exit_only() {
        let body = body_of(
            "def m(c)\n  if c == 1\n    x = 1\n  elsif c == 2\n    return 9\n  else\n    x = 3\n  end\n  x\nend\n",
        );
        let cfg = Cfg::build(&body);
        let ret = cfg
            .blocks
            .iter()
            .position(|b| b.stmts.iter().any(|s| matches!(s.kind, ExprKind::Return(_))))
            .expect("a block holds the return");
        assert_eq!(cfg.blocks[ret].succs, vec![cfg.exit], "return flows to exit only");
        let reach = cfg.reachable();
        for (b, block) in cfg.blocks.iter().enumerate() {
            if !block.stmts.is_empty() {
                assert!(reach[b], "block {b} unreachable (both assigns and the tail read live)");
            }
        }
        // Shape: two conditions, two assigns, one return, one tail read.
        assert_eq!(stmt_count(&cfg), 6);
    }

    #[test]
    fn elsif_chain_joins_all_arms() {
        let body = body_of(
            "def m(c)\n  if c == 1\n    x = 1\n  elsif c == 2\n    x = 2\n  end\n  x\nend\n",
        );
        let cfg = Cfg::build(&body);
        assert!(cfg.reachable().iter().all(|&r| r));
        // Two conditions, two assigns, one tail read.
        assert_eq!(stmt_count(&cfg), 5);
    }
}
