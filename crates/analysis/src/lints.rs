//! The `LINT01xx` lint suite: flow-sensitive warnings over per-method CFGs.
//!
//! | code       | finding                                                    |
//! |------------|------------------------------------------------------------|
//! | `LINT0101` | use before definition (definite assignment, forward must)  |
//! | `LINT0102` | local variable assigned but never used                     |
//! | `LINT0103` | dead assignment (liveness, backward may)                   |
//! | `LINT0104` | unreachable code after `return`/`raise`/`break`/`next`     |
//! | `LINT0105` | parameter-derived value concatenated into a SQL fragment   |
//!
//! Every lint is deterministic: facts are `BTreeSet`s, blocks are scanned
//! in id order, and findings are sorted with the same span-then-code key
//! as [`diagnostics::DiagnosticBag::sort_by_span_then_code`], so a
//! sequential and a parallel run render byte-identical output.  Findings
//! carry the method's [`semhash`](ruby_syntax::method_hash) so the corpus
//! pipeline can freeze them into the on-disk check cache and replay them
//! without re-linting (see `comprdl::persist`).
//!
//! `LINT0105` is optionally *interprocedural*: given the program's
//! [effect summaries](crate::summaries::ProgramSummaries), a call to a
//! method whose summary says "parameter *i* flows into a SQL sink" is
//! itself treated as a sink for argument *i*, and a call's result is
//! tainted exactly when the summary's return transfer says so (instead of
//! the conservative any-argument rule used for unknown callees).  Because
//! findings then depend on *callee* bodies, the corpus pipeline keys
//! persisted lint verdicts on the dependency-closure Merkle hash rather
//! than the intra-method `semhash`.
//!
//! Locals spelled with a leading underscore (`_tmp`) are the conventional
//! "intentionally unused" form and are exempt from `LINT0102`/`LINT0103`.

use crate::cfg::Cfg;
use crate::dataflow::{solve, DataflowProblem, Direction};
use crate::summaries::ProgramSummaries;
use diagnostics::{Diagnostic, Span};
use ruby_syntax::{method_hash, Expr, ExprKind, LValue, MethodDef, Program};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};

type Names = BTreeSet<String>;

/// Use before definition.
pub const USE_BEFORE_DEF: &str = "LINT0101";
/// Unused variable.
pub const UNUSED_VARIABLE: &str = "LINT0102";
/// Dead assignment.
pub const DEAD_ASSIGNMENT: &str = "LINT0103";
/// Unreachable code.
pub const UNREACHABLE_CODE: &str = "LINT0104";
/// SQL interpolation taint.
pub const SQL_TAINT: &str = "LINT0105";

/// Method names treated as SQL sinks for `LINT0105` (their first argument
/// is parsed as a SQL condition fragment) — shared with the summary
/// inference so both ends agree on what a sink is.
use crate::summaries::SQL_SINKS;

/// One lint finding within a method, prior to diagnostic rendering.
///
/// The fields are exactly what the persisted check cache freezes; the
/// `= note:` line of the rendered diagnostic is derived from the code (see
/// [`note_for`]) so replayed findings render byte-identically without
/// storing the note.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Stable `LINT01xx` code.
    pub code: String,
    /// Headline message.
    pub message: String,
    /// The primary label's text.
    pub label: String,
    /// The primary label's span (always inside the method).
    pub span: Span,
}

/// All findings for one method, keyed by its semantic identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodLints {
    /// Enclosing class (`"Object"` for top-level methods).
    pub owner: String,
    /// Method name.
    pub name: String,
    /// Whether it is a `def self.` method.
    pub singleton: bool,
    /// The method's layout-invariant semantic hash.
    pub semhash: u64,
    /// Findings in canonical span-then-code order.
    pub findings: Vec<LintFinding>,
}

/// The `= note:` line attached to each lint code's diagnostics.
pub fn note_for(code: &str) -> &'static str {
    match code {
        USE_BEFORE_DEF => "the variable is only assigned on some of the paths that reach this use",
        UNUSED_VARIABLE => "remove the assignment or read the value",
        DEAD_ASSIGNMENT => "the right-hand side still runs; only the stored value is never read",
        UNREACHABLE_CODE => {
            "every path to this statement ends in `return`, `raise`, `break` or `next`"
        }
        SQL_TAINT => "bind the value as a `?` placeholder instead of concatenating it into the SQL",
        _ => "",
    }
}

impl From<&LintFinding> for Diagnostic {
    fn from(f: &LintFinding) -> Diagnostic {
        let mut d = Diagnostic::warning(&f.code, &f.message).with_label(f.span, &f.label);
        let note = note_for(&f.code);
        if !note.is_empty() {
            d = d.with_note(note);
        }
        d
    }
}

impl From<LintFinding> for Diagnostic {
    fn from(f: LintFinding) -> Diagnostic {
        Diagnostic::from(&f)
    }
}

// ---------------------------------------------------------------------------
// Name walking with block-parameter shadowing
// ---------------------------------------------------------------------------

/// Receives local-variable uses and definitions during an in-order walk.
trait NameSink {
    fn on_use(&mut self, _e: &Expr, _name: &str) {}
    fn on_def(&mut self, _e: &Expr, _name: &str) {}
}

fn shadowed(shadow: &[Vec<String>], name: &str) -> bool {
    shadow.iter().any(|frame| frame.iter().any(|p| p == name))
}

/// Walks one statement in evaluation order, reporting local uses and
/// (optimistically, including nested ones) local definitions.  Block and
/// lambda parameters shadow method locals of the same name for the
/// duration of their body.
fn walk_names(e: &Expr, shadow: &mut Vec<Vec<String>>, sink: &mut dyn NameSink) {
    let walk_all = |exprs: &[Expr], shadow: &mut Vec<Vec<String>>, sink: &mut dyn NameSink| {
        for e in exprs {
            walk_names(e, shadow, sink);
        }
    };
    match &e.kind {
        ExprKind::Ident(n) if !shadowed(shadow, n) => sink.on_use(e, n),
        ExprKind::Ident(_) => {}
        ExprKind::Assign { target, value } => {
            match target {
                LValue::Index { recv, index } => {
                    walk_names(recv, shadow, sink);
                    walk_names(index, shadow, sink);
                }
                LValue::Attr { recv, .. } => walk_names(recv, shadow, sink),
                _ => {}
            }
            walk_names(value, shadow, sink);
            if let LValue::Local(n) = target {
                if !shadowed(shadow, n) {
                    sink.on_def(e, n);
                }
            }
        }
        ExprKind::OpAssign { target, op, value } => {
            match target {
                // `x ||= v` is a definition even when `x` was never
                // assigned (the nil-guard idiom), so only the arithmetic
                // forms count as a prior use.
                LValue::Local(n) if !shadowed(shadow, n) && op != "||" => {
                    sink.on_use(e, n);
                }
                LValue::Index { recv, index } => {
                    walk_names(recv, shadow, sink);
                    walk_names(index, shadow, sink);
                }
                LValue::Attr { recv, .. } => walk_names(recv, shadow, sink),
                _ => {}
            }
            walk_names(value, shadow, sink);
            if let LValue::Local(n) = target {
                if !shadowed(shadow, n) {
                    sink.on_def(e, n);
                }
            }
        }
        ExprKind::Call { recv, args, block, .. } => {
            if let Some(r) = recv {
                walk_names(r, shadow, sink);
            }
            walk_all(args, shadow, sink);
            if let Some(b) = block {
                shadow.push(b.params.clone());
                walk_all(&b.body, shadow, sink);
                shadow.pop();
            }
        }
        ExprKind::Lambda(b) => {
            shadow.push(b.params.clone());
            walk_all(&b.body, shadow, sink);
            shadow.pop();
        }
        ExprKind::Array(items) => walk_all(items, shadow, sink),
        ExprKind::Hash(pairs) => {
            for (k, v) in pairs {
                walk_names(k, shadow, sink);
                walk_names(v, shadow, sink);
            }
        }
        ExprKind::BoolOp { lhs, rhs, .. } => {
            walk_names(lhs, shadow, sink);
            walk_names(rhs, shadow, sink);
        }
        ExprKind::Not(inner) => walk_names(inner, shadow, sink),
        ExprKind::If { arms, else_body } => {
            for arm in arms {
                walk_names(&arm.cond, shadow, sink);
                walk_all(&arm.body, shadow, sink);
            }
            walk_all(else_body, shadow, sink);
        }
        ExprKind::Case { subject, arms, else_body } => {
            walk_names(subject, shadow, sink);
            for arm in arms {
                walk_names(&arm.cond, shadow, sink);
                walk_all(&arm.body, shadow, sink);
            }
            walk_all(else_body, shadow, sink);
        }
        ExprKind::While { cond, body } => {
            walk_names(cond, shadow, sink);
            walk_all(body, shadow, sink);
        }
        ExprKind::Return(Some(v)) => walk_names(v, shadow, sink),
        ExprKind::Yield(args) => walk_all(args, shadow, sink),
        ExprKind::TypeCast { expr, .. } => walk_names(expr, shadow, sink),
        _ => {}
    }
}

/// Every local assigned anywhere in the body, with the span of its first
/// assignment, in walk order.
fn assigned_locals(body: &[Expr]) -> BTreeMap<String, Span> {
    struct Defs(BTreeMap<String, Span>);
    impl NameSink for Defs {
        fn on_def(&mut self, e: &Expr, name: &str) {
            self.0.entry(name.to_string()).or_insert(e.span);
        }
    }
    let mut sink = Defs(BTreeMap::new());
    for stmt in body {
        walk_names(stmt, &mut Vec::new(), &mut sink);
    }
    sink.0
}

/// Every local read anywhere in the body.
fn used_locals(body: &[Expr]) -> Names {
    struct Uses(Names);
    impl NameSink for Uses {
        fn on_use(&mut self, _e: &Expr, name: &str) {
            self.0.insert(name.to_string());
        }
    }
    let mut sink = Uses(Names::new());
    for stmt in body {
        walk_names(stmt, &mut Vec::new(), &mut sink);
    }
    sink.0
}

// ---------------------------------------------------------------------------
// LINT0101: definite assignment (forward must-analysis)
// ---------------------------------------------------------------------------

struct DefiniteAssign {
    universe: Names,
    params: Names,
}

struct InsertDefs<'f>(&'f mut Names);
impl NameSink for InsertDefs<'_> {
    fn on_def(&mut self, _e: &Expr, name: &str) {
        self.0.insert(name.to_string());
    }
}

impl<'a> DataflowProblem<'a> for DefiniteAssign {
    type Fact = Names;
    fn direction(&self) -> Direction {
        Direction::Forward
    }
    fn boundary(&self) -> Names {
        self.params.clone()
    }
    fn top(&self) -> Names {
        self.universe.clone()
    }
    fn join(&self, into: &mut Names, from: &Names) {
        into.retain(|n| from.contains(n));
    }
    fn transfer(&self, stmt: &'a Expr, fact: &mut Names) {
        walk_names(stmt, &mut Vec::new(), &mut InsertDefs(fact));
    }
}

// ---------------------------------------------------------------------------
// LINT0103: liveness (backward may-analysis)
// ---------------------------------------------------------------------------

struct Liveness;

struct InsertUses<'f>(&'f mut Names);
impl NameSink for InsertUses<'_> {
    fn on_use(&mut self, _e: &Expr, name: &str) {
        self.0.insert(name.to_string());
    }
}

impl<'a> DataflowProblem<'a> for Liveness {
    type Fact = Names;
    fn direction(&self) -> Direction {
        Direction::Backward
    }
    fn boundary(&self) -> Names {
        Names::new()
    }
    fn top(&self) -> Names {
        Names::new()
    }
    fn join(&self, into: &mut Names, from: &Names) {
        into.extend(from.iter().cloned());
    }
    fn transfer(&self, stmt: &'a Expr, fact: &mut Names) {
        // Only a statement-position `x = v` kills `x`; nested assignments
        // conservatively leave liveness alone.
        if let ExprKind::Assign { target: LValue::Local(n), value } = &stmt.kind {
            fact.remove(n);
            walk_names(value, &mut Vec::new(), &mut InsertUses(fact));
        } else {
            walk_names(stmt, &mut Vec::new(), &mut InsertUses(fact));
        }
    }
}

// ---------------------------------------------------------------------------
// LINT0105: SQL interpolation taint (forward may-analysis)
// ---------------------------------------------------------------------------

struct TaintWithParams<'s> {
    params: Names,
    summaries: Option<&'s ProgramSummaries>,
}

impl<'a> DataflowProblem<'a> for TaintWithParams<'_> {
    type Fact = Names;
    fn direction(&self) -> Direction {
        Direction::Forward
    }
    fn boundary(&self) -> Names {
        self.params.clone()
    }
    fn top(&self) -> Names {
        Names::new()
    }
    fn join(&self, into: &mut Names, from: &Names) {
        into.extend(from.iter().cloned());
    }
    fn transfer(&self, stmt: &'a Expr, fact: &mut Names) {
        taint_eval(stmt, fact, &mut Vec::new(), self.summaries, &mut |_, _, _| {});
    }
}

/// Evaluates `e` for taint: returns whether its value is derived from a
/// tainted name, updates `fact` across assignments, and invokes
/// `on_sink(call, arg_index, fact)` on every sink argument — the first
/// argument of a literal SQL-sink call, plus (when `summaries` are
/// supplied) every argument a callee's summary routes into a sink.
fn taint_eval(
    e: &Expr,
    fact: &mut Names,
    shadow: &mut Vec<Vec<String>>,
    summaries: Option<&ProgramSummaries>,
    on_sink: &mut dyn FnMut(&Expr, usize, &Names),
) -> bool {
    match &e.kind {
        ExprKind::Ident(n) => !shadowed(shadow, n) && fact.contains(n),
        ExprKind::Array(items) => {
            let mut t = false;
            for item in items {
                t |= taint_eval(item, fact, shadow, summaries, on_sink);
            }
            t
        }
        ExprKind::Hash(pairs) => {
            let mut t = false;
            for (k, v) in pairs {
                t |= taint_eval(k, fact, shadow, summaries, on_sink);
                t |= taint_eval(v, fact, shadow, summaries, on_sink);
            }
            t
        }
        ExprKind::Assign { target, value } => {
            match target {
                LValue::Index { recv, index } => {
                    taint_eval(recv, fact, shadow, summaries, on_sink);
                    taint_eval(index, fact, shadow, summaries, on_sink);
                }
                LValue::Attr { recv, .. } => {
                    taint_eval(recv, fact, shadow, summaries, on_sink);
                }
                _ => {}
            }
            let t = taint_eval(value, fact, shadow, summaries, on_sink);
            if let LValue::Local(n) = target {
                if !shadowed(shadow, n) {
                    if t {
                        fact.insert(n.clone());
                    } else {
                        fact.remove(n);
                    }
                }
            }
            t
        }
        ExprKind::OpAssign { target, value, .. } => {
            let mut t = taint_eval(value, fact, shadow, summaries, on_sink);
            if let LValue::Local(n) = target {
                if !shadowed(shadow, n) {
                    t |= fact.contains(n);
                    if t {
                        fact.insert(n.clone());
                    }
                }
            }
            t
        }
        ExprKind::Call { recv, name, args, block } => {
            let recv_t =
                recv.as_ref().is_some_and(|r| taint_eval(r, fact, shadow, summaries, on_sink));
            let arg_t: Vec<bool> =
                args.iter().map(|a| taint_eval(a, fact, shadow, summaries, on_sink)).collect();
            if let Some(b) = block {
                shadow.push(b.params.clone());
                for stmt in &b.body {
                    taint_eval(stmt, fact, shadow, summaries, on_sink);
                }
                shadow.pop();
            }
            // Sink positions: argument 0 of a literal SQL sink, plus every
            // argument the callee's taint summary routes into a sink.
            let mut sink_args = BTreeSet::new();
            if SQL_SINKS.contains(&name.as_str()) && !args.is_empty() {
                sink_args.insert(0usize);
            }
            let summary = summaries.and_then(|s| s.taint_for_name(name));
            if let Some(ts) = &summary {
                for &i in &ts.params_to_sink {
                    if i < args.len() {
                        sink_args.insert(i);
                    }
                }
            }
            for &i in &sink_args {
                on_sink(e, i, fact);
            }
            match &summary {
                // A summarized callee: taint flows to the result exactly
                // along the inferred return transfer.
                Some(ts) => {
                    ts.params_to_return.iter().any(|&i| arg_t.get(i).copied().unwrap_or(false))
                        || (ts.self_to_return && recv_t)
                }
                // Unknown callee: conservatively derive from every input.
                None => recv_t || arg_t.iter().any(|&t| t),
            }
        }
        ExprKind::BoolOp { lhs, rhs, .. } => {
            let l = taint_eval(lhs, fact, shadow, summaries, on_sink);
            let r = taint_eval(rhs, fact, shadow, summaries, on_sink);
            l || r
        }
        ExprKind::Not(inner) | ExprKind::TypeCast { expr: inner, .. } => {
            taint_eval(inner, fact, shadow, summaries, on_sink)
        }
        ExprKind::If { arms, else_body } => {
            let mut t = false;
            for arm in arms {
                taint_eval(&arm.cond, fact, shadow, summaries, on_sink);
                for stmt in &arm.body {
                    t |= taint_eval(stmt, fact, shadow, summaries, on_sink);
                }
            }
            for stmt in else_body {
                t |= taint_eval(stmt, fact, shadow, summaries, on_sink);
            }
            t
        }
        ExprKind::Case { subject, arms, else_body } => {
            taint_eval(subject, fact, shadow, summaries, on_sink);
            let mut t = false;
            for arm in arms {
                taint_eval(&arm.cond, fact, shadow, summaries, on_sink);
                for stmt in &arm.body {
                    t |= taint_eval(stmt, fact, shadow, summaries, on_sink);
                }
            }
            for stmt in else_body {
                t |= taint_eval(stmt, fact, shadow, summaries, on_sink);
            }
            t
        }
        ExprKind::While { cond, body } => {
            taint_eval(cond, fact, shadow, summaries, on_sink);
            for stmt in body {
                taint_eval(stmt, fact, shadow, summaries, on_sink);
            }
            false
        }
        ExprKind::Return(Some(v)) => {
            taint_eval(v, fact, shadow, summaries, on_sink);
            false
        }
        ExprKind::Yield(args) => {
            for arg in args {
                taint_eval(arg, fact, shadow, summaries, on_sink);
            }
            false
        }
        ExprKind::Lambda(b) => {
            shadow.push(b.params.clone());
            for stmt in &b.body {
                taint_eval(stmt, fact, shadow, summaries, on_sink);
            }
            shadow.pop();
            false
        }
        _ => false,
    }
}

/// Flattens a `+` concatenation chain into its leaf operands.
fn concat_parts<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
    if let ExprKind::Call { recv: Some(r), name, args, block: None } = &e.kind {
        if name == "+" && args.len() == 1 {
            concat_parts(r, out);
            concat_parts(&args[0], out);
            return;
        }
    }
    out.push(e);
}

/// Whether `e`'s value derives from a tainted name — evaluated with the
/// same summary-aware rules as the taint facts themselves, against a
/// scratch copy of `fact` so sink callbacks and assignments don't reenter.
fn reads_tainted(e: &Expr, fact: &Names, summaries: Option<&ProgramSummaries>) -> bool {
    let mut scratch = fact.clone();
    taint_eval(e, &mut scratch, &mut Vec::new(), summaries, &mut |_, _, _| {})
}

/// Inspects one sink argument and pushes a `LINT0105` finding if a tainted
/// non-literal part is concatenated with SQL text that `sql_tc` can parse
/// as a condition.
fn check_sql_sink(
    call: &Expr,
    arg: usize,
    fact: &Names,
    summaries: Option<&ProgramSummaries>,
    findings: &mut Vec<LintFinding>,
) {
    let ExprKind::Call { args, .. } = &call.kind else { return };
    let Some(frag_arg) = args.get(arg) else { return };
    let mut parts = Vec::new();
    concat_parts(frag_arg, &mut parts);
    if parts.len() < 2 {
        return; // a lone literal or a lone variable is not an interpolation
    }
    let mut has_literal = false;
    let mut has_tainted = false;
    let mut fragment = String::new();
    for part in &parts {
        match &part.kind {
            ExprKind::Str(s) => {
                has_literal = true;
                fragment.push_str(s);
            }
            _ => {
                has_tainted |= reads_tainted(part, fact, summaries);
                fragment.push('?');
            }
        }
    }
    if has_literal && has_tainted && sql_tc::parse_condition(&fragment).is_ok() {
        findings.push(LintFinding {
            code: SQL_TAINT.to_string(),
            message: "user-supplied value is interpolated into a SQL fragment".to_string(),
            label: format!("this concatenation builds the SQL condition `{fragment}`"),
            span: frag_arg.span,
        });
    }
}

// ---------------------------------------------------------------------------
// The per-method lint driver
// ---------------------------------------------------------------------------

/// Canonical finding order: the same key as
/// [`DiagnosticBag::sort_by_span_then_code`](diagnostics::DiagnosticBag::sort_by_span_then_code).
fn sort_findings(findings: &mut [LintFinding]) {
    findings.sort_by(|a, b| {
        (a.span.file, a.span.start, a.span.line, a.span.end, &a.code, &a.message).cmp(&(
            b.span.file,
            b.span.start,
            b.span.line,
            b.span.end,
            &b.code,
            &b.message,
        ))
    });
}

/// Runs every lint over one method, intraprocedurally (calls to unknown
/// methods propagate taint conservatively; no summary-driven sinks).
pub fn lint_method(owner: &str, def: &MethodDef) -> MethodLints {
    lint_method_with_summaries(owner, def, None)
}

/// Runs every lint over one method; when `summaries` are supplied,
/// `LINT0105` propagates taint through calls using the inferred transfer
/// functions (see [`crate::summaries`]).
pub fn lint_method_with_summaries(
    owner: &str,
    def: &MethodDef,
    summaries: Option<&ProgramSummaries>,
) -> MethodLints {
    // A poisoned method's body is a recovery placeholder, not the user's
    // code: linting it would report phantom unused/undefined variables on
    // top of the parse diagnostic.  Its (empty) verdict still occupies its
    // slot — and its semhash covers the poison flag — so incremental replay
    // stays aligned with `Program::methods()` order.
    if def.poisoned {
        return MethodLints {
            owner: owner.to_string(),
            name: def.name.clone(),
            singleton: def.singleton,
            semhash: method_hash(def),
            findings: Vec::new(),
        };
    }
    let cfg = Cfg::build(&def.body);
    let reachable = cfg.reachable();
    let mut findings = Vec::new();

    let params: Names = def.params.iter().map(|p| p.name.clone()).collect();
    let assigned = assigned_locals(&def.body);
    let used = used_locals(&def.body);

    // LINT0102: assigned but never read.  A leading underscore is the
    // conventional "intentionally unused" spelling and stays quiet.
    for (name, span) in &assigned {
        if !used.contains(name) && !params.contains(name) && !name.starts_with('_') {
            findings.push(LintFinding {
                code: UNUSED_VARIABLE.to_string(),
                message: format!("local variable `{name}` is never used"),
                label: "assigned here but never read".to_string(),
                span: *span,
            });
        }
    }

    // LINT0101: a read of a local that is not definitely assigned on every
    // path.  Only names that are assigned *somewhere* qualify — a bare
    // identifier that is never assigned is a method call on `self` in this
    // subset, not a variable.
    {
        let mut universe: Names = assigned.keys().cloned().collect();
        universe.extend(params.iter().cloned());
        let sol = solve(&cfg, &DefiniteAssign { universe, params: params.clone() });
        struct Report<'x> {
            fact: Names,
            assigned: &'x BTreeMap<String, Span>,
            params: &'x Names,
            reported: BTreeSet<String>,
            findings: Vec<LintFinding>,
        }
        impl NameSink for Report<'_> {
            fn on_use(&mut self, e: &Expr, name: &str) {
                if self.assigned.contains_key(name)
                    && !self.params.contains(name)
                    && !self.fact.contains(name)
                    && self.reported.insert(name.to_string())
                {
                    self.findings.push(LintFinding {
                        code: USE_BEFORE_DEF.to_string(),
                        message: format!("`{name}` may be used before it is assigned"),
                        label: "used here before any unconditional assignment".to_string(),
                        span: e.span,
                    });
                }
            }
            fn on_def(&mut self, _e: &Expr, name: &str) {
                self.fact.insert(name.to_string());
            }
        }
        let mut report = Report {
            fact: Names::new(),
            assigned: &assigned,
            params: &params,
            reported: BTreeSet::new(),
            findings: Vec::new(),
        };
        for (b, block) in cfg.blocks.iter().enumerate() {
            if !reachable[b] {
                continue;
            }
            report.fact = sol.block_in[b].clone();
            for stmt in &block.stmts {
                walk_names(stmt, &mut Vec::new(), &mut report);
            }
        }
        findings.append(&mut report.findings);
    }

    // LINT0103: a statement-position assignment whose value no later read
    // can observe.  The method's tail statement is its implicit return
    // value, so it is exempt; names never read at all are LINT0102's job.
    {
        let sol = solve(&cfg, &Liveness);
        let tail: Option<*const Expr> = def.body.last().map(|e| e as *const Expr);
        for (b, block) in cfg.blocks.iter().enumerate() {
            if !reachable[b] {
                continue;
            }
            let mut live = sol.block_out[b].clone();
            for stmt in block.stmts.iter().rev() {
                if let ExprKind::Assign { target: LValue::Local(n), value } = &stmt.kind {
                    if used.contains(n)
                        && !live.contains(n)
                        && !n.starts_with('_')
                        && Some(*stmt as *const Expr) != tail
                    {
                        findings.push(LintFinding {
                            code: DEAD_ASSIGNMENT.to_string(),
                            message: format!("value assigned to `{n}` is never read"),
                            label: "this value is overwritten or dropped before any read"
                                .to_string(),
                            span: stmt.span,
                        });
                    }
                    live.remove(n);
                    walk_names(value, &mut Vec::new(), &mut InsertUses(&mut live));
                } else {
                    walk_names(stmt, &mut Vec::new(), &mut InsertUses(&mut live));
                }
            }
        }
    }

    // LINT0104: the head statement of every dead region.
    for (b, block) in cfg.blocks.iter().enumerate() {
        if reachable[b] || block.stmts.is_empty() {
            continue;
        }
        // Only the head of a dead region: all of its predecessors (if any)
        // are reachable blocks.
        if block.preds.iter().all(|&p| reachable[p]) {
            findings.push(LintFinding {
                code: UNREACHABLE_CODE.to_string(),
                message: "unreachable code".to_string(),
                label: "this statement can never execute".to_string(),
                span: block.stmts[0].span,
            });
        }
    }

    // LINT0105: parameter-derived values concatenated into SQL fragments.
    let taint_seed: Names =
        def.params.iter().filter(|p| !p.block).map(|p| p.name.clone()).collect();
    if !taint_seed.is_empty() {
        let sol = solve(&cfg, &TaintWithParams { params: taint_seed, summaries });
        let mut sink_findings = Vec::new();
        for (b, block) in cfg.blocks.iter().enumerate() {
            if !reachable[b] {
                continue;
            }
            let mut fact = sol.block_in[b].clone();
            for stmt in &block.stmts {
                taint_eval(stmt, &mut fact, &mut Vec::new(), summaries, &mut |call, arg, fact| {
                    check_sql_sink(call, arg, fact, summaries, &mut sink_findings);
                });
            }
        }
        findings.append(&mut sink_findings);
    }

    sort_findings(&mut findings);
    MethodLints {
        owner: owner.to_string(),
        name: def.name.clone(),
        singleton: def.singleton,
        semhash: method_hash(def),
        findings,
    }
}

/// Lints every method of a program sequentially, in source order.
pub fn lint_program(program: &Program) -> Vec<MethodLints> {
    lint_program_with_summaries(program, None)
}

/// Lints every method sequentially, threading the program's effect
/// summaries into `LINT0105` (see [`lint_method_with_summaries`]).
pub fn lint_program_with_summaries(
    program: &Program,
    summaries: Option<&ProgramSummaries>,
) -> Vec<MethodLints> {
    program
        .methods()
        .into_iter()
        .map(|(owner, def)| lint_method_with_summaries(&owner, def, summaries))
        .collect()
}

/// Lints every method of a program across `threads` worker threads.
///
/// Work is claimed from an atomic index (the same scheme as
/// `comprdl::TypeChecker::check_labeled_parallel`) and results are merged
/// back in method-index order, so the output is byte-identical to
/// [`lint_program`] regardless of scheduling.
pub fn lint_program_parallel(program: &Program, threads: usize) -> Vec<MethodLints> {
    lint_program_parallel_with_summaries(program, None, threads)
}

/// Parallel variant of [`lint_program_with_summaries`]; byte-identical to
/// the sequential run regardless of scheduling.
pub fn lint_program_parallel_with_summaries(
    program: &Program,
    summaries: Option<&ProgramSummaries>,
    threads: usize,
) -> Vec<MethodLints> {
    let methods = program.methods();
    if threads <= 1 || methods.len() <= 1 {
        return lint_program_with_summaries(program, summaries);
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<MethodLints>> = methods.iter().map(|_| None).collect();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads.min(methods.len()))
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some((owner, def)) = methods.get(i) else { break };
                        out.push((i, lint_method_with_summaries(owner, def, summaries)));
                    }
                    out
                })
            })
            .collect();
        for worker in workers {
            for (i, lints) in worker.join().expect("lint worker panicked") {
                slots[i] = Some(lints);
            }
        }
    });
    slots.into_iter().map(|m| m.expect("every method linted")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruby_syntax::parse_program_strict;

    fn lint_src(src: &str) -> Vec<LintFinding> {
        let p = parse_program_strict(src).expect("parse");
        let (owner, def) = &p.methods()[0];
        lint_method(owner, def).findings
    }

    fn codes(findings: &[LintFinding]) -> Vec<&str> {
        findings.iter().map(|f| f.code.as_str()).collect()
    }

    #[test]
    fn clean_method_has_no_findings() {
        let f = lint_src("def m(x)\n  y = x + 1\n  y * 2\nend\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn use_before_def_fires_on_branch_only_assignment() {
        let f = lint_src("def m(c)\n  if c\n    x = 1\n  end\n  x + 1\nend\n");
        assert_eq!(codes(&f), vec![USE_BEFORE_DEF], "{f:?}");
        assert!(f[0].message.contains("`x`"), "{}", f[0].message);
    }

    #[test]
    fn use_before_def_quiet_when_all_branches_assign() {
        let f = lint_src("def m(c)\n  if c\n    x = 1\n  else\n    x = 2\n  end\n  x + 1\nend\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn bare_identifiers_that_are_method_calls_are_not_flagged() {
        // `rows` is never assigned, so it is a call on self, not a variable.
        let f = lint_src("def m()\n  rows.length\nend\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unused_variable_fires_once_at_first_assignment() {
        let f = lint_src("def m(x)\n  waste = x + 1\n  x\nend\n");
        assert_eq!(codes(&f), vec![UNUSED_VARIABLE], "{f:?}");
        assert!(f[0].message.contains("`waste`"));
    }

    #[test]
    fn parameters_are_not_unused_variables() {
        let f = lint_src("def m(unused)\n  1\nend\n");
        assert!(f.is_empty(), "{f:?}");
    }

    /// Pin: a leading underscore is the conventional "intentionally
    /// unused" spelling — `_tmp` is exempt from LINT0102/LINT0103 while
    /// plain `tmp` still warns.
    #[test]
    fn underscore_prefixed_locals_are_exempt_but_plain_ones_warn() {
        // LINT0102: assigned, never read.
        let f = lint_src("def m(x)\n  _tmp = x + 1\n  x\nend\n");
        assert!(f.is_empty(), "{f:?}");
        let f = lint_src("def m(x)\n  tmp = x + 1\n  x\nend\n");
        assert_eq!(codes(&f), vec![UNUSED_VARIABLE], "{f:?}");
        assert!(f[0].message.contains("`tmp`"));

        // LINT0103: dead store before a later read.
        let f = lint_src("def m(x)\n  _y = x + 1\n  _y = 2\n  _y\nend\n");
        assert!(f.is_empty(), "{f:?}");
        let f = lint_src("def m(x)\n  y = x + 1\n  y = 2\n  y\nend\n");
        assert_eq!(codes(&f), vec![DEAD_ASSIGNMENT], "{f:?}");
    }

    #[test]
    fn dead_assignment_fires_when_value_is_overwritten() {
        let f = lint_src("def m(x)\n  y = x + 1\n  y = 2\n  y\nend\n");
        assert_eq!(codes(&f), vec![DEAD_ASSIGNMENT], "{f:?}");
        assert!(f[0].message.contains("`y`"));
    }

    #[test]
    fn tail_assignment_is_the_implicit_return_not_a_dead_store() {
        let f = lint_src("def m(x)\n  y = x\n  y = y + 1\nend\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unreachable_code_after_return_fires_once_per_region() {
        let f = lint_src("def m()\n  return 1\n  a = 2\n  a + 1\nend\n");
        // One LINT0104 for the dead region; `a` is genuinely used inside it
        // so no unused-variable noise.
        assert_eq!(codes(&f), vec![UNREACHABLE_CODE], "{f:?}");
    }

    #[test]
    fn guarded_raise_keeps_the_tail_reachable() {
        let f = lint_src("def m(c)\n  c || raise('no')\n  1\nend\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn sql_taint_fires_on_param_concatenation() {
        let f = lint_src("def self.search(q)\n  Topic.where('title = ' + q)\nend\n");
        assert_eq!(codes(&f), vec![SQL_TAINT], "{f:?}");
        assert!(f[0].label.contains("title = ?"), "{}", f[0].label);
    }

    #[test]
    fn sql_taint_tracks_flow_through_locals() {
        let f = lint_src("def self.search(q)\n  frag = 'title = ' + q\n  Topic.where(frag)\nend\n");
        // The concatenation happens at the assignment; the sink receives a
        // lone variable, so the finding anchors at the sink only if the
        // concatenation reaches it.  Flowing a prebuilt tainted fragment
        // into `where` as a single argument is not an *interpolation* site,
        // so this stays quiet — the assignment form is covered by the test
        // above when inlined.
        assert!(codes(&f).is_empty() || codes(&f) == vec![SQL_TAINT], "{f:?}");
    }

    #[test]
    fn sql_taint_quiet_on_placeholder_style() {
        let f = lint_src("def self.search(q)\n  Topic.where('title = ?', q)\nend\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn sql_taint_quiet_when_concatenating_untainted_constants() {
        let f = lint_src(
            "def self.recent()\n  col = 'created_at'\n  Topic.where(col + ' IS NOT NULL')\nend\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn block_parameters_shadow_method_locals() {
        // `r` is a block parameter, not an unassigned method local.
        let f = lint_src("def m(rows)\n  rows.map { |r| r + 1 }\nend\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn or_assign_defines_without_using() {
        let f = lint_src("def m()\n  x ||= 1\n  x\nend\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn findings_are_sorted_by_span_then_code() {
        let f = lint_src("def m(c)\n  waste = 1\n  if c\n    x = 1\n  end\n  x + 1\nend\n");
        assert_eq!(codes(&f), vec![UNUSED_VARIABLE, USE_BEFORE_DEF], "{f:?}");
        assert!(f[0].span.start < f[1].span.start);
    }

    #[test]
    fn parallel_lint_is_byte_identical_to_sequential() {
        let src = "class A\n  def m(c)\n    if c\n      x = 1\n    end\n    x\n  end\n  def n()\n    waste = 1\n    2\n  end\n  def o(q)\n    A.where('title = ' + q)\n  end\nend\n";
        let p = parse_program_strict(src).expect("parse");
        let seq = lint_program(&p);
        for threads in [2, 4, 7] {
            assert_eq!(seq, lint_program_parallel(&p, threads), "threads={threads}");
        }
        assert!(seq.iter().any(|m| !m.findings.is_empty()));
    }

    /// With summaries, the sink and the interpolation can live in
    /// different methods: the callee's summary routes the caller's
    /// argument into the sink, so the finding fires at the call site.
    #[test]
    fn sql_taint_crosses_calls_with_summaries() {
        let src = "def self.apply_filter(frag)\n  Topic.where(frag)\nend\ndef self.search(q)\n  apply_filter('title = ' + q)\nend\n";
        let p = parse_program_strict(src).expect("parse");

        // Blind without summaries: the callee sees a lone variable at the
        // sink, the caller sees no sink at all.
        let blind = lint_program(&p);
        assert!(blind.iter().all(|m| m.findings.is_empty()), "{blind:?}");

        let seed = crate::summaries::SeedMap::new();
        let sums = ProgramSummaries::infer(&p, &seed);
        let seen = lint_program_with_summaries(&p, Some(&sums));
        let search = seen.iter().find(|m| m.name == "search").unwrap();
        assert_eq!(codes(&search.findings), vec![SQL_TAINT], "{seen:?}");
        assert!(search.findings[0].label.contains("title = ?"), "{}", search.findings[0].label);
    }

    /// The summary return transfer is *more precise* than the conservative
    /// any-argument rule: a callee that provably drops its parameter
    /// un-taints the result.
    #[test]
    fn summary_return_transfer_untaints_sanitized_values() {
        let src = "def self.quote(q)\n  'quoted'\nend\ndef self.search(q)\n  Topic.where('title = ' + quote(q))\nend\n";
        let p = parse_program_strict(src).expect("parse");
        let blind = lint_program(&p);
        assert!(
            blind.iter().any(|m| codes(&m.findings) == vec![SQL_TAINT]),
            "conservatively tainted without summaries: {blind:?}"
        );
        let sums = ProgramSummaries::infer(&p, &crate::summaries::SeedMap::new());
        let seen = lint_program_with_summaries(&p, Some(&sums));
        assert!(seen.iter().all(|m| m.findings.is_empty()), "{seen:?}");
    }

    #[test]
    fn parallel_lint_with_summaries_is_byte_identical() {
        let src = "def self.apply_filter(frag)\n  Topic.where(frag)\nend\ndef self.search(q)\n  apply_filter('title = ' + q)\nend\ndef m(c)\n  if c\n    x = 1\n  end\n  x\nend\n";
        let p = parse_program_strict(src).expect("parse");
        let sums = ProgramSummaries::infer(&p, &crate::summaries::SeedMap::new());
        let seq = lint_program_with_summaries(&p, Some(&sums));
        for threads in [2, 4, 8] {
            let par = lint_program_parallel_with_summaries(&p, Some(&sums), threads);
            assert_eq!(seq, par, "threads={threads}");
        }
        assert!(seq.iter().any(|m| !m.findings.is_empty()));
    }

    #[test]
    fn findings_convert_to_warning_diagnostics() {
        let f = lint_src("def m(x)\n  waste = x\n  x\nend\n");
        let d = Diagnostic::from(&f[0]);
        assert_eq!(d.severity, diagnostics::Severity::Warning);
        assert_eq!(d.code, UNUSED_VARIABLE);
        assert_eq!(d.notes.len(), 1);
        assert_eq!(d.labels.len(), 1);
    }
}
