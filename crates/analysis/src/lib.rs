//! # analysis
//!
//! Flow-sensitive static analysis for the CompRDL-rs reproduction: a
//! per-method control-flow-graph builder ([`cfg::Cfg`]) over the
//! `ruby-syntax` AST, a generic worklist dataflow solver
//! ([`dataflow::solve`]) parameterised over a small lattice trait
//! ([`dataflow::DataflowProblem`]), and the first lint suite built on top
//! ([`lints`]): definite assignment, unused variables, dead assignments,
//! unreachable code and a SQL-interpolation taint lint that validates
//! rebuilt fragments with [`sql_tc::parse_condition`].
//!
//! Findings render as [`diagnostics::Severity::Warning`] diagnostics with
//! stable `LINT01xx` codes; the corpus harness runs the suite inside its
//! parallel worker threads and freezes verdicts — keyed by
//! [`ruby_syntax::method_hash`] — into the persistent check cache so a
//! warm incremental run re-lints nothing (see `comprdl::persist` and
//! `corpus::incremental`).
//!
//! ```
//! let p = ruby_syntax::parse_program_strict(
//!     "def m(c)\n  if c\n    x = 1\n  end\n  x + 1\nend\n",
//! )
//! .unwrap();
//! let lints = analysis::lint_program(&p);
//! assert_eq!(lints[0].findings[0].code, analysis::USE_BEFORE_DEF);
//! ```

#![warn(missing_docs)]

pub mod cfg;
pub mod dataflow;
pub mod lints;
pub mod summaries;

pub use cfg::{BasicBlock, BlockId, Cfg};
pub use dataflow::{solve, DataflowProblem, Direction, Solution};
pub use lints::{
    lint_method, lint_method_with_summaries, lint_program, lint_program_parallel,
    lint_program_parallel_with_summaries, lint_program_with_summaries, note_for, LintFinding,
    MethodLints, DEAD_ASSIGNMENT, SQL_TAINT, UNREACHABLE_CODE, UNUSED_VARIABLE, USE_BEFORE_DEF,
};
pub use summaries::{
    render_blame, MethodSummary, ProgramSummaries, Purity, SeedEffect, SeedMap, TaintSummary, Term,
};
