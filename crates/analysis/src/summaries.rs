//! Interprocedural effect summaries over the name-resolved call graph.
//!
//! The lint suite and the CompRDL termination checker both consult an
//! *effect environment* — which methods terminate, which are pure, and
//! (for `LINT0105`) how taint moves through a call.  Before this module
//! that environment was a hand-maintained annotation table where every
//! unknown method defaulted to impure/non-terminating.  [`infer`] replaces
//! the default with a bottom-up, summary-based analysis:
//!
//! 1. build the name-resolved call graph of the program (a call edge to
//!    every same-named method, mirroring `comprdl::semdep::DepGraph`),
//! 2. condense it into strongly connected components (Tarjan), and
//! 3. walk the SCCs in emission order (callees before callers) computing a
//!    [`MethodSummary`] per method:
//!
//!    * **termination** — loop-free and every callee terminates;
//!      `:blockdep` iterators are conditional on their block (which is part
//!      of the caller's own body, so its loops and calls are already
//!      covered); a body that `yield`s is itself `:blockdep`; any recursion
//!      cycle is pessimistically non-terminating,
//!    * **purity** — no instance/class/global/receiver writes and only
//!      pure callees, resolved per-SCC: the component starts pessimistic
//!      and is refined to pure only when *no* member carries a write and
//!      every extra-component callee is pure,
//!    * **taint** — which parameters (or the receiver) may flow into a SQL
//!      sink or into the return value, iterated to a least fixpoint inside
//!      each SCC starting from the empty transfer.
//!
//! Every non-`Terminates`/non-`Pure` verdict carries a *blame chain*: the
//! call path from the method to the root cause, rendered as
//! `a → b → @x=` by [`render_blame`].  All containers are `BTree`-ordered
//! and SCCs are processed in Tarjan emission order, so two runs (or a
//! sequential and a parallel run) produce byte-identical [`render`]
//! output.
//!
//! [`infer`]: ProgramSummaries::infer
//! [`render`]: ProgramSummaries::render

use ruby_syntax::{Expr, ExprKind, LValue, MethodDef, Program};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Inferred termination effect (the analysis-side mirror of the paper's
/// `terminates:` labels; `analysis` does not depend on `rdl-types`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Term {
    /// `:+` — provably terminates.
    Terminates,
    /// `:blockdep` — terminates iff the block it yields to does.
    BlockDep,
    /// `:-` — may diverge.
    MayDiverge,
}

/// Inferred purity effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Purity {
    /// No writes to non-local state, only pure callees.
    Pure,
    /// May mutate state.
    Impure,
}

/// A trusted base effect for a method the program does not define (core
/// library methods, annotated externals).  Seeds are supplied by the
/// caller; see `comprdl::EffectEnv::with_builtins` for the canonical set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedEffect {
    /// Termination effect to trust.
    pub term: Term,
    /// Whether the method is pure.
    pub pure: bool,
}

/// Trusted base effects, keyed by bare method name.
pub type SeedMap = BTreeMap<String, SeedEffect>;

/// Method names treated as SQL sinks (their first argument is a SQL
/// condition fragment) — kept in sync with the `LINT0105` sink list.
pub const SQL_SINKS: &[&str] = &["where", "find_by_sql", "having", "filter", "exclude"];

/// How values move through one method: which inputs may reach a SQL sink
/// or the return value.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaintSummary {
    /// Parameter indices that may flow into the return value.
    pub params_to_return: BTreeSet<usize>,
    /// Parameter indices that may flow into a SQL sink (directly or via a
    /// callee whose summary says so).
    pub params_to_sink: BTreeSet<usize>,
    /// The receiver (`self`, including instance state) may flow into the
    /// return value.
    pub self_to_return: bool,
    /// The receiver may flow into a SQL sink.
    pub self_to_sink: bool,
}

impl TaintSummary {
    fn join(&mut self, other: &TaintSummary) {
        self.params_to_return.extend(&other.params_to_return);
        self.params_to_sink.extend(&other.params_to_sink);
        self.self_to_return |= other.self_to_return;
        self.self_to_sink |= other.self_to_sink;
    }
}

/// The inferred effects of one method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodSummary {
    /// Enclosing class (`"Object"` for top-level methods).
    pub owner: String,
    /// Method name.
    pub name: String,
    /// Whether it is a `def self.` method.
    pub singleton: bool,
    /// Inferred termination effect.
    pub term: Term,
    /// Inferred purity effect.
    pub purity: Purity,
    /// Call path to the divergence root cause (empty iff not `MayDiverge`).
    pub term_blame: Vec<String>,
    /// Call path to the impurity root cause (empty iff `Pure`).
    pub purity_blame: Vec<String>,
    /// Taint transfer function.
    pub taint: TaintSummary,
    /// The method's SCC id in Tarjan emission order (callees first).
    pub scc: usize,
}

/// Renders a blame chain the way diagnostics quote it: `a → b → @x=`.
pub fn render_blame(chain: &[String]) -> String {
    chain.join(" \u{2192} ")
}

// ---------------------------------------------------------------------------
// Per-method local facts (the parallel-extractable part)
// ---------------------------------------------------------------------------

/// One observed call site: the bare callee name.
#[derive(Debug, Clone, PartialEq, Eq)]
struct LocalFacts {
    /// `while` anywhere in the body (including nested blocks).
    has_while: bool,
    /// `yield` anywhere in the body — makes the method `:blockdep`.
    has_yield: bool,
    /// Called names in first-occurrence walk order (calls, operator
    /// assignments and bare identifiers that are not locals).
    calls: Vec<String>,
    /// Non-local writes in walk order, as blame tokens (`@x=`, `$g=`, …).
    writes: Vec<String>,
}

fn shadowed(shadow: &[Vec<String>], name: &str) -> bool {
    shadow.iter().any(|frame| frame.iter().any(|p| p == name))
}

/// Every local assigned anywhere in the body (ignoring shadowing — the
/// same optimistic rule the lint suite uses to tell locals from calls).
fn assigned_locals(body: &[Expr]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for stmt in body {
        stmt.walk(&mut |e| {
            if let ExprKind::Assign { target, .. } | ExprKind::OpAssign { target, .. } = &e.kind {
                if let LValue::Local(n) = target {
                    out.insert(n.clone());
                }
            }
        });
    }
    out
}

fn collect_facts(def: &MethodDef) -> LocalFacts {
    let mut facts =
        LocalFacts { has_while: false, has_yield: false, calls: Vec::new(), writes: Vec::new() };
    // A poisoned body is a recovery placeholder, not the user's code, so
    // nothing can be proven about it.  The pseudo-callee `<unparsed>` can
    // never resolve (it is not a lexable identifier), which routes both
    // termination and purity to the conservative `Unknown`-callee verdict
    // with a self-explanatory blame chain.
    if def.poisoned {
        facts.calls.push("<unparsed>".to_string());
        return facts;
    }
    let locals = assigned_locals(&def.body);
    let params: BTreeSet<String> = def.params.iter().map(|p| p.name.clone()).collect();
    let mut shadow: Vec<Vec<String>> = Vec::new();
    let mut seen_calls = BTreeSet::new();
    for stmt in &def.body {
        walk_facts(stmt, &locals, &params, &mut shadow, &mut seen_calls, &mut facts);
    }
    facts
}

fn walk_facts(
    e: &Expr,
    locals: &BTreeSet<String>,
    params: &BTreeSet<String>,
    shadow: &mut Vec<Vec<String>>,
    seen: &mut BTreeSet<String>,
    facts: &mut LocalFacts,
) {
    let walk_all = |exprs: &[Expr],
                    shadow: &mut Vec<Vec<String>>,
                    seen: &mut BTreeSet<String>,
                    facts: &mut LocalFacts| {
        for e in exprs {
            walk_facts(e, locals, params, shadow, seen, facts);
        }
    };
    let call = |name: &str, seen: &mut BTreeSet<String>, facts: &mut LocalFacts| {
        if seen.insert(name.to_string()) {
            facts.calls.push(name.to_string());
        }
    };
    let write = |token: String, facts: &mut LocalFacts| {
        facts.writes.push(token);
    };
    match &e.kind {
        // A bare identifier that is neither a local nor a parameter is a
        // call on `self` in this subset.
        ExprKind::Ident(n)
            if !locals.contains(n) && !params.contains(n) && !shadowed(shadow, n) =>
        {
            call(n, seen, facts);
        }
        ExprKind::Assign { target, value } | ExprKind::OpAssign { target, value, .. } => {
            if let ExprKind::OpAssign { op, .. } = &e.kind {
                // `x += 1` desugars to a call to `+`; `||=`/`&&=` are
                // control flow, not method calls.
                if op != "||" && op != "&&" {
                    call(op, seen, facts);
                }
            }
            match target {
                LValue::Local(_) => {}
                LValue::IVar(n) => write(format!("@{n}="), facts),
                LValue::GVar(n) => write(format!("${n}="), facts),
                LValue::Const(n) => write(format!("{n}="), facts),
                LValue::Index { recv, index } => {
                    write("[]=".to_string(), facts);
                    walk_facts(recv, locals, params, shadow, seen, facts);
                    walk_facts(index, locals, params, shadow, seen, facts);
                }
                LValue::Attr { recv, name } => {
                    write(format!(".{name}="), facts);
                    walk_facts(recv, locals, params, shadow, seen, facts);
                }
            }
            walk_facts(value, locals, params, shadow, seen, facts);
        }
        ExprKind::Call { recv, name, args, block } => {
            call(name, seen, facts);
            if let Some(r) = recv {
                walk_facts(r, locals, params, shadow, seen, facts);
            }
            walk_all(args, shadow, seen, facts);
            if let Some(b) = block {
                shadow.push(b.params.clone());
                walk_all(&b.body, shadow, seen, facts);
                shadow.pop();
            }
        }
        ExprKind::Lambda(b) => {
            shadow.push(b.params.clone());
            walk_all(&b.body, shadow, seen, facts);
            shadow.pop();
        }
        ExprKind::While { cond, body } => {
            facts.has_while = true;
            walk_facts(cond, locals, params, shadow, seen, facts);
            walk_all(body, shadow, seen, facts);
        }
        ExprKind::Yield(args) => {
            facts.has_yield = true;
            walk_all(args, shadow, seen, facts);
        }
        ExprKind::Array(items) => walk_all(items, shadow, seen, facts),
        ExprKind::Hash(pairs) => {
            for (k, v) in pairs {
                walk_facts(k, locals, params, shadow, seen, facts);
                walk_facts(v, locals, params, shadow, seen, facts);
            }
        }
        ExprKind::BoolOp { lhs, rhs, .. } => {
            walk_facts(lhs, locals, params, shadow, seen, facts);
            walk_facts(rhs, locals, params, shadow, seen, facts);
        }
        ExprKind::Not(inner) | ExprKind::TypeCast { expr: inner, .. } => {
            walk_facts(inner, locals, params, shadow, seen, facts);
        }
        ExprKind::If { arms, else_body } => {
            for arm in arms {
                walk_facts(&arm.cond, locals, params, shadow, seen, facts);
                walk_all(&arm.body, shadow, seen, facts);
            }
            walk_all(else_body, shadow, seen, facts);
        }
        ExprKind::Case { subject, arms, else_body } => {
            walk_facts(subject, locals, params, shadow, seen, facts);
            for arm in arms {
                walk_facts(&arm.cond, locals, params, shadow, seen, facts);
                walk_all(&arm.body, shadow, seen, facts);
            }
            walk_all(else_body, shadow, seen, facts);
        }
        ExprKind::Return(Some(v)) => walk_facts(v, locals, params, shadow, seen, facts),
        _ => {}
    }
}

// ---------------------------------------------------------------------------
// Tarjan SCC condensation (iterative)
// ---------------------------------------------------------------------------

/// Computes SCCs of `edges` (adjacency lists over `0..n`), returned in
/// emission order: every edge leaving a component points into an
/// earlier-emitted component, so walking the result front to back visits
/// callees before callers.
fn tarjan_sccs(n: usize, edges: &[Vec<usize>]) -> Vec<Vec<usize>> {
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    // Explicit DFS frames: (node, next-edge cursor).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
            if let Some(&w) = edges[v].get(*cursor) {
                *cursor += 1;
                if index[w] == UNSET {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

// ---------------------------------------------------------------------------
// ProgramSummaries
// ---------------------------------------------------------------------------

/// How a called name resolves during inference: program methods shadow
/// seeds, seeds shadow nothing, and everything else is unknown.
#[derive(Debug, Clone)]
enum Resolved {
    /// Program methods with that bare name (indices into the method list).
    Methods(Vec<usize>),
    /// A trusted seed effect.
    Seed(SeedEffect),
    /// Neither defined nor seeded — assumed diverging and impure.
    Unknown,
}

/// Method identity as shared with the dependency graph:
/// `(owner, name, singleton)`.
pub type MethodId = (String, String, bool);

/// Inferred summaries for every method of one program.
#[derive(Debug, Clone, Default)]
pub struct ProgramSummaries {
    /// Summaries in `Program::methods()` order.
    methods: Vec<MethodSummary>,
    /// `(owner, name, singleton)` → index into `methods`.
    index: BTreeMap<MethodId, usize>,
    /// Bare name → indices of every method with that name.
    by_name: BTreeMap<String, Vec<usize>>,
    /// Number of SCCs in the condensed call graph.
    scc_count: usize,
    /// Name-resolved method→method call edges, deduplicated and sorted by
    /// `(owner, name, singleton)` id pairs (self-edges included).
    call_edges: Vec<(MethodId, MethodId)>,
}

impl ProgramSummaries {
    /// Infers summaries for every method of `program`, trusting `seed` for
    /// names the program does not define.
    pub fn infer(program: &Program, seed: &SeedMap) -> ProgramSummaries {
        Self::solve(program, seed, &collect_all_facts(program, 1), &BTreeMap::new()).0
    }

    /// Like [`infer`](Self::infer) but extracts per-method local facts on
    /// `threads` worker threads (atomic work claiming, results merged in
    /// method-index order) — byte-identical to the sequential run.
    pub fn infer_parallel(program: &Program, seed: &SeedMap, threads: usize) -> ProgramSummaries {
        Self::solve(program, seed, &collect_all_facts(program, threads), &BTreeMap::new()).0
    }

    /// Incremental inference: summaries in `fixed` (keyed by
    /// `(owner, name, singleton)`) are installed verbatim instead of being
    /// recomputed; everything else is inferred against them.  Returns the
    /// summaries and how many methods were actually (re-)summarized.
    ///
    /// Soundness: a caller may only fix a summary whose method's
    /// *transitive* dependency closure is unchanged (the corpus keys
    /// records on `semdep` Merkle hashes, which hash exactly that
    /// closure), so a fixed method can never depend on a recomputed one.
    /// SCC ids are always recomputed from the current program, so a warm
    /// run renders byte-identically to a cold run.
    pub fn infer_with_baseline(
        program: &Program,
        seed: &SeedMap,
        fixed: &BTreeMap<(String, String, bool), MethodSummary>,
    ) -> (ProgramSummaries, usize) {
        Self::solve(program, seed, &collect_all_facts(program, 1), fixed)
    }

    fn solve(
        program: &Program,
        seed: &SeedMap,
        facts: &[LocalFacts],
        fixed: &BTreeMap<(String, String, bool), MethodSummary>,
    ) -> (ProgramSummaries, usize) {
        let methods = program.methods();
        let n = methods.len();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, (_, def)) in methods.iter().enumerate() {
            by_name.entry(def.name.clone()).or_default().push(i);
        }
        // Name-resolved call edges: one edge per same-named program method
        // (self-edges kept — they are real recursion).
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, f) in facts.iter().enumerate() {
            let mut out = BTreeSet::new();
            for name in &f.calls {
                if let Some(targets) = by_name.get(name) {
                    out.extend(targets.iter().copied());
                }
            }
            edges[i] = out.into_iter().collect();
        }
        let sccs = tarjan_sccs(n, &edges);

        let mut scc_of = vec![0usize; n];
        for (s, members) in sccs.iter().enumerate() {
            for &m in members {
                scc_of[m] = s;
            }
        }

        // Pre-resolve every called name once, deterministically.
        let mut resolved: BTreeMap<String, Resolved> = BTreeMap::new();
        for f in facts {
            for name in &f.calls {
                if resolved.contains_key(name) {
                    continue;
                }
                let r = match by_name.get(name) {
                    Some(targets) => Resolved::Methods(targets.clone()),
                    None => match seed.get(name) {
                        Some(&s) => Resolved::Seed(s),
                        None => Resolved::Unknown,
                    },
                };
                resolved.insert(name.clone(), r);
            }
        }

        let mut out: Vec<Option<MethodSummary>> = (0..n).map(|_| None).collect();
        let mut summarized = 0usize;
        for (s, members) in sccs.iter().enumerate() {
            // Replay: a whole component is installed from `fixed` only when
            // every member is covered (a partial hit could hide a changed
            // cycle peer — impossible under Merkle keying, but cheap to
            // enforce).
            let all_fixed = members.iter().all(|&m| {
                let (owner, def) = &methods[m];
                fixed.contains_key(&(owner.clone(), def.name.clone(), def.singleton))
            });
            if all_fixed {
                for &m in members {
                    let (owner, def) = &methods[m];
                    let mut sum = fixed[&(owner.clone(), def.name.clone(), def.singleton)].clone();
                    sum.scc = s;
                    out[m] = Some(sum);
                }
                continue;
            }
            summarized += members.len();
            let cyclic = members.len() > 1 || edges[members[0]].contains(&members[0]);

            // Termination + purity, component at a time.
            Self::solve_term_purity(
                &methods, facts, &edges, &scc_of, s, members, cyclic, &resolved, &mut out,
            );
            // Taint: least fixpoint from the empty transfer inside the SCC.
            Self::solve_taint(&methods, members, &by_name, &mut out);
        }

        let mut index = BTreeMap::new();
        for (i, (owner, def)) in methods.iter().enumerate() {
            index.insert((owner.clone(), def.name.clone(), def.singleton), i);
        }
        let id_of = |i: usize| {
            let (owner, def) = &methods[i];
            (owner.clone(), def.name.clone(), def.singleton)
        };
        let call_edges: BTreeSet<_> = edges
            .iter()
            .enumerate()
            .flat_map(|(from, tos)| tos.iter().map(move |&to| (from, to)))
            .map(|(from, to)| (id_of(from), id_of(to)))
            .collect();
        let methods: Vec<MethodSummary> =
            out.into_iter().map(|m| m.expect("every method summarized")).collect();
        (
            ProgramSummaries {
                methods,
                index,
                by_name,
                scc_count: sccs.len(),
                call_edges: call_edges.into_iter().collect(),
            },
            summarized,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn solve_term_purity(
        methods: &[(String, &MethodDef)],
        facts: &[LocalFacts],
        edges: &[Vec<usize>],
        scc_of: &[usize],
        s: usize,
        members: &[usize],
        cyclic: bool,
        resolved: &BTreeMap<String, Resolved>,
        out: &mut [Option<MethodSummary>],
    ) {
        // --- termination -------------------------------------------------
        // A cycle is pessimistically non-terminating: without a size-change
        // argument recursion cannot be proven to bottom out.
        let mut terms: BTreeMap<usize, (Term, Vec<String>)> = BTreeMap::new();
        for &m in members {
            let (_, def) = &methods[m];
            let f = &facts[m];
            let verdict = if f.has_while {
                (Term::MayDiverge, vec![def.name.clone(), "while loop".to_string()])
            } else if cyclic {
                let peer = edges[m]
                    .iter()
                    .copied()
                    .find(|&w| scc_of[w] == s)
                    .map(|w| methods[w].1.name.clone())
                    .unwrap_or_else(|| def.name.clone());
                (Term::MayDiverge, vec![def.name.clone(), format!("recursive cycle via `{peer}`")])
            } else {
                let mut verdict =
                    (if f.has_yield { Term::BlockDep } else { Term::Terminates }, Vec::new());
                'calls: for name in &f.calls {
                    match &resolved[name.as_str()] {
                        Resolved::Methods(targets) => {
                            for &t in targets {
                                let callee = out[t].as_ref().expect("callee SCC emitted first");
                                if callee.term == Term::MayDiverge {
                                    let mut blame = vec![def.name.clone()];
                                    blame.extend(callee.term_blame.iter().cloned());
                                    verdict = (Term::MayDiverge, blame);
                                    break 'calls;
                                }
                            }
                        }
                        // A `:blockdep` iterator's block is part of this
                        // body, so its loops and calls are already walked.
                        Resolved::Seed(se) if se.term != Term::MayDiverge => {}
                        Resolved::Seed(_) => {
                            verdict = (
                                Term::MayDiverge,
                                vec![
                                    def.name.clone(),
                                    format!("`{name}` (annotated non-terminating)"),
                                ],
                            );
                            break 'calls;
                        }
                        Resolved::Unknown => {
                            verdict = (
                                Term::MayDiverge,
                                vec![def.name.clone(), format!("`{name}` (unknown)")],
                            );
                            break 'calls;
                        }
                    }
                }
                verdict
            };
            terms.insert(m, verdict);
        }

        // --- purity ------------------------------------------------------
        // Pessimistically-then-refined: assume the component impure, then
        // clear it only if no member writes and no extra-component callee
        // is impure.  The first cause in member order becomes the blame.
        let mut cause: Option<(usize, Vec<String>)> = None; // (member, tail)
        'scan: for &m in members {
            let (_, def) = &methods[m];
            let f = &facts[m];
            if let Some(token) = f.writes.first() {
                cause = Some((m, vec![def.name.clone(), token.clone()]));
                break 'scan;
            }
            for name in &f.calls {
                match &resolved[name.as_str()] {
                    Resolved::Methods(targets) => {
                        for &t in targets {
                            if scc_of[t] == s {
                                continue; // intra-component: refined away
                            }
                            let callee = out[t].as_ref().expect("callee SCC emitted first");
                            if callee.purity == Purity::Impure {
                                let mut blame = vec![def.name.clone()];
                                blame.extend(callee.purity_blame.iter().cloned());
                                cause = Some((m, blame));
                                break 'scan;
                            }
                        }
                    }
                    Resolved::Seed(se) if se.pure => {}
                    Resolved::Seed(_) => {
                        cause = Some((
                            m,
                            vec![def.name.clone(), format!("`{name}` (annotated impure)")],
                        ));
                        break 'scan;
                    }
                    Resolved::Unknown => {
                        cause = Some((m, vec![def.name.clone(), format!("`{name}` (unknown)")]));
                        break 'scan;
                    }
                }
            }
        }

        for &m in members {
            let (owner, def) = &methods[m];
            let (term, term_blame) = terms.remove(&m).expect("termination computed");
            let (purity, purity_blame) = match &cause {
                None => (Purity::Pure, Vec::new()),
                Some((c, tail)) if *c == m => (Purity::Impure, tail.clone()),
                Some((_, tail)) => {
                    // Another member carries the cause: route through it.
                    let mut blame = vec![def.name.clone()];
                    blame.extend(tail.iter().cloned());
                    (Purity::Impure, blame)
                }
            };
            out[m] = Some(MethodSummary {
                owner: owner.clone(),
                name: def.name.clone(),
                singleton: def.singleton,
                term,
                purity,
                term_blame,
                purity_blame,
                taint: TaintSummary::default(),
                scc: s,
            });
        }
    }

    fn solve_taint(
        methods: &[(String, &MethodDef)],
        members: &[usize],
        by_name: &BTreeMap<String, Vec<usize>>,
        out: &mut [Option<MethodSummary>],
    ) {
        // Iterate the component to a least fixpoint: member summaries start
        // empty (set above) and only grow, so this converges.
        loop {
            let mut changed = false;
            for &m in members {
                let (_, def) = &methods[m];
                let lookup = |name: &str| -> Option<TaintSummary> {
                    let targets = by_name.get(name)?;
                    let mut joined = TaintSummary::default();
                    for &t in targets {
                        joined.join(&out[t].as_ref().expect("summary present").taint);
                    }
                    Some(joined)
                };
                let fresh = method_taint(def, &lookup);
                let slot = &mut out[m].as_mut().expect("summary present").taint;
                if *slot != fresh {
                    *slot = fresh;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// The summary for one method, if the program defines it.
    pub fn get(&self, owner: &str, name: &str, singleton: bool) -> Option<&MethodSummary> {
        let key = (owner.to_string(), name.to_string(), singleton);
        self.index.get(&key).map(|&i| &self.methods[i])
    }

    /// All summaries, in `Program::methods()` order.
    pub fn iter(&self) -> impl Iterator<Item = &MethodSummary> {
        self.methods.iter()
    }

    /// Number of summarized methods.
    pub fn len(&self) -> usize {
        self.methods.len()
    }

    /// True when the program has no methods.
    pub fn is_empty(&self) -> bool {
        self.methods.is_empty()
    }

    /// Number of SCCs in the condensed call graph.
    pub fn scc_count(&self) -> usize {
        self.scc_count
    }

    /// The name-resolved method→method call edges inference propagated
    /// along, as deduplicated sorted `(caller, callee)` id pairs
    /// (`(owner, name, singleton)` each; self-edges included).  Exposed so
    /// callers can cross-check this call graph against an independently
    /// built dependency graph (e.g. `comprdl::semdep::DepGraph`).
    pub fn call_edges(&self) -> &[(MethodId, MethodId)] {
        &self.call_edges
    }

    /// The joined taint transfer for a bare name (the union over every
    /// same-named method — calls are name-resolved), or `None` when the
    /// program does not define the name.
    pub fn taint_for_name(&self, name: &str) -> Option<TaintSummary> {
        let targets = self.by_name.get(name)?;
        let mut joined = TaintSummary::default();
        for &t in targets {
            joined.join(&self.methods[t].taint);
        }
        Some(joined)
    }

    /// The joined (worst-case) termination/purity verdict for a bare name,
    /// with the blame of the first worst candidate, or `None` when the
    /// program does not define the name.
    pub fn effect_for_name(&self, name: &str) -> Option<(Term, Purity, Vec<String>, Vec<String>)> {
        let targets = self.by_name.get(name)?;
        let mut term = Term::Terminates;
        let mut purity = Purity::Pure;
        let mut term_blame = Vec::new();
        let mut purity_blame = Vec::new();
        for &t in targets {
            let m = &self.methods[t];
            if m.term > term {
                term = m.term;
                term_blame = m.term_blame.clone();
            }
            if m.purity > purity {
                purity = m.purity;
                purity_blame = m.purity_blame.clone();
            }
        }
        Some((term, purity, term_blame, purity_blame))
    }

    /// A stable, human-readable rendering of every summary — the
    /// byte-identity surface for the sequential-vs-parallel and
    /// cold-vs-warm gates.
    pub fn render(&self) -> String {
        let mut lines = Vec::with_capacity(self.methods.len());
        let mut ordered: Vec<&MethodSummary> = self.methods.iter().collect();
        ordered.sort_by(|a, b| {
            (&a.owner, &a.name, a.singleton).cmp(&(&b.owner, &b.name, b.singleton))
        });
        for m in ordered {
            let sep = if m.singleton { "." } else { "#" };
            let term = match m.term {
                Term::Terminates => "+",
                Term::BlockDep => "blockdep",
                Term::MayDiverge => "-",
            };
            let purity = match m.purity {
                Purity::Pure => "+",
                Purity::Impure => "-",
            };
            let set =
                |s: &BTreeSet<usize>| s.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(",");
            let mut line = format!(
                "{}{}{}: term={} pure={} ret={{{}}} sink={{{}}}",
                m.owner,
                sep,
                m.name,
                term,
                purity,
                set(&m.taint.params_to_return),
                set(&m.taint.params_to_sink),
            );
            if m.taint.self_to_return {
                line.push_str(" self>ret");
            }
            if m.taint.self_to_sink {
                line.push_str(" self>sink");
            }
            line.push_str(&format!(" scc={}", m.scc));
            if !m.term_blame.is_empty() {
                line.push_str(&format!("\n  diverges via {}", render_blame(&m.term_blame)));
            }
            if !m.purity_blame.is_empty() {
                line.push_str(&format!("\n  impure via {}", render_blame(&m.purity_blame)));
            }
            lines.push(line);
        }
        lines.join("\n")
    }
}

fn collect_all_facts(program: &Program, threads: usize) -> Vec<LocalFacts> {
    let methods = program.methods();
    if threads <= 1 || methods.len() <= 1 {
        return methods.iter().map(|(_, def)| collect_facts(def)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<LocalFacts>> = methods.iter().map(|_| None).collect();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads.min(methods.len()))
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some((_, def)) = methods.get(i) else { break };
                        out.push((i, collect_facts(def)));
                    }
                    out
                })
            })
            .collect();
        for worker in workers {
            for (i, facts) in worker.join().expect("facts worker panicked") {
                slots[i] = Some(facts);
            }
        }
    });
    slots.into_iter().map(|f| f.expect("every method visited")).collect()
}

// ---------------------------------------------------------------------------
// Per-method taint transfer
// ---------------------------------------------------------------------------

/// A taint origin within one method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Origin {
    /// The i-th parameter.
    Param(usize),
    /// The receiver / instance state (`self`, `@ivar`).
    Recv,
}

type Origins = BTreeSet<Origin>;

struct TaintCtx<'c> {
    params: BTreeMap<String, usize>,
    locals: BTreeMap<String, Origins>,
    sink: Origins,
    ret: Origins,
    lookup: &'c dyn Fn(&str) -> Option<TaintSummary>,
}

/// Computes the taint transfer of one method body given `lookup` for the
/// (current) summaries of called program methods.  Flow-insensitive: the
/// body is re-walked until the local origin sets stop growing, which makes
/// the result a may-over-approximation on loops and branches.
fn method_taint(def: &MethodDef, lookup: &dyn Fn(&str) -> Option<TaintSummary>) -> TaintSummary {
    // Unknown body ⇒ conservative pass-through: every argument and the
    // receiver may reach the return value.  Sinks stay clear — claiming a
    // SQL sink inside unparsed code would manufacture phantom LINT0105
    // findings in every caller.
    if def.poisoned {
        return TaintSummary {
            params_to_return: def
                .params
                .iter()
                .enumerate()
                .filter(|(_, p)| !p.block)
                .map(|(i, _)| i)
                .collect(),
            params_to_sink: BTreeSet::new(),
            self_to_return: true,
            self_to_sink: false,
        };
    }
    let params: BTreeMap<String, usize> = def
        .params
        .iter()
        .enumerate()
        .filter(|(_, p)| !p.block)
        .map(|(i, p)| (p.name.clone(), i))
        .collect();
    let mut ctx = TaintCtx {
        params,
        locals: BTreeMap::new(),
        sink: Origins::new(),
        ret: Origins::new(),
        lookup,
    };
    loop {
        let before = (ctx.locals.clone(), ctx.sink.clone(), ctx.ret.clone());
        let mut shadow: Vec<Vec<String>> = Vec::new();
        for (i, stmt) in def.body.iter().enumerate() {
            let o = taint_origins(stmt, &mut ctx, &mut shadow);
            if i + 1 == def.body.len() {
                // The tail statement is the implicit return value.
                ctx.ret.extend(o);
            }
        }
        if (ctx.locals.clone(), ctx.sink.clone(), ctx.ret.clone()) == before {
            break;
        }
    }
    TaintSummary {
        params_to_return: ctx
            .ret
            .iter()
            .filter_map(|o| if let Origin::Param(i) = o { Some(*i) } else { None })
            .collect(),
        params_to_sink: ctx
            .sink
            .iter()
            .filter_map(|o| if let Origin::Param(i) = o { Some(*i) } else { None })
            .collect(),
        self_to_return: ctx.ret.contains(&Origin::Recv),
        self_to_sink: ctx.sink.contains(&Origin::Recv),
    }
}

fn taint_origins(e: &Expr, ctx: &mut TaintCtx<'_>, shadow: &mut Vec<Vec<String>>) -> Origins {
    match &e.kind {
        ExprKind::Ident(n) => {
            if shadowed(shadow, n) {
                Origins::new()
            } else if let Some(&i) = ctx.params.get(n) {
                [Origin::Param(i)].into()
            } else if let Some(o) = ctx.locals.get(n) {
                o.clone()
            } else {
                // A bare call on `self`.
                call_result(None, n, &[], ctx)
            }
        }
        ExprKind::SelfExpr | ExprKind::IVar(_) => [Origin::Recv].into(),
        ExprKind::Array(items) => {
            let mut o = Origins::new();
            for item in items {
                o.extend(taint_origins(item, ctx, shadow));
            }
            o
        }
        ExprKind::Hash(pairs) => {
            let mut o = Origins::new();
            for (k, v) in pairs {
                o.extend(taint_origins(k, ctx, shadow));
                o.extend(taint_origins(v, ctx, shadow));
            }
            o
        }
        ExprKind::Assign { target, value } => {
            let o = taint_origins(value, ctx, shadow);
            assign_target(target, &o, ctx, shadow);
            o
        }
        ExprKind::OpAssign { target, value, .. } => {
            let mut o = taint_origins(value, ctx, shadow);
            if let LValue::Local(n) = target {
                if !shadowed(shadow, n) {
                    if let Some(prev) = ctx.locals.get(n) {
                        o.extend(prev.iter().copied());
                    }
                    if let Some(&i) = ctx.params.get(n) {
                        o.insert(Origin::Param(i));
                    }
                }
            }
            assign_target(target, &o, ctx, shadow);
            o
        }
        ExprKind::Call { recv, name, args, block } => {
            let recv_o = recv.as_ref().map(|r| taint_origins(r, ctx, shadow));
            let arg_o: Vec<Origins> = args.iter().map(|a| taint_origins(a, ctx, shadow)).collect();
            if let Some(b) = block {
                shadow.push(b.params.clone());
                for stmt in &b.body {
                    taint_origins(stmt, ctx, shadow);
                }
                shadow.pop();
            }
            if SQL_SINKS.contains(&name.as_str()) {
                if let Some(first) = arg_o.first() {
                    ctx.sink.extend(first.iter().copied());
                }
            }
            call_result(recv_o, name, &arg_o, ctx)
        }
        ExprKind::BoolOp { lhs, rhs, .. } => {
            let mut o = taint_origins(lhs, ctx, shadow);
            o.extend(taint_origins(rhs, ctx, shadow));
            o
        }
        ExprKind::Not(inner) | ExprKind::TypeCast { expr: inner, .. } => {
            taint_origins(inner, ctx, shadow)
        }
        ExprKind::If { arms, else_body } | ExprKind::Case { subject: _, arms, else_body } => {
            if let ExprKind::Case { subject, .. } = &e.kind {
                taint_origins(subject, ctx, shadow);
            }
            let mut o = Origins::new();
            for arm in arms {
                taint_origins(&arm.cond, ctx, shadow);
                for (i, stmt) in arm.body.iter().enumerate() {
                    let so = taint_origins(stmt, ctx, shadow);
                    if i + 1 == arm.body.len() {
                        o.extend(so);
                    }
                }
            }
            for (i, stmt) in else_body.iter().enumerate() {
                let so = taint_origins(stmt, ctx, shadow);
                if i + 1 == else_body.len() {
                    o.extend(so);
                }
            }
            o
        }
        ExprKind::While { cond, body } => {
            taint_origins(cond, ctx, shadow);
            for stmt in body {
                taint_origins(stmt, ctx, shadow);
            }
            Origins::new()
        }
        ExprKind::Return(Some(v)) => {
            let o = taint_origins(v, ctx, shadow);
            ctx.ret.extend(o);
            Origins::new()
        }
        ExprKind::Yield(args) => {
            for arg in args {
                taint_origins(arg, ctx, shadow);
            }
            Origins::new()
        }
        ExprKind::Lambda(b) => {
            shadow.push(b.params.clone());
            for stmt in &b.body {
                taint_origins(stmt, ctx, shadow);
            }
            shadow.pop();
            Origins::new()
        }
        _ => Origins::new(),
    }
}

fn assign_target(
    target: &LValue,
    origins: &Origins,
    ctx: &mut TaintCtx<'_>,
    shadow: &[Vec<String>],
) {
    if let LValue::Local(n) = target {
        if !shadowed(shadow, n) {
            ctx.locals.entry(n.clone()).or_default().extend(origins.iter().copied());
        }
    }
}

/// The origins of a call's result, plus its summary-driven sink flows.
fn call_result(
    recv: Option<Origins>,
    name: &str,
    args: &[Origins],
    ctx: &mut TaintCtx<'_>,
) -> Origins {
    match (ctx.lookup)(name) {
        Some(sum) => {
            // A call without an explicit receiver targets `self`, so the
            // callee's receiver flows are this method's receiver flows.
            for &i in &sum.params_to_sink {
                if let Some(a) = args.get(i) {
                    ctx.sink.extend(a.iter().copied());
                }
            }
            if sum.self_to_sink {
                match &recv {
                    Some(r) => ctx.sink.extend(r.iter().copied()),
                    None => {
                        ctx.sink.insert(Origin::Recv);
                    }
                }
            }
            let mut o = Origins::new();
            for &i in &sum.params_to_return {
                if let Some(a) = args.get(i) {
                    o.extend(a.iter().copied());
                }
            }
            if sum.self_to_return {
                match &recv {
                    Some(r) => o.extend(r.iter().copied()),
                    None => {
                        o.insert(Origin::Recv);
                    }
                }
            }
            o
        }
        None => {
            // Unknown (or core-library) callee: taint flows through
            // conservatively — the result is derived from every input.
            let mut o = Origins::new();
            if let Some(r) = recv {
                o.extend(r);
            }
            for a in args {
                o.extend(a.iter().copied());
            }
            o
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruby_syntax::parse_program_strict;

    fn seed() -> SeedMap {
        let mut s = SeedMap::new();
        for name in ["+", "-", "*", "==", ">", "<", "length", "map", "first"] {
            let term = if name == "map" { Term::BlockDep } else { Term::Terminates };
            s.insert(name.to_string(), SeedEffect { term, pure: true });
        }
        s.insert("push".to_string(), SeedEffect { term: Term::Terminates, pure: false });
        s
    }

    fn infer_src(src: &str) -> ProgramSummaries {
        let p = parse_program_strict(src).expect("parse");
        ProgramSummaries::infer(&p, &seed())
    }

    #[test]
    fn straight_line_pure_method_terminates() {
        let s = infer_src("def m(x)\n  y = x + 1\n  y * 2\nend\n");
        let m = s.get("Object", "m", false).unwrap();
        assert_eq!(m.term, Term::Terminates);
        assert_eq!(m.purity, Purity::Pure);
        assert!(m.term_blame.is_empty() && m.purity_blame.is_empty());
    }

    #[test]
    fn while_loop_blames_itself() {
        let s = infer_src("def spin(n)\n  while n > 0\n    n = n - 1\n  end\n  n\nend\n");
        let m = s.get("Object", "spin", false).unwrap();
        assert_eq!(m.term, Term::MayDiverge);
        assert_eq!(render_blame(&m.term_blame), "spin \u{2192} while loop");
        assert_eq!(m.purity, Purity::Pure, "looping is not impurity");
    }

    #[test]
    fn divergence_propagates_through_calls_with_blame() {
        let s = infer_src(
            "def a(x)\n  b(x)\nend\ndef b(x)\n  c(x)\nend\ndef c(x)\n  while x\n    x = x\n  end\nend\n",
        );
        let a = s.get("Object", "a", false).unwrap();
        assert_eq!(a.term, Term::MayDiverge);
        assert_eq!(render_blame(&a.term_blame), "a \u{2192} b \u{2192} c \u{2192} while loop");
    }

    #[test]
    fn impurity_propagates_with_blame_path() {
        let s = infer_src("def a(x)\n  b(x)\nend\ndef b(x)\n  @x = x\n  x\nend\n");
        let a = s.get("Object", "a", false).unwrap();
        assert_eq!(a.purity, Purity::Impure);
        assert_eq!(render_blame(&a.purity_blame), "a \u{2192} b \u{2192} @x=");
        let b = s.get("Object", "b", false).unwrap();
        assert_eq!(render_blame(&b.purity_blame), "b \u{2192} @x=");
    }

    #[test]
    fn mutual_recursion_converges_to_a_pessimistic_cycle() {
        // The acceptance-criteria fixpoint test: a ↔ b must converge and
        // both land in one SCC with a cycle blame.
        let s = infer_src(
            "def even(n)\n  if n == 0\n    true\n  else\n    odd(n - 1)\n  end\nend\ndef odd(n)\n  if n == 0\n    false\n  else\n    even(n - 1)\n  end\nend\n",
        );
        let even = s.get("Object", "even", false).unwrap();
        let odd = s.get("Object", "odd", false).unwrap();
        assert_eq!(even.scc, odd.scc, "mutual recursion is one component");
        assert_eq!(even.term, Term::MayDiverge);
        assert_eq!(odd.term, Term::MayDiverge);
        assert!(
            render_blame(&even.term_blame).contains("recursive cycle"),
            "{:?}",
            even.term_blame
        );
        // No writes anywhere: the pessimistic purity start refines to pure.
        assert_eq!(even.purity, Purity::Pure);
        assert_eq!(odd.purity, Purity::Pure);
    }

    #[test]
    fn self_recursion_is_a_cycle_too() {
        let s = infer_src("def down(n)\n  down(n - 1)\nend\n");
        let m = s.get("Object", "down", false).unwrap();
        assert_eq!(m.term, Term::MayDiverge);
        assert!(render_blame(&m.term_blame).contains("recursive cycle via `down`"));
    }

    #[test]
    fn cycle_purity_refines_but_member_write_poisons_the_component() {
        let s = infer_src("def a(x)\n  b(x)\nend\ndef b(x)\n  @log = x\n  a(x)\nend\n");
        let a = s.get("Object", "a", false).unwrap();
        let b = s.get("Object", "b", false).unwrap();
        assert_eq!(a.scc, b.scc);
        assert_eq!(a.purity, Purity::Impure);
        assert_eq!(b.purity, Purity::Impure);
        assert_eq!(render_blame(&b.purity_blame), "b \u{2192} @log=");
        // `a` routes through the member that carries the write.
        assert_eq!(render_blame(&a.purity_blame), "a \u{2192} b \u{2192} @log=");
    }

    #[test]
    fn unknown_callee_is_pessimistic() {
        let s = infer_src("def m(x)\n  mystery(x)\nend\n");
        let m = s.get("Object", "m", false).unwrap();
        assert_eq!(m.term, Term::MayDiverge);
        assert_eq!(m.purity, Purity::Impure);
        assert!(render_blame(&m.term_blame).contains("`mystery` (unknown)"));
    }

    #[test]
    fn seeded_impure_callee_blames_the_annotation() {
        let s = infer_src("def m(xs, x)\n  xs.push(x)\nend\n");
        let m = s.get("Object", "m", false).unwrap();
        assert_eq!(m.purity, Purity::Impure);
        assert_eq!(render_blame(&m.purity_blame), "m \u{2192} `push` (annotated impure)");
        assert_eq!(m.term, Term::Terminates, "push terminates");
    }

    #[test]
    fn yielding_method_is_blockdep() {
        let s = infer_src("def each_twice(x)\n  yield(x)\n  yield(x)\nend\n");
        let m = s.get("Object", "each_twice", false).unwrap();
        assert_eq!(m.term, Term::BlockDep);
    }

    #[test]
    fn blockdep_iterator_with_loop_free_block_terminates() {
        let s = infer_src("def m(xs)\n  xs.map { |v| v + 1 }\nend\n");
        let m = s.get("Object", "m", false).unwrap();
        assert_eq!(m.term, Term::Terminates);
        let s = infer_src("def m(xs, n)\n  xs.map { |v| spin(n) }\nend\ndef spin(n)\n  while n\n    n = n\n  end\nend\n");
        let m = s.get("Object", "m", false).unwrap();
        assert_eq!(m.term, Term::MayDiverge, "the block's calls are part of the body");
    }

    #[test]
    fn taint_param_to_return_through_concat() {
        let s = infer_src("def build(q)\n  'title = ' + q\nend\n");
        let m = s.get("Object", "build", false).unwrap();
        assert!(m.taint.params_to_return.contains(&0), "{:?}", m.taint);
        assert!(m.taint.params_to_sink.is_empty());
    }

    #[test]
    fn taint_param_to_sink_directly_and_transitively() {
        let s = infer_src(
            "def self.apply(frag)\n  Topic.where(frag)\nend\ndef self.search(q)\n  apply('title = ' + q)\nend\n",
        );
        let apply = s.get("Object", "apply", true).unwrap();
        assert!(apply.taint.params_to_sink.contains(&0), "{:?}", apply.taint);
        let search = s.get("Object", "search", true).unwrap();
        assert!(
            search.taint.params_to_sink.contains(&0),
            "the sink transfer must propagate through the call: {:?}",
            search.taint
        );
    }

    #[test]
    fn taint_return_transfer_is_precise_for_known_callees() {
        // `constant` ignores its parameter, so q does not reach the return
        // of `m` — the summary is *more* precise than the conservative
        // any-arg rule.
        let s = infer_src("def constant(q)\n  42\nend\ndef m(q)\n  constant(q)\nend\n");
        let m = s.get("Object", "m", false).unwrap();
        assert!(m.taint.params_to_return.is_empty(), "{:?}", m.taint);
    }

    #[test]
    fn taint_through_locals_and_branches() {
        let s = infer_src(
            "def pick(a, b, c)\n  if c\n    v = a\n  else\n    v = 'x'\n  end\n  v\nend\n",
        );
        let m = s.get("Object", "pick", false).unwrap();
        assert_eq!(m.taint.params_to_return, [0usize].into_iter().collect());
    }

    #[test]
    fn receiver_flows_are_tracked() {
        let s = infer_src("def frag()\n  @prefix + 'x'\nend\ndef m()\n  where(frag())\nend\n");
        let f = s.get("Object", "frag", false).unwrap();
        assert!(f.taint.self_to_return);
        let m = s.get("Object", "m", false).unwrap();
        assert!(m.taint.self_to_sink, "{:?}", m.taint);
    }

    #[test]
    fn recursive_taint_reaches_a_fixpoint() {
        let s = infer_src(
            "def a(q, n)\n  if n == 0\n    q\n  else\n    b(q, n - 1)\n  end\nend\ndef b(q, n)\n  a(q, n)\nend\n",
        );
        let a = s.get("Object", "a", false).unwrap();
        let b = s.get("Object", "b", false).unwrap();
        assert!(a.taint.params_to_return.contains(&0), "{:?}", a.taint);
        assert!(b.taint.params_to_return.contains(&0), "{:?}", b.taint);
    }

    #[test]
    fn parallel_inference_is_byte_identical() {
        let src = "def a(x)\n  b(x)\nend\ndef b(x)\n  c(x)\nend\ndef c(x)\n  while x\n    x = x\n  end\nend\ndef self.search(q)\n  Topic.where('t = ' + q)\nend\ndef even(n)\n  odd(n)\nend\ndef odd(n)\n  even(n)\nend\n";
        let p = parse_program_strict(src).expect("parse");
        let seq = ProgramSummaries::infer(&p, &seed());
        for threads in [2, 4, 8] {
            let par = ProgramSummaries::infer_parallel(&p, &seed(), threads);
            assert_eq!(seq.render(), par.render(), "threads={threads}");
        }
    }

    #[test]
    fn baseline_replay_skips_fixed_methods_and_renders_identically() {
        let src = "def a(x)\n  b(x)\nend\ndef b(x)\n  @x = x\nend\ndef lone(y)\n  y + 1\nend\n";
        let p = parse_program_strict(src).expect("parse");
        let cold = ProgramSummaries::infer(&p, &seed());
        // Freeze everything, replay everything: 0 re-summarized.
        let fixed: BTreeMap<_, _> = cold
            .iter()
            .map(|m| ((m.owner.clone(), m.name.clone(), m.singleton), m.clone()))
            .collect();
        let (warm, n) = ProgramSummaries::infer_with_baseline(&p, &seed(), &fixed);
        assert_eq!(n, 0, "warm run must re-summarize nothing");
        assert_eq!(cold.render(), warm.render());
        // Drop one method from the baseline: exactly it is re-summarized
        // (its dependents were not dropped here; the corpus driver drops
        // them via Merkle invalidation).
        let mut partial = fixed.clone();
        partial.remove(&("Object".to_string(), "lone".to_string(), false));
        let (warm, n) = ProgramSummaries::infer_with_baseline(&p, &seed(), &partial);
        assert_eq!(n, 1);
        assert_eq!(cold.render(), warm.render());
    }

    #[test]
    fn effect_and_taint_name_lookups_join_candidates() {
        let src = "class A\n  def go(x)\n    x\n  end\nend\nclass B\n  def go(x)\n    @x = x\n    where('t = ' + x)\n  end\nend\n";
        let s = infer_src(src);
        let (term, purity, _, blame) = s.effect_for_name("go").unwrap();
        assert_eq!(term, Term::MayDiverge, "worst candidate wins (B#go calls unknown `where`)");
        assert_eq!(purity, Purity::Impure, "worst candidate wins");
        assert!(!blame.is_empty());
        let t = s.taint_for_name("go").unwrap();
        assert!(t.params_to_sink.contains(&0));
        assert!(s.effect_for_name("nonexistent").is_none());
    }

    #[test]
    fn render_is_stable_and_mentions_blames() {
        let s = infer_src("def a(x)\n  b(x)\nend\ndef b(x)\n  @x = x\nend\n");
        let r = s.render();
        assert_eq!(r, s.render());
        assert!(r.contains("impure via a \u{2192} b \u{2192} @x="), "{r}");
    }
}
