//! A generic worklist dataflow solver over [`Cfg`]s.
//!
//! A [`DataflowProblem`] supplies the lattice (an initial optimistic
//! [`top`](DataflowProblem::top) fact that is the identity of
//! [`join`](DataflowProblem::join)), the boundary fact at the entry
//! (forward) or exit (backward) block, and a per-statement transfer
//! function.  [`solve`] iterates to the least fixed point with a
//! deterministic FIFO worklist, so two runs over the same CFG always
//! produce identical solutions — a requirement for the byte-identical
//! sequential-vs-parallel lint gate in the corpus harness.
//!
//! Unreachable blocks keep their `top` fact (they are seeded but never
//! receive a boundary contribution), which makes must-analyses vacuously
//! true and may-analyses vacuously false inside dead code; the dead code
//! itself is reported separately via [`Cfg::reachable`].

use crate::cfg::Cfg;
use ruby_syntax::Expr;
use std::collections::VecDeque;

/// Which way facts propagate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from the entry along the edges (e.g. definite assignment).
    Forward,
    /// Facts flow from the exit against the edges (e.g. liveness).
    Backward,
}

/// One dataflow analysis: lattice, boundary and transfer.
pub trait DataflowProblem<'a> {
    /// The lattice element attached to each program point.
    type Fact: Clone + PartialEq;

    /// Forward or backward.
    fn direction(&self) -> Direction;

    /// The fact at the boundary block (entry for forward, exit for
    /// backward) — e.g. "the parameters are assigned".
    fn boundary(&self) -> Self::Fact;

    /// The optimistic initial fact; must be the identity of
    /// [`join`](DataflowProblem::join) (the full universe for an
    /// intersection join, the empty set for a union join).
    fn top(&self) -> Self::Fact;

    /// Merges `from` into `into` at a control-flow merge point.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact);

    /// Applies one statement's effect to the fact in flow order (the solver
    /// visits statements in reverse for backward problems).
    fn transfer(&self, stmt: &'a Expr, fact: &mut Self::Fact);
}

/// The fixed-point facts at each block boundary.
#[derive(Debug)]
pub struct Solution<F> {
    /// The fact on entry to each block (before its first statement).
    pub block_in: Vec<F>,
    /// The fact on exit from each block (after its last statement).
    pub block_out: Vec<F>,
}

/// Runs `problem` to its least fixed point over `cfg`.
pub fn solve<'a, P: DataflowProblem<'a>>(cfg: &Cfg<'a>, problem: &P) -> Solution<P::Fact> {
    let n = cfg.blocks.len();
    let forward = problem.direction() == Direction::Forward;
    let mut block_in: Vec<P::Fact> = (0..n).map(|_| problem.top()).collect();
    let mut block_out: Vec<P::Fact> = (0..n).map(|_| problem.top()).collect();

    // Seed every block once, in flow order, so even blocks whose computed
    // fact equals `top` are processed; after that, a block re-enters the
    // queue only when a fact it consumes has changed.
    let mut work: VecDeque<usize> = if forward { (0..n).collect() } else { (0..n).rev().collect() };
    let mut queued = vec![true; n];

    while let Some(b) = work.pop_front() {
        queued[b] = false;
        let boundary_block = if forward { cfg.entry } else { cfg.exit };
        let sources = if forward { &cfg.blocks[b].preds } else { &cfg.blocks[b].succs };
        let mut fact = if b == boundary_block {
            problem.boundary()
        } else {
            let mut acc = problem.top();
            for &s in sources {
                let src = if forward { &block_out[s] } else { &block_in[s] };
                problem.join(&mut acc, src);
            }
            acc
        };
        if forward {
            block_in[b] = fact.clone();
            for stmt in &cfg.blocks[b].stmts {
                problem.transfer(stmt, &mut fact);
            }
        } else {
            block_out[b] = fact.clone();
            for stmt in cfg.blocks[b].stmts.iter().rev() {
                problem.transfer(stmt, &mut fact);
            }
        }
        let dest = if forward { &mut block_out[b] } else { &mut block_in[b] };
        if *dest != fact {
            *dest = fact;
            let consumers = if forward { &cfg.blocks[b].succs } else { &cfg.blocks[b].preds };
            for &c in consumers {
                if !queued[c] {
                    queued[c] = true;
                    work.push_back(c);
                }
            }
        }
    }
    Solution { block_in, block_out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruby_syntax::{parse_program_strict, ExprKind, LValue};
    use std::collections::BTreeSet;

    /// A toy definite-assignment problem: a name is "defined" after any
    /// statement-position assignment to it.
    struct Defined {
        universe: BTreeSet<String>,
        params: BTreeSet<String>,
    }

    impl<'a> DataflowProblem<'a> for Defined {
        type Fact = BTreeSet<String>;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn boundary(&self) -> Self::Fact {
            self.params.clone()
        }
        fn top(&self) -> Self::Fact {
            self.universe.clone()
        }
        fn join(&self, into: &mut Self::Fact, from: &Self::Fact) {
            into.retain(|n| from.contains(n));
        }
        fn transfer(&self, stmt: &'a Expr, fact: &mut Self::Fact) {
            if let ExprKind::Assign { target: LValue::Local(n), .. } = &stmt.kind {
                fact.insert(n.clone());
            }
        }
    }

    use crate::cfg::Cfg;
    use ruby_syntax::Expr;

    #[test]
    fn branch_only_definitions_do_not_survive_the_join() {
        let p = parse_program_strict(
            "def m(c)\n  a = 1\n  if c\n    b = 2\n  else\n    a = 3\n  end\n  a\nend\n",
        )
        .expect("parse");
        let def = p.methods()[0].1;
        let cfg = Cfg::build(&def.body);
        let universe: BTreeSet<String> = ["a", "b", "c"].into_iter().map(str::to_string).collect();
        let params: BTreeSet<String> = ["c".to_string()].into();
        let sol = solve(&cfg, &Defined { universe, params });
        let at_exit = &sol.block_in[cfg.exit];
        assert!(at_exit.contains("a"), "assigned on every path: {at_exit:?}");
        assert!(at_exit.contains("c"), "parameters are always defined");
        assert!(!at_exit.contains("b"), "only assigned on the then-branch: {at_exit:?}");
    }

    /// A minimal backward liveness problem (union join, use-inserting
    /// transfer) for the convergence tests below.
    struct Live;

    impl<'a> DataflowProblem<'a> for Live {
        type Fact = BTreeSet<String>;
        fn direction(&self) -> Direction {
            Direction::Backward
        }
        fn boundary(&self) -> Self::Fact {
            BTreeSet::new()
        }
        fn top(&self) -> Self::Fact {
            BTreeSet::new()
        }
        fn join(&self, into: &mut Self::Fact, from: &Self::Fact) {
            into.extend(from.iter().cloned());
        }
        fn transfer(&self, stmt: &'a Expr, fact: &mut Self::Fact) {
            stmt.walk(&mut |e| {
                if let ExprKind::Ident(n) = &e.kind {
                    fact.insert(n.clone());
                }
            });
        }
    }

    /// Liveness over a loop whose body holds `break`/`next` nested in
    /// short-circuit conditions: the solver must still reach a fixed point
    /// (the back edge plus the break/next edges form multiple cycles), and
    /// the loop-carried variable stays live at the head.
    #[test]
    fn liveness_converges_across_short_circuit_break_and_next_edges() {
        for src in [
            "def m(n)\n  while n > 0\n    done && break\n    n = n - 1\n  end\n  n\nend\n",
            "def m(n)\n  while n > 0\n    skip || next\n    n = n - 1\n  end\n  n\nend\n",
        ] {
            let p = parse_program_strict(src).expect("parse");
            let def = p.methods()[0].1;
            let cfg = Cfg::build(&def.body);
            let sol = solve(&cfg, &Live);
            // `n` is read by the condition, the decrement and the tail, so
            // it is live on entry to the loop head from every direction.
            let head = (0..cfg.blocks.len())
                .find(|&b| cfg.blocks[b].succs.len() == 2 && cfg.blocks[b].preds.len() >= 2)
                .expect("loop head");
            assert!(sol.block_in[head].contains("n"), "src={src:?}: {:?}", sol.block_in[head]);
            assert!(sol.block_in[cfg.exit].is_empty(), "nothing is live past the exit");
        }
    }

    /// Liveness with a `return` inside an `elsif` arm: the early-exit edge
    /// must not leak the tail's uses into the returning arm.
    #[test]
    fn liveness_converges_with_return_from_an_elsif_arm() {
        let p = parse_program_strict(
            "def m(c)\n  if c == 1\n    x = 1\n  elsif c == 2\n    return 9\n  else\n    x = 3\n  end\n  x\nend\n",
        )
        .expect("parse");
        let def = p.methods()[0].1;
        let cfg = Cfg::build(&def.body);
        let sol = solve(&cfg, &Live);
        let ret = cfg
            .blocks
            .iter()
            .position(|b| b.stmts.iter().any(|s| matches!(s.kind, ExprKind::Return(_))))
            .expect("return block");
        assert!(
            !sol.block_out[ret].contains("x"),
            "x is not live after a return: {:?}",
            sol.block_out[ret]
        );
        assert!(sol.block_in[cfg.entry].contains("c"), "the scrutinee is live at entry");
    }

    #[test]
    fn loop_body_facts_reach_the_fixed_point() {
        let p = parse_program_strict("def m(n)\n  while n > 0\n    x = 1\n  end\n  x\nend\n")
            .expect("parse");
        let def = p.methods()[0].1;
        let cfg = Cfg::build(&def.body);
        let universe: BTreeSet<String> = ["n", "x"].into_iter().map(str::to_string).collect();
        let params: BTreeSet<String> = ["n".to_string()].into();
        let sol = solve(&cfg, &Defined { universe, params });
        assert!(
            !sol.block_in[cfg.exit].contains("x"),
            "a zero-trip loop never assigns x: {:?}",
            sol.block_in[cfg.exit]
        );
    }
}
