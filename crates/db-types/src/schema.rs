//! The database schema and association registry.
//!
//! This is the stand-in for a real RDBMS: CompRDL's query comp types only
//! ever consult the *schema* (which tables exist, which columns they have
//! and their types) and the declared Rails associations, never the data, so
//! an in-memory registry exercises exactly the same type-level code paths
//! the paper's `RDL.db_schema` table does.

use rdl_types::{HashKey, Type, TypeStore};
use sql_tc::{SqlSchema, SqlType};
use std::collections::BTreeMap;

/// The type of a database column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// Integer columns (primary keys, foreign keys, counters).
    Integer,
    /// String / text columns.
    String,
    /// Boolean columns.
    Boolean,
    /// Floating point columns.
    Float,
    /// Timestamps (modelled as strings at the Ruby level).
    DateTime,
}

impl ColumnType {
    /// The RDL type of values stored in such a column.
    pub fn to_rdl_type(self) -> Type {
        match self {
            ColumnType::Integer => Type::nominal("Integer"),
            ColumnType::String => Type::nominal("String"),
            ColumnType::Boolean => Type::Bool,
            ColumnType::Float => Type::nominal("Float"),
            ColumnType::DateTime => Type::nominal("String"),
        }
    }

    /// The SQL type used by the raw-SQL checker.
    pub fn to_sql_type(self) -> SqlType {
        match self {
            ColumnType::Integer => SqlType::Integer,
            ColumnType::String => SqlType::Text,
            ColumnType::Boolean => SqlType::Boolean,
            ColumnType::Float => SqlType::Float,
            ColumnType::DateTime => SqlType::Text,
        }
    }
}

/// An association between two model classes (`has_many` / `belongs_to`),
/// which Rails requires before two tables may be joined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Association {
    /// The model class declaring the association.
    pub from_class: String,
    /// The association name (the symbol passed to `joins`).
    pub name: String,
    /// The target table.
    pub target_table: String,
}

/// The schema + association registry (the analogue of `RDL.db_schema`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DbRegistry {
    tables: BTreeMap<String, Vec<(String, ColumnType)>>,
    models: BTreeMap<String, String>,
    associations: Vec<Association>,
}

impl DbRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        DbRegistry::default()
    }

    /// Declares a table and its columns.
    pub fn add_table(&mut self, name: &str, columns: &[(&str, ColumnType)]) {
        self.tables
            .insert(name.to_string(), columns.iter().map(|(c, t)| (c.to_string(), *t)).collect());
    }

    /// Declares a model class backed by `table`.
    pub fn add_model(&mut self, class: &str, table: &str) {
        self.models.insert(class.to_string(), table.to_string());
    }

    /// Declares an association from `class` under `name` targeting `table`.
    pub fn add_association(&mut self, class: &str, name: &str, table: &str) {
        self.associations.push(Association {
            from_class: class.to_string(),
            name: name.to_string(),
            target_table: table.to_string(),
        });
    }

    /// True if `class` declared an association named `name`.
    pub fn has_association(&self, class: &str, name: &str) -> bool {
        self.associations.iter().any(|a| a.from_class == class && a.name == name)
    }

    /// The table name backing a model class, using the declared mapping or
    /// a simple pluralization (the paper notes Rails knows `person` →
    /// `people`).
    pub fn table_for_class(&self, class: &str) -> String {
        if let Some(t) = self.models.get(class) {
            return t.clone();
        }
        pluralize(&class.to_lowercase())
    }

    /// The table name for an association symbol (`:emails` → `emails`).
    pub fn table_for_symbol(&self, sym: &str) -> String {
        if self.tables.contains_key(sym) {
            return sym.to_string();
        }
        pluralize(sym)
    }

    /// The columns of a table, if known.
    pub fn columns(&self, table: &str) -> Option<&[(String, ColumnType)]> {
        self.tables.get(table).map(|v| v.as_slice())
    }

    /// True if the table exists.
    pub fn has_table(&self, table: &str) -> bool {
        self.tables.contains_key(table)
    }

    /// All table names.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// All registered model class names.
    pub fn model_names(&self) -> Vec<String> {
        self.models.keys().cloned().collect()
    }

    /// Builds the finite hash type describing a table's columns (the `T` of
    /// `Table<T>` in §2.1).
    pub fn schema_finite_hash(&self, table: &str, store: &mut TypeStore) -> Option<Type> {
        let columns = self.tables.get(table)?;
        let entries = columns
            .iter()
            .map(|(name, ty)| (HashKey::Sym(name.clone()), ty.to_rdl_type()))
            .collect();
        Some(store.new_finite_hash(entries))
    }

    /// Converts the registry into the schema format used by the raw-SQL
    /// checker.
    pub fn to_sql_schema(&self) -> SqlSchema {
        let mut schema = SqlSchema::new();
        for (table, columns) in &self.tables {
            let cols: Vec<(&str, SqlType)> =
                columns.iter().map(|(c, t)| (c.as_str(), t.to_sql_type())).collect();
            schema.add_table(table, &cols);
        }
        schema
    }
}

/// A (deliberately simple) English pluralizer covering the nouns used by the
/// corpus apps; Rails' inflector is far richer but only the mapping matters.
pub fn pluralize(word: &str) -> String {
    match word {
        "person" => "people".to_string(),
        "child" => "children".to_string(),
        _ => {
            if word.ends_with('y') && !word.ends_with("ay") && !word.ends_with("ey") {
                format!("{}ies", &word[..word.len() - 1])
            } else if word.ends_with('s') || word.ends_with("ch") || word.ends_with('x') {
                format!("{word}es")
            } else {
                format!("{word}s")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DbRegistry {
        let mut db = DbRegistry::new();
        db.add_table(
            "users",
            &[
                ("id", ColumnType::Integer),
                ("username", ColumnType::String),
                ("staged", ColumnType::Boolean),
            ],
        );
        db.add_table(
            "emails",
            &[
                ("id", ColumnType::Integer),
                ("email", ColumnType::String),
                ("user_id", ColumnType::Integer),
            ],
        );
        db.add_model("User", "users");
        db.add_association("User", "emails", "emails");
        db
    }

    #[test]
    fn table_and_model_lookup() {
        let db = sample();
        assert!(db.has_table("users"));
        assert_eq!(db.table_for_class("User"), "users");
        assert_eq!(db.table_for_class("Email"), "emails");
        assert_eq!(db.table_for_symbol("emails"), "emails");
        assert_eq!(db.table_for_symbol("email"), "emails");
        assert!(db.has_association("User", "emails"));
        assert!(!db.has_association("User", "apartments"));
    }

    #[test]
    fn pluralization() {
        assert_eq!(pluralize("user"), "users");
        assert_eq!(pluralize("person"), "people");
        assert_eq!(pluralize("topic"), "topics");
        assert_eq!(pluralize("category"), "categories");
        assert_eq!(pluralize("box"), "boxes");
    }

    #[test]
    fn schema_finite_hash_has_all_columns() {
        let db = sample();
        let mut store = TypeStore::new();
        let t = db.schema_finite_hash("users", &mut store).unwrap();
        let Type::FiniteHash(id) = t else { panic!() };
        let data = store.finite_hash(id);
        assert_eq!(data.entries.len(), 3);
        assert_eq!(data.get(&HashKey::Sym("username".into())), Some(&Type::nominal("String")));
        assert_eq!(data.get(&HashKey::Sym("staged".into())), Some(&Type::Bool));
        assert!(db.schema_finite_hash("missing", &mut store).is_none());
    }

    #[test]
    fn sql_schema_conversion() {
        let db = sample();
        let sql = db.to_sql_schema();
        assert!(sql.has_table("users"));
        assert_eq!(sql.column_type(&["users".to_string()], "username"), Some(SqlType::Text));
        assert_eq!(sql.column_type(&["users".to_string()], "id"), Some(SqlType::Integer));
    }

    #[test]
    fn column_type_conversions() {
        assert_eq!(ColumnType::Integer.to_rdl_type(), Type::nominal("Integer"));
        assert_eq!(ColumnType::Boolean.to_rdl_type(), Type::Bool);
        assert_eq!(ColumnType::DateTime.to_sql_type(), SqlType::Text);
    }
}
