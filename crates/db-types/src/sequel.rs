//! Comp-type annotations for the Sequel dataset DSL (paper Table 1: 27
//! methods).
//!
//! Sequel is the second ORM used by the Code.org and Journey subject
//! programs.  Its dataset methods are annotated on `Sequel::Dataset`; model
//! classes that inherit from `Sequel::Model` reach them through the same
//! receiver-class fallback the checker uses for ActiveRecord models.

use comprdl::CompRdl;
use rdl_types::{PurityEffect, TermEffect};

const SCHEMA_ARG: &str = "«schema_type(tself)» / Hash<Symbol, Object>";

/// `(name, signature)` pairs for the Sequel annotation set.
pub fn methods() -> Vec<(&'static str, String)> {
    let dataset = "«table_of(tself)»";
    let row = "«maybe(row_type(tself))»";
    vec![
        ("where", format!("(t <: «if t.is_a?(ConstString) then sql_typecheck(tself, t) else schema_type(tself) end» / Hash<Symbol, Object>, *Object) -> {dataset}")),
        ("exclude", format!("({SCHEMA_ARG}) -> {dataset}")),
        ("filter", format!("({SCHEMA_ARG}) -> {dataset}")),
        ("or_where", format!("({SCHEMA_ARG}) -> {dataset}")),
        ("grep", format!("(Symbol, String) -> {dataset}")),
        ("select_columns", format!("(*Symbol) -> {dataset}")),
        ("select_append", format!("(*Symbol) -> {dataset}")),
        ("order_by", format!("(*Symbol) -> {dataset}")),
        ("reverse_order", format!("(*Symbol) -> {dataset}")),
        ("group_columns", format!("(*Symbol) -> {dataset}")),
        ("group_and_count", format!("(*Symbol) -> {dataset}")),
        ("limit_rows", format!("(Integer, ?Integer) -> {dataset}")),
        ("offset_rows", format!("(Integer) -> {dataset}")),
        ("distinct_rows", format!("() -> {dataset}")),
        ("join_table", "(t<:Symbol) -> «joins_type(tself, t)»".to_string()),
        ("left_join", "(t<:Symbol) -> «joins_type(tself, t)»".to_string()),
        ("inner_join", "(t<:Symbol) -> «joins_type(tself, t)»".to_string()),
        ("first_row", format!("(?{SCHEMA_ARG}) -> {row}")),
        ("last_row", format!("() -> {row}")),
        ("single_record", format!("() -> {row}")),
        ("all_rows", "() -> Array<Hash<Symbol, Object>>".to_string()),
        ("each_row", "() { (Hash<Symbol, Object>) -> Object } -> Object".to_string()),
        ("map_rows", "(?Symbol) { (Hash<Symbol, Object>) -> b } -> Array<Object>".to_string()),
        ("select_map", "(Symbol) -> Array<Object>".to_string()),
        ("select_order_map", "(Symbol) -> Array<Object>".to_string()),
        ("sum_column", "(Symbol) -> Numeric".to_string()),
        ("avg", "(Symbol) -> Numeric".to_string()),
        ("max_column", "(Symbol) -> Object".to_string()),
        ("min_column", "(Symbol) -> Object".to_string()),
        ("count_rows", "() -> Integer".to_string()),
        ("empty_dataset?", "() -> %bool".to_string()),
        ("insert", format!("({SCHEMA_ARG}) -> Integer")),
        ("update_rows", format!("({SCHEMA_ARG}) -> Integer")),
        ("delete_rows", "() -> Integer".to_string()),
        ("import", "(Array<Symbol>, Array<Array<Object>>) -> Integer".to_string()),
        ("paged_each", "() { (Hash<Symbol, Object>) -> Object } -> Object".to_string()),
    ]
}

const BLOCKDEP: &[&str] = &["each_row", "map_rows", "paged_each"];
const IMPURE: &[&str] = &["insert", "update_rows", "delete_rows", "import"];

/// Registers the Sequel annotation set (on the `Sequel::Dataset` class).
pub fn register(env: &mut CompRdl) {
    for (name, sig) in methods() {
        let term =
            if BLOCKDEP.contains(&name) { TermEffect::BlockDep } else { TermEffect::Terminates };
        let purity = if IMPURE.contains(&name) { PurityEffect::Impure } else { PurityEffect::Pure };
        env.type_sig_with_effects("Sequel::Dataset", name, &sig, term, purity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_list_is_substantial_and_unique() {
        let ms = methods();
        assert!(ms.len() >= 27);
        let mut names: Vec<&str> = ms.iter().map(|(n, _)| *n).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(before, names.len());
    }
}
