//! # db-types
//!
//! The database substrate for CompRDL-rs: an in-memory schema / association
//! registry (the stand-in for `RDL.db_schema`), the native type-level
//! helpers (`schema_type`, `joins_type`, `row_type`, `sql_typecheck`), and
//! the comp-type annotation sets for the two query DSLs the paper evaluates
//! (ActiveRecord, 77 methods, and Sequel, 27 methods; Table 1).
//!
//! ## Quick start
//!
//! ```
//! use db_types::{ColumnType, DbRegistry};
//! use std::sync::Arc;
//!
//! let mut db = DbRegistry::new();
//! db.add_table("users", &[("id", ColumnType::Integer), ("username", ColumnType::String)]);
//! db.add_model("User", "users");
//!
//! let mut env = comprdl::CompRdl::new();
//! comprdl::stdlib::register_all(&mut env);
//! db_types::register_all(&mut env, Arc::new(db));
//! assert!(env.annotation_count("Table") >= 75);
//! ```

#![warn(missing_docs)]

pub mod activerecord;
pub mod helpers;
pub mod schema;
pub mod sequel;

pub use schema::{pluralize, Association, ColumnType, DbRegistry};

use comprdl::CompRdl;
use std::sync::Arc;

/// Registers the DB helpers and both query DSL annotation sets into `env`,
/// and declares each registered model as a model class.  The registry is
/// shared via [`Arc`] so the resulting environment is `Send + Sync`.
pub fn register_all(env: &mut CompRdl, db: Arc<DbRegistry>) {
    for model in db.model_names() {
        env.add_model_class(&model, "ActiveRecord::Base");
    }
    helpers::register_helpers(env, db);
    activerecord::register(env);
    sequel::register(env);
}

#[cfg(test)]
mod tests {
    use super::*;
    use comprdl::{CheckOptions, TypeChecker};

    /// The Discourse-style schema from Figure 1.
    fn discourse_env() -> CompRdl {
        let mut db = DbRegistry::new();
        db.add_table(
            "users",
            &[
                ("id", ColumnType::Integer),
                ("username", ColumnType::String),
                ("staged", ColumnType::Boolean),
            ],
        );
        db.add_table(
            "emails",
            &[
                ("id", ColumnType::Integer),
                ("email", ColumnType::String),
                ("user_id", ColumnType::Integer),
            ],
        );
        db.add_model("User", "users");
        db.add_model("Email", "emails");
        db.add_association("User", "emails", "emails");

        let mut env = CompRdl::new();
        comprdl::stdlib::register_all(&mut env);
        register_all(&mut env, Arc::new(db));
        env
    }

    #[test]
    fn figure1_available_type_checks() {
        let mut env = discourse_env();
        env.type_sig_singleton("User", "available?", "(String, String) -> %bool", Some("model"));
        env.type_sig_singleton("User", "reserved?", "(String) -> %bool", None);
        let src = r#"
class User < ActiveRecord::Base
  def self.available?(name, email)
    return false if reserved?(name)
    return true if !User.exists?({ username: name })
    return User.joins(:emails).exists?({ staged: true, username: name, emails: { email: email } })
  end
end
"#;
        let program = ruby_syntax::parse_program_strict(src).unwrap();
        let result =
            TypeChecker::new(&env, &program, CheckOptions::default()).check_labeled("model");
        assert_eq!(result.methods_checked(), 1);
        assert!(result.errors().is_empty(), "{:?}", result.errors());
        // Every DB query call gets a dynamic check.
        assert!(result.checks().len() >= 3, "{:?}", result.checks().len());
    }

    #[test]
    fn column_type_errors_are_detected() {
        let mut env = discourse_env();
        env.type_sig_singleton("User", "broken", "(String) -> %bool", Some("model"));
        // `username` is a String column; querying it with an Integer is a
        // type error, and `nickname` does not exist at all.
        let src = r#"
class User < ActiveRecord::Base
  def self.broken(name)
    User.exists?({ username: 42 }) || User.exists?({ nickname: name })
  end
end
"#;
        let program = ruby_syntax::parse_program_strict(src).unwrap();
        let result =
            TypeChecker::new(&env, &program, CheckOptions::default()).check_labeled("model");
        assert!(
            result.errors().len() >= 2,
            "expected two argument errors, got {:?}",
            result.errors()
        );
    }

    #[test]
    fn join_requires_declared_association() {
        let mut env = discourse_env();
        env.type_sig_singleton("User", "bad_join", "() -> %bool", Some("model"));
        let src = r#"
class User < ActiveRecord::Base
  def self.bad_join()
    User.joins(:apartments).exists?({ staged: true })
  end
end
"#;
        let program = ruby_syntax::parse_program_strict(src).unwrap();
        let result =
            TypeChecker::new(&env, &program, CheckOptions::default()).check_labeled("model");
        assert!(
            result.errors().iter().any(|e| e.message.contains("association")),
            "{:?}",
            result.errors()
        );
    }

    #[test]
    fn sql_fragment_bug_is_detected_via_where() {
        let mut db = DbRegistry::new();
        db.add_table("posts", &[("id", ColumnType::Integer), ("topic_id", ColumnType::Integer)]);
        db.add_table("topics", &[("id", ColumnType::Integer), ("title", ColumnType::String)]);
        db.add_table(
            "topic_allowed_groups",
            &[("group_id", ColumnType::Integer), ("topic_id", ColumnType::Integer)],
        );
        db.add_model("Post", "posts");
        db.add_model("Topic", "topics");
        db.add_association("Post", "topic", "topics");
        let mut env = CompRdl::new();
        comprdl::stdlib::register_all(&mut env);
        register_all(&mut env, Arc::new(db));
        env.type_sig_singleton("Post", "allowed", "(Integer) -> Object", Some("model"));

        let src = r#"
class Post < ActiveRecord::Base
  def self.allowed(group_id)
    Post.includes(:topic)
      .where('topics.title IN (SELECT topic_id FROM topic_allowed_groups WHERE group_id = ?)', group_id)
  end
end
"#;
        let program = ruby_syntax::parse_program_strict(src).unwrap();
        let result =
            TypeChecker::new(&env, &program, CheckOptions::default()).check_labeled("model");
        let sql_error = result
            .errors()
            .into_iter()
            .find(|e| e.category == comprdl::ErrorCategory::Sql)
            .unwrap_or_else(|| panic!("{:?}", result.errors()))
            .clone();
        // The span is mapped back through `complete_fragment` into the Ruby
        // string literal, so it points at the offending SQL in the source.
        let snippet = &src[sql_error.span.start..sql_error.span.end];
        assert!(
            snippet.starts_with("topics.title"),
            "span should point at the mistyped column inside the literal, got {snippet:?}"
        );
        // The corrected query type checks.
        let fixed = src.replace("topics.title IN", "topics.id IN");
        let program = ruby_syntax::parse_program_strict(&fixed).unwrap();
        let result =
            TypeChecker::new(&env, &program, CheckOptions::default()).check_labeled("model");
        assert!(result.errors().is_empty(), "{:?}", result.errors());
    }

    #[test]
    fn table1_counts_for_dsls() {
        let env = discourse_env();
        assert!(env.annotation_count("Table") >= 75);
        assert!(env.annotation_count("Sequel::Dataset") >= 27);
        assert!(env.comp_type_count("Table") >= 30);
    }
}
