//! Comp-type annotations for the ActiveRecord-style query DSL (paper
//! Table 1: 77 methods).
//!
//! Following §2.1, query methods are annotated once on the generic `Table`
//! class; the checker types both `Table<T>` relation receivers and model
//! class receivers (`User.exists?`) through these signatures, with
//! `schema_type(tself)` computing the relevant column schema in either case.

use comprdl::CompRdl;
use rdl_types::{PurityEffect, TermEffect};

/// The schema-hash argument comp type shared by most query predicates.
const SCHEMA_ARG: &str = "«schema_type(tself)» / Hash<Symbol, Object>";

/// `(name, signature)` pairs for the ActiveRecord annotation set.
pub fn methods() -> Vec<(&'static str, String)> {
    let relation = "«table_of(tself)»";
    let row = "«row_type(tself)»";
    vec![
        // Predicates over column hashes.
        ("exists?", format!("(?{SCHEMA_ARG}) -> Boolean")),
        ("where", format!("(t <: «if t.is_a?(ConstString) then sql_typecheck(tself, t) else schema_type(tself) end» / Hash<Symbol, Object>, *Object) -> {relation}")),
        ("not", format!("({SCHEMA_ARG}) -> {relation}")),
        ("rewhere", format!("({SCHEMA_ARG}) -> {relation}")),
        ("find_by", format!("({SCHEMA_ARG}) -> «maybe(row_type(tself))»")),
        ("find_by!", format!("({SCHEMA_ARG}) -> {row}")),
        ("find_or_create_by", format!("({SCHEMA_ARG}) -> {row}")),
        ("find_or_initialize_by", format!("({SCHEMA_ARG}) -> {row}")),
        ("create", format!("(?{SCHEMA_ARG}) -> {row}")),
        ("create!", format!("(?{SCHEMA_ARG}) -> {row}")),
        ("new", format!("(?{SCHEMA_ARG}) -> {row}")),
        ("build", format!("(?{SCHEMA_ARG}) -> {row}")),
        ("update_all", format!("({SCHEMA_ARG}) -> Integer")),
        // Joins / eager loading (Figure 1b, plus the association check).
        ("joins", "(t<:Symbol) -> «joins_type(tself, t)»".to_string()),
        ("includes", "(t<:Symbol) -> «joins_type(tself, t)»".to_string()),
        ("eager_load", "(t<:Symbol) -> «joins_type(tself, t)»".to_string()),
        ("preload", "(t<:Symbol) -> «joins_type(tself, t)»".to_string()),
        ("left_joins", "(t<:Symbol) -> «joins_type(tself, t)»".to_string()),
        ("left_outer_joins", "(t<:Symbol) -> «joins_type(tself, t)»".to_string()),
        ("references", format!("(t<:Symbol) -> {relation}")),
        // Relation shaping.
        ("select", format!("(*Symbol) -> {relation}")),
        ("order", format!("(t<:Object) -> {relation}")),
        ("reorder", format!("(t<:Object) -> {relation}")),
        ("group", format!("(*Symbol) -> {relation}")),
        ("having", format!("({SCHEMA_ARG}) -> {relation}")),
        ("limit", format!("(Integer) -> {relation}")),
        ("offset", format!("(Integer) -> {relation}")),
        ("distinct", format!("() -> {relation}")),
        ("unscope", format!("(*Symbol) -> {relation}")),
        ("unscoped", format!("() -> {relation}")),
        ("readonly", format!("() -> {relation}")),
        ("lock", format!("(?String) -> {relation}")),
        ("all", format!("() -> {relation}")),
        ("none", format!("() -> {relation}")),
        ("merge", format!("(t<:Object) -> {relation}")),
        ("or", format!("(t<:Object) -> {relation}")),
        ("extending", format!("() -> {relation}")),
        ("from", format!("(String) -> {relation}")),
        // Fetching.
        ("find", format!("(Integer) -> {row}")),
        ("take", "() -> «maybe(row_type(tself))»".to_string()),
        ("take!", format!("() -> {row}")),
        ("first", "() -> «maybe(row_type(tself))»".to_string()),
        ("first!", format!("() -> {row}")),
        ("last", "() -> «maybe(row_type(tself))»".to_string()),
        ("last!", format!("() -> {row}")),
        ("second", "() -> «maybe(row_type(tself))»".to_string()),
        ("third", "() -> «maybe(row_type(tself))»".to_string()),
        ("find_each", format!("() {{ (Object) -> Object }} -> {relation}")),
        ("find_in_batches", format!("() {{ (Array<Object>) -> Object }} -> {relation}")),
        ("in_batches", format!("() {{ (Object) -> Object }} -> {relation}")),
        ("to_a", "() -> Array<Object>".to_string()),
        ("to_sql", "() -> String".to_string()),
        ("each", format!("() {{ (Object) -> Object }} -> {relation}")),
        ("map", "() { (Object) -> b } -> Array<b>".to_string()),
        ("pluck", "(*Symbol) -> Array<Object>".to_string()),
        ("ids", "() -> Array<Integer>".to_string()),
        // Aggregates.
        ("count", "(?Symbol) -> Integer".to_string()),
        ("sum", "(?Symbol) -> Numeric".to_string()),
        ("average", "(Symbol) -> Numeric".to_string()),
        ("minimum", "(Symbol) -> Object".to_string()),
        ("maximum", "(Symbol) -> Object".to_string()),
        ("size", "() -> Integer".to_string()),
        ("length", "() -> Integer".to_string()),
        ("empty?", "() -> %bool".to_string()),
        ("any?", "() -> %bool".to_string()),
        ("many?", "() -> %bool".to_string()),
        ("blank?", "() -> %bool".to_string()),
        ("present?", "() -> %bool".to_string()),
        // Persistence on fetched rows / relations.
        ("update", format!("(?{SCHEMA_ARG}) -> %bool")),
        ("update!", format!("(?{SCHEMA_ARG}) -> %bool")),
        ("save", "() -> %bool".to_string()),
        ("save!", "() -> %bool".to_string()),
        ("destroy", "() -> Object".to_string()),
        ("destroy_all", "() -> Array<Object>".to_string()),
        ("delete", "(?Integer) -> Integer".to_string()),
        ("delete_all", "() -> Integer".to_string()),
        ("reload", format!("() -> {row}")),
        ("touch", "() -> %bool".to_string()),
        ("cache_key", "() -> String".to_string()),
    ]
}

const BLOCKDEP: &[&str] = &["each", "map", "find_each", "find_in_batches", "in_batches"];

const IMPURE: &[&str] = &[
    "create",
    "create!",
    "update",
    "update!",
    "update_all",
    "save",
    "save!",
    "destroy",
    "destroy_all",
    "delete",
    "delete_all",
    "touch",
];

/// Registers the ActiveRecord annotation set (on the `Table` class).
pub fn register(env: &mut CompRdl) {
    for (name, sig) in methods() {
        let term =
            if BLOCKDEP.contains(&name) { TermEffect::BlockDep } else { TermEffect::Terminates };
        let purity = if IMPURE.contains(&name) { PurityEffect::Impure } else { PurityEffect::Pure };
        env.type_sig_with_effects("Table", name, &sig, term, purity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_list_is_substantial_and_unique() {
        let ms = methods();
        assert!(ms.len() >= 75, "{}", ms.len());
        let mut names: Vec<&str> = ms.iter().map(|(n, _)| *n).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(before, names.len());
    }
}
