//! Native type-level helper methods for the database query DSLs.
//!
//! These are the helpers the paper's Figure 1b relies on (`schema_type`,
//! `RDL.db_schema`) plus the raw-SQL checker entry point of §2.3
//! (`sql_typecheck`) and the association check mentioned in §2.1.

use crate::schema::DbRegistry;
use comprdl::{CompRdl, TlcError, TlcValue};
use rdl_types::{SingVal, Type};
use sql_tc::SqlType;
use std::sync::Arc;

/// Registers the DB helpers into `env`, capturing the schema registry.
/// The registry is shared via [`Arc`] so the helpers stay `Send + Sync`
/// and the assembled environment can be used from parallel checking runs.
pub fn register_helpers(env: &mut CompRdl, db: Arc<DbRegistry>) {
    // schema_type(t) — Figure 1b: Table<T> → T; a class or symbol singleton
    // → the finite hash type of its table's columns (all keys optional, so
    // query hashes may mention any subset of columns); anything else →
    // Hash<Symbol, Object>.
    let registry = db.clone();
    env.register_helper_native("schema_type", move |ctx, args| {
        let t = expect_type(args, 0)?;
        let resolved = ctx.store.resolve(&t);
        match resolved {
            Type::Generic { base, args } if base == "Table" && !args.is_empty() => {
                Ok(TlcValue::Type(args[0].clone()))
            }
            Type::FiniteHash(_) => Ok(TlcValue::Type(resolved)),
            Type::Singleton(SingVal::Class(class)) => {
                let table = registry.table_for_class(&class);
                schema_hash(&registry, &table, ctx)
            }
            Type::Singleton(SingVal::Sym(sym)) => {
                let table = registry.table_for_symbol(&sym);
                schema_hash(&registry, &table, ctx)
            }
            _ => Ok(TlcValue::Type(Type::hash(Type::nominal("Symbol"), Type::object()))),
        }
    });

    // db_schema(name) — the raw `RDL.db_schema` lookup used by helper code.
    let registry = db.clone();
    env.register_helper_native("db_schema", move |ctx, args| {
        let name = match args.first() {
            Some(TlcValue::Sym(s)) => s.clone(),
            Some(TlcValue::Str(s)) => s.clone(),
            Some(TlcValue::Type(Type::Singleton(SingVal::Sym(s)))) => s.clone(),
            _ => return Err(TlcError::new("db_schema expects a table name symbol")),
        };
        schema_hash(&registry, &registry.table_for_symbol(&name), ctx)
    });

    // table_of(t) — Table<schema_type(t)>.
    let registry = db.clone();
    env.register_helper_native("table_of", move |ctx, args| {
        let t = expect_type(args, 0)?;
        let resolved = ctx.store.resolve(&t);
        let schema = match resolved {
            Type::Generic { base, args } if base == "Table" && !args.is_empty() => args[0].clone(),
            Type::Singleton(SingVal::Class(class)) => {
                let table = registry.table_for_class(&class);
                match schema_hash(&registry, &table, ctx)? {
                    TlcValue::Type(t) => t,
                    _ => Type::hash(Type::nominal("Symbol"), Type::object()),
                }
            }
            Type::FiniteHash(_) => resolved,
            _ => Type::hash(Type::nominal("Symbol"), Type::object()),
        };
        Ok(TlcValue::Type(Type::table(schema)))
    });

    // row_type(t) — the type of a single fetched row: the model class for a
    // class-singleton receiver, otherwise a generic attribute hash.
    env.register_helper_native("row_type", move |ctx, args| {
        let t = expect_type(args, 0)?;
        match ctx.store.resolve(&t) {
            Type::Singleton(SingVal::Class(class)) => Ok(TlcValue::Type(Type::nominal(class))),
            _ => Ok(TlcValue::Type(Type::hash(Type::nominal("Symbol"), Type::object()))),
        }
    });

    // joins_type(tself, t) — Figure 1b's `joins` computation, extended with
    // the association check: joining is only allowed when the receiver model
    // declared an association with the argument's name.
    let registry = db.clone();
    env.register_helper_native("joins_type", move |ctx, args| {
        let tself = expect_type(args, 0)?;
        let t = expect_type(args, 1)?;
        let t = ctx.store.resolve(&t);
        let Type::Singleton(SingVal::Sym(assoc)) = &t else {
            // Fallback case: a non-singleton argument yields a bare Table.
            return Ok(TlcValue::Type(Type::nominal("Table")));
        };
        // Association check (only when the receiver is a model class).
        if let Type::Singleton(SingVal::Class(class)) = ctx.store.resolve(&tself) {
            if !registry.has_association(&class, assoc) {
                return Err(TlcError::new(format!(
                    "cannot join: {class} has no declared association `{assoc}`"
                )));
            }
        }
        let own_schema = call_schema_type(ctx, &tself)?;
        let assoc_schema = call_schema_type(ctx, &t)?;
        let joined = match (own_schema, &assoc_schema) {
            (Type::FiniteHash(id), _) => {
                let mut entries = ctx.store.finite_hash(id).entries.clone();
                entries.push((
                    rdl_types::HashKey::Sym(assoc.clone()),
                    Type::Optional(Box::new(assoc_schema)),
                ));
                ctx.store.new_finite_hash(entries)
            }
            (other, _) => other,
        };
        Ok(TlcValue::Type(Type::table(joined)))
    });

    // sql_typecheck(tself, t) — §2.3: completes and type checks a raw SQL
    // fragment against the schema; a well-typed fragment simply has type
    // String, a mistyped one aborts type checking with a detailed message.
    let registry = db;
    env.register_helper_native("sql_typecheck", move |ctx, args| {
        let t = expect_type(args, 1)?;
        let fragment = match ctx.store.resolve(&t) {
            Type::ConstString(id) => match ctx.store.const_string_value(id) {
                Some(s) => s.to_string(),
                None => return Ok(TlcValue::Type(Type::nominal("String"))),
            },
            _ => return Ok(TlcValue::Type(Type::nominal("String"))),
        };
        let tables = registry.table_names();
        let schema = registry.to_sql_schema();
        // Placeholder argument types are not tracked through the vararg
        // parameters, so they check as Unknown (compatible with anything).
        let errors = sql_tc::check_fragment(&schema, &tables, &fragment, &[SqlType::Unknown; 8]);
        if errors.is_empty() {
            Ok(TlcValue::Type(Type::nominal("String")))
        } else {
            let msgs: Vec<String> = errors.iter().map(|e| e.to_string()).collect();
            // `check_fragment` maps spans back into fragment coordinates;
            // hand the first located one to the checker so the diagnostic
            // can point inside the Ruby string literal.
            let mut err =
                TlcError::new(format!("SQL type error in {fragment:?}: {}", msgs.join("; ")));
            if let Some(located) = errors.iter().find(|e| !e.span.is_dummy()) {
                err = err.with_sql_span(located.span);
            }
            Err(err)
        }
    });
}

fn expect_type(args: &[TlcValue], i: usize) -> Result<Type, TlcError> {
    match args.get(i) {
        Some(TlcValue::Type(t)) => Ok(t.clone()),
        Some(TlcValue::ClassRef(c)) => Ok(Type::class_of(c.clone())),
        Some(TlcValue::Sym(s)) => Ok(Type::sym(s.clone())),
        other => Err(TlcError::new(format!("expected a type argument, got {other:?}"))),
    }
}

fn schema_hash(
    registry: &DbRegistry,
    table: &str,
    ctx: &mut comprdl::TlcCtx<'_>,
) -> Result<TlcValue, TlcError> {
    match registry.columns(table) {
        Some(columns) => {
            let entries = columns
                .iter()
                .map(|(name, ty)| {
                    (
                        rdl_types::HashKey::Sym(name.clone()),
                        Type::Optional(Box::new(ty.to_rdl_type())),
                    )
                })
                .collect();
            Ok(TlcValue::Type(ctx.store.new_finite_hash(entries)))
        }
        None => Ok(TlcValue::Type(Type::hash(Type::nominal("Symbol"), Type::object()))),
    }
}

fn call_schema_type(ctx: &mut comprdl::TlcCtx<'_>, t: &Type) -> Result<Type, TlcError> {
    match ctx.call_helper("schema_type", &[TlcValue::Type(t.clone())])? {
        TlcValue::Type(t) => Ok(t),
        other => Err(TlcError::new(format!("schema_type returned a non-type {other:?}"))),
    }
}
