//! Workspace facade for the CompRDL (PLDI 2019) reproduction.
//!
//! This crate exists so the top-level `tests/` and `examples/` directories
//! build against the whole crate graph with plain `cargo test` /
//! `cargo run --example`. It re-exports every workspace crate under one
//! name; library code should depend on the individual crates directly.

#![warn(missing_docs)]

pub use analysis;
pub use comprdl;
pub use corpus;
pub use db_types;
pub use diagnostics;
pub use lambda_c;
pub use rdl_types;
pub use ruby_interp;
pub use ruby_syntax;
pub use sql_tc;
